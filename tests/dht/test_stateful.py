"""Hypothesis stateful test: Chord ring invariants under arbitrary churn.

A rule-based state machine joins, kills and revives nodes in arbitrary
interleavings (advancing simulated time in between so stabilization can
work) and asserts the invariants real Chord maintains:

- among *live* members, successor pointers eventually agree with the sorted
  identifier order;
- lookups from any live member resolve to the correct successor of the key
  among live members (once the ring has had time to stabilize);
- no live node's tables contain a node it has itself observed dead forever.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.dht.ring import RingParams
from repro.sim.clock import minutes, seconds

from tests.dht.conftest import ChordWorld

IDS = st.integers(0, 2**16 - 1)


class ChordMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.world = None
        self.hosts = {}

    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        self.world = ChordWorld(
            seed=seed,
            params=RingParams(
                bits=16,
                maintenance_period_ms=seconds(5),
                lookup_mode="recursive",
                recursive_timeout_ms=2000.0,
            ),
        )
        self.hosts = {}
        for node_id in (0, 20000, 45000):
            host = self.world.add_node(node_id)
            self.hosts[node_id] = host
        self.world.ring.warm_start([h.chord for h in self.hosts.values()])

    # ------------------------------------------------------------- actions
    @rule(node_id=IDS)
    def join_node(self, node_id):
        if node_id in self.hosts:
            return
        alive = [h for h in self.hosts.values() if h.alive and h.chord.joined]
        if not alive:
            return
        host = self.world.add_node(node_id)
        self.hosts[node_id] = host
        host.chord.join(
            alive[0].address, on_joined=lambda: None, on_failed=lambda r, h: None
        )

    @rule(index=st.integers(0, 10_000))
    def kill_node(self, index):
        alive = [h for h in self.hosts.values() if h.alive]
        if len(alive) <= 2:
            return  # keep a routable core alive
        alive[index % len(alive)].fail()

    @rule(ms=st.sampled_from([seconds(10), minutes(1), minutes(3)]))
    def advance_time(self, ms):
        self.world.sim.run(until=self.world.sim.now + ms)

    # ---------------------------------------------------------- invariants
    @invariant()
    def successor_pointers_stay_within_space(self):
        if not self.hosts:
            return
        for host in self.hosts.values():
            if host.alive and host.chord.joined:
                for ref in host.chord.successors:
                    assert 0 <= ref.id < 2**16

    @invariant()
    def no_self_loops_with_other_members(self):
        """A joined node with live peers never keeps only itself forever
        after time has advanced enough (soft check: structure sane)."""
        if not self.hosts:
            return
        for host in self.hosts.values():
            if host.alive and host.chord.joined:
                assert host.chord.successor is not None

    def teardown(self):
        if not self.hosts:
            return
        # Final convergence check: give stabilization time, then verify the
        # live members' successor pointers match the sorted live order.
        self.world.sim.run(until=self.world.sim.now + minutes(10))
        live = sorted(
            (
                h.chord
                for h in self.hosts.values()
                if h.alive and h.chord.joined
            ),
            key=lambda n: n.node_id,
        )
        if len(live) < 2:
            return
        ids = [n.node_id for n in live]
        live_set = set(ids)
        agree = 0
        for index, node in enumerate(live):
            expected = ids[(index + 1) % len(ids)]
            if node.successor is not None and node.successor.id == expected:
                agree += 1
        # allow a small tail of not-yet-stabilized nodes (joins racing the
        # horizon), but the overwhelming majority must agree
        assert agree >= len(live) - 2, (
            f"only {agree}/{len(live)} successor pointers converged"
        )
        # and a lookup from the first live node resolves correctly
        key = (ids[0] + 7919) % 2**16
        expected = next((i for i in ids if i >= key), ids[0])
        result = self.world.lookup_sync(
            next(h for h in self.hosts.values() if h.alive and h.chord.joined),
            key,
            horizon=minutes(5),
        )
        if result.ok:
            assert result.found.id in live_set


TestChordStateful = ChordMachine.TestCase
TestChordStateful.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
