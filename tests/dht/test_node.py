"""Protocol tests for ChordNode: lookups, joins, stabilization, failures."""

import math

import pytest

from repro.errors import DHTError
from repro.sim.clock import minutes, seconds

from tests.dht.conftest import ChordWorld


def true_successor(sorted_ids, key, size):
    for i in sorted_ids:
        if i >= key:
            return i
    return sorted_ids[0]


class TestLookups:
    def test_lookup_on_single_node_ring(self):
        world = ChordWorld()
        (host,) = world.warm_ring([100])
        result = world.lookup_sync(host, 55)
        assert result.ok
        assert result.found.id == 100
        assert result.hops == 0

    def test_lookup_resolves_correct_successor_for_many_keys(self):
        world = ChordWorld(seed=3)
        ids = sorted(world.sim.rng("ids").sample(range(2**16), 40))
        hosts = world.warm_ring(ids)
        rng = world.sim.rng("keys")
        for __ in range(30):
            key = rng.randrange(2**16)
            querier = hosts[rng.randrange(len(hosts))]
            result = world.lookup_sync(querier, key)
            assert result.ok
            assert result.found.id == true_successor(ids, key, 2**16)

    def test_lookup_hops_logarithmic(self):
        world = ChordWorld(seed=5)
        ids = sorted(world.sim.rng("ids").sample(range(2**16), 64))
        hosts = world.warm_ring(ids)
        rng = world.sim.rng("keys")
        hops = []
        for __ in range(40):
            key = rng.randrange(2**16)
            result = world.lookup_sync(hosts[rng.randrange(len(hosts))], key)
            hops.append(result.hops)
        mean_hops = sum(hops) / len(hops)
        # Chord resolves in ~log2(n)/2 hops; allow generous slack.
        assert mean_hops <= math.log2(64)
        assert max(hops) <= 2 * math.log2(64)

    def test_lookup_latency_accumulates_link_latencies(self):
        world = ChordWorld(seed=7)
        ids = sorted(world.sim.rng("ids").sample(range(2**16), 32))
        hosts = world.warm_ring(ids)
        result = world.lookup_sync(hosts[0], (hosts[0].chord.node_id + 2**15) % 2**16)
        if result.hops > 0:
            assert result.latency_ms >= result.hops * 2 * 10.0  # round trips >= 2x min

    def test_lookup_key_ownership_includes_exact_id(self):
        world = ChordWorld()
        hosts = world.warm_ring([100, 200, 300])
        result = world.lookup_sync(hosts[0], 200)
        assert result.found.id == 200

    def test_lookup_from_non_member_requires_start(self):
        world = ChordWorld()
        world.warm_ring([100])
        outsider = world.add_node(55)
        with pytest.raises(DHTError):
            outsider.chord.lookup(7, lambda r: None)

    def test_lookup_from_non_member_with_start(self):
        world = ChordWorld(seed=11)
        ids = [100, 5000, 30000, 60000]
        hosts = world.warm_ring(ids)
        outsider = world.add_node(55)
        result = world.lookup_sync(outsider, 29000, start=hosts[0].address)
        assert result.ok
        assert result.found.id == 30000

    def test_lookup_survives_dead_finger(self):
        """A lookup that routes through a dead node must exclude it and
        still resolve (with timeouts counted)."""
        world = ChordWorld(seed=13)
        ids = sorted(world.sim.rng("ids").sample(range(2**16), 32))
        hosts = world.warm_ring(ids)
        by_id = {h.chord.node_id: h for h in hosts}
        querier = hosts[0]
        # Kill the first hop the querier would use for a far key.
        key = (querier.chord.node_id + 2**15) % 2**16
        first_hop = querier.chord.closest_preceding(key, set())
        by_id[first_hop.id].fail()
        result = world.lookup_sync(querier, key)
        assert result.ok
        assert result.timeouts >= 1
        expected = true_successor(sorted(i for i in ids if i != first_hop.id), key, 2**16)
        assert result.found.id == expected


class TestJoin:
    def test_join_via_bootstrap(self):
        world = ChordWorld(seed=2)
        hosts = world.warm_ring([1000, 20000, 50000])
        joiner = world.add_node(30000)
        outcome = []
        joiner.chord.join(
            hosts[0].address,
            on_joined=lambda: outcome.append("joined"),
            on_failed=lambda reason, holder: outcome.append(reason),
        )
        world.sim.run(until=seconds(30))
        assert outcome == ["joined"]
        assert joiner.chord.successor.id == 50000
        assert joiner.chord.joined

    def test_join_taken_position_detected(self):
        world = ChordWorld(seed=2)
        hosts = world.warm_ring([1000, 20000, 50000])
        usurper = world.add_node(20000)
        outcome = []
        usurper.chord.join(
            hosts[0].address,
            on_joined=lambda: outcome.append("joined"),
            on_failed=lambda reason, holder: outcome.append((reason, holder)),
        )
        world.sim.run(until=seconds(30))
        assert len(outcome) == 1
        reason, holder = outcome[0]
        assert reason == "taken"
        assert holder.id == 20000

    def test_concurrent_join_race_one_winner(self):
        """Two peers target the same vacant id; exactly one integrates
        (paper section 5.2.2)."""
        world = ChordWorld(seed=2)
        hosts = world.warm_ring([1000, 50000])
        racers = [world.add_node(20000), world.add_node(20000)]
        outcomes = {0: [], 1: []}
        for index, racer in enumerate(racers):
            racer.chord.join(
                hosts[0].address,
                on_joined=lambda i=index: outcomes[i].append("joined"),
                on_failed=lambda reason, holder, i=index: outcomes[i].append(reason),
            )
        world.sim.run(until=seconds(60))
        flat = outcomes[0] + outcomes[1]
        assert sorted(flat) == ["joined", "race"] or sorted(flat) == ["joined", "taken"]

    def test_join_then_stabilization_integrates_fully(self):
        world = ChordWorld(seed=4)
        hosts = world.warm_ring([1000, 20000, 50000])
        joiner = world.add_node(30000)
        joiner.chord.join(hosts[0].address, lambda: None, lambda r, h: None)
        world.sim.run(until=minutes(3))
        # predecessor pointers must now reflect the newcomer
        by_id = {h.chord.node_id: h.chord for h in hosts + [joiner]}
        assert by_id[50000].predecessor.id == 30000
        assert by_id[30000].predecessor.id == 20000
        assert by_id[20000].successor.id == 30000

    def test_join_twice_rejected(self):
        world = ChordWorld()
        (host,) = world.warm_ring([5])
        with pytest.raises(DHTError):
            host.chord.create()

    def test_incremental_ring_construction(self):
        """Build a 12-node ring one join at a time; verify total order."""
        world = ChordWorld(seed=6)
        first = world.add_node(0)
        first.chord.create()
        ids = [0]
        rng = world.sim.rng("build")
        while len(ids) < 12:
            new_id = rng.randrange(2**16)
            if new_id in ids:
                continue
            joiner = world.add_node(new_id)
            done = []
            joiner.chord.join(first.address, lambda: done.append(1), lambda r, h: done.append(r))
            world.sim.run(until=world.sim.now + minutes(2))
            assert done == [1]
            ids.append(new_id)
        world.sim.run(until=world.sim.now + minutes(30))
        members = world.ring.active_members()
        sorted_ids = sorted(ids)
        for i, member in enumerate(members):
            assert member.node_id == sorted_ids[i]
            assert member.successor.id == sorted_ids[(i + 1) % len(sorted_ids)]


class TestStabilizationUnderChurn:
    def test_ring_heals_after_single_failure(self):
        world = ChordWorld(seed=8)
        ids = [0, 10000, 20000, 30000, 40000, 50000]
        hosts = world.warm_ring(ids)
        hosts[2].fail()  # kill 20000
        world.sim.run(until=minutes(3))
        survivor = hosts[1].chord
        assert survivor.successor.id == 30000
        # lookups route around the corpse
        result = world.lookup_sync(hosts[0], 15000)
        assert result.ok
        assert result.found.id == 30000

    def test_ring_survives_adjacent_failures(self):
        world = ChordWorld(seed=9)
        ids = list(range(0, 60000, 5000))
        hosts = world.warm_ring(ids)
        hosts[3].fail()
        hosts[4].fail()
        hosts[5].fail()
        world.sim.run(until=minutes(5))
        alive = [h for h in hosts if h.alive]
        alive_ids = sorted(h.chord.node_id for h in alive)
        for host in alive:
            assert host.chord.successor.id in alive_ids
        result = world.lookup_sync(alive[0], 17500)
        assert result.ok
        assert result.found.id == true_successor(alive_ids, 17500, 2**16)

    def test_predecessor_cleared_when_dead(self):
        world = ChordWorld(seed=10)
        hosts = world.warm_ring([0, 1000, 2000])
        hosts[0].fail()
        world.sim.run(until=minutes(3))
        assert hosts[1].chord.predecessor is None or hosts[1].chord.predecessor.id != 0

    def test_graceful_leave_hints_neighbours(self):
        world = ChordWorld(seed=12)
        hosts = world.warm_ring([0, 10000, 20000])
        hosts[1].chord.leave_gracefully()
        hosts[1].alive = False
        world.sim.run(until=seconds(10))
        assert hosts[0].chord.successor.id == 20000
        assert hosts[2].chord.predecessor.id == 0

    def test_shutdown_idempotent(self):
        world = ChordWorld()
        (host,) = world.warm_ring([5])
        host.chord.shutdown()
        host.chord.shutdown()
        assert not host.chord.joined
        assert len(world.ring) == 0
