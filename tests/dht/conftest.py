"""Shared fixtures for the Chord tests: a host class and ring builders."""

from typing import Optional

import pytest

from repro.dht.node import ChordNode, deliver_route_result, route_step
from repro.dht.ring import ChordRing, RingParams
from repro.net.topology import UniformRandomTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.engine import Simulator


class ChordHost(NetworkNode):
    """Minimal host: forwards every chord.* message to its Chord component."""

    def __init__(self, network):
        super().__init__(network)
        self.chord: Optional[ChordNode] = None

    def on_message(self, message):
        if message.kind == "chord.route":
            return route_step(self.chord, self, message)
        if message.kind == "chord.route_result":
            return deliver_route_result(self, message)
        if message.kind.startswith("chord."):
            return self.chord.on_message(message)
        return super().on_message(message)

    def fail(self):
        super().fail()
        if self.chord is not None:
            self.chord.shutdown()


class ChordWorld:
    """A simulator + network + one Chord ring, with helpers for tests."""

    def __init__(self, seed=1, params=None, latency=(10.0, 100.0), lookup_mode="iterative"):
        self.sim = Simulator(seed=seed)
        self.topology = UniformRandomTopology(
            seed=seed, latency_min_ms=latency[0], latency_max_ms=latency[1]
        )
        self.network = Network(self.sim, self.topology)
        # Iterative mode by default: these tests assert per-hop failure
        # semantics; recursive mode has its own test module.
        self.ring = ChordRing(
            params
            or RingParams(
                bits=16, maintenance_period_ms=5000.0, lookup_mode=lookup_mode
            )
        )
        self.hosts = []

    def add_node(self, node_id) -> ChordHost:
        host = ChordHost(self.network)
        host.chord = ChordNode(host, self.ring, node_id)
        self.hosts.append(host)
        return host

    def warm_ring(self, ids):
        hosts = [self.add_node(i) for i in ids]
        self.ring.warm_start([h.chord for h in hosts])
        return hosts

    def lookup_sync(self, host, key, start=None, horizon=600_000.0):
        """Run a lookup to completion and return its result."""
        results = []
        host.chord.lookup(key, results.append, start=start)
        deadline = self.sim.now + horizon
        while not results and self.sim.now < deadline and self.sim.pending_events:
            self.sim.step()
        assert results, "lookup did not complete"
        return results[0]


@pytest.fixture
def world():
    return ChordWorld()
