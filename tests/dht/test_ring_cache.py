"""The sorted-membership cache behind ``ChordRing.members()``.

``members()`` / ``active_members()`` / ``successor_of()`` are called from
diagnostics, oracle checks and bootstrap on every churn event; re-sorting
the registry each time was O(n log n) per call.  The cache serves them
from one lazily rebuilt sorted list.  These tests pin the contract: the
cache is invisible (same results as a fresh sort), invalidated by every
mutation path, and the returned lists are safe-to-mutate copies.
"""

from tests.dht.conftest import ChordWorld


def _ids(nodes):
    return [n.node_id for n in nodes]


def test_members_cache_is_reused_between_calls():
    world = ChordWorld()
    world.warm_ring([40, 7, 9000, 311])
    ring = world.ring
    first = ring.members()
    # Second call reuses the cached sorted list (no rebuild)...
    cached = ring._sorted_nodes
    second = ring.members()
    assert ring._sorted_nodes is cached
    # ...but hands out a fresh copy each time.
    assert first == second
    assert first is not second
    assert _ids(first) == [7, 40, 311, 9000]


def test_returned_list_is_a_copy():
    world = ChordWorld()
    world.warm_ring([5, 6, 7])
    ring = world.ring
    stolen = ring.members()
    stolen.clear()  # must not corrupt the cache
    assert _ids(ring.members()) == [5, 6, 7]


def test_register_invalidates_cache():
    world = ChordWorld()
    hosts = world.warm_ring([10, 20, 30])
    ring = world.ring
    assert _ids(ring.members()) == [10, 20, 30]
    newcomer = world.add_node(15)
    ring.register(newcomer.chord)
    assert _ids(ring.members()) == [10, 15, 20, 30]
    assert ring.successor_of(11).node_id == 15
    # warm_ring hosts are untouched.
    assert all(h.chord.joined for h in hosts)


def test_deregister_invalidates_cache():
    world = ChordWorld()
    hosts = world.warm_ring([10, 20, 30])
    ring = world.ring
    ring.members()  # prime the cache
    ring.deregister(hosts[1].chord)
    assert _ids(ring.members()) == [10, 30]
    assert ring.successor_of(15).node_id == 30


def test_try_register_invalidates_cache():
    world = ChordWorld()
    world.warm_ring([100, 200])
    ring = world.ring
    ring.members()  # prime
    claimant = world.add_node(150)
    assert ring.try_register(claimant.chord)
    assert _ids(ring.members()) == [100, 150, 200]


def test_successor_of_matches_linear_scan():
    world = ChordWorld()
    ids = [3, 99, 1024, 40_000, 65_000]
    world.warm_ring(ids)
    ring = world.ring
    for key in [0, 3, 4, 100, 1024, 1025, 50_000, 65_001]:
        expected = min(
            (i for i in ids if i >= key), default=min(ids)
        )
        assert ring.successor_of(key).node_id == expected


def test_active_members_filters_dead_hosts_without_invalidating():
    world = ChordWorld()
    hosts = world.warm_ring([1, 2, 3, 4])
    ring = world.ring
    ring.members()  # prime the cache
    cached = ring._sorted_nodes
    hosts[2].alive = False
    assert _ids(ring.active_members()) == [1, 2, 4]
    # Liveness is evaluated per call; the sorted cache itself is untouched,
    # and the dead-but-registered node still appears in members().
    assert ring._sorted_nodes is cached
    assert _ids(ring.members()) == [1, 2, 3, 4]
