"""Unit tests for ring diagnostics."""

from repro.dht.diagnostics import max_ownership_imbalance, ownership_spans, ring_health
from repro.sim.clock import minutes

from tests.dht.conftest import ChordWorld


def test_empty_ring_health():
    world = ChordWorld()
    health = ring_health(world.ring)
    assert health.members == 0
    assert health.healthy
    assert ownership_spans(world.ring) == []
    assert max_ownership_imbalance(world.ring) is None


def test_warm_ring_is_perfectly_healthy():
    world = ChordWorld(seed=3)
    world.warm_ring(sorted(world.sim.rng("ids").sample(range(2**16), 20)))
    health = ring_health(world.ring)
    assert health.members == 20
    assert health.successor_consistency == 1.0
    assert health.predecessor_consistency == 1.0
    assert health.stale_finger_fraction == 0.0
    assert health.healthy
    assert "100.0%" in health.render()


def test_failure_degrades_then_maintenance_heals():
    world = ChordWorld(seed=5)
    hosts = world.warm_ring(sorted(world.sim.rng("ids").sample(range(2**16), 16)))
    for host in hosts[:4]:
        host.fail()
    degraded = ring_health(world.ring)
    assert degraded.members == 12
    assert degraded.successor_consistency < 1.0 or degraded.stale_finger_fraction > 0.0
    world.sim.run(until=minutes(20))
    healed = ring_health(world.ring)
    assert healed.successor_consistency >= degraded.successor_consistency
    assert healed.successor_consistency >= 0.9


def test_ownership_spans_sum_to_space():
    world = ChordWorld(seed=7)
    world.warm_ring([10, 1000, 30000, 60000])
    spans = ownership_spans(world.ring)
    assert len(spans) == 4
    assert sum(spans) == 2**16


def test_ownership_imbalance_detects_hotspot():
    world = ChordWorld(seed=9)
    # three nodes clustered together + the huge arc owned by the first
    world.warm_ring([0, 10, 20])
    imbalance = max_ownership_imbalance(world.ring)
    assert imbalance is not None
    assert imbalance > 2.0  # one member owns nearly the whole circle
