"""Unit and property tests for ring arithmetic -- Chord's foundation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.idspace import IdSpace
from repro.errors import DHTError

SPACE = IdSpace(8)  # small space: 0..255, exercises wrap-around heavily
ids = st.integers(0, SPACE.size - 1)


def test_bits_validated():
    with pytest.raises(DHTError):
        IdSpace(0)
    with pytest.raises(DHTError):
        IdSpace(200)


def test_size():
    assert IdSpace(8).size == 256
    assert IdSpace(32).size == 2**32


def test_contains():
    assert SPACE.contains(0)
    assert SPACE.contains(255)
    assert not SPACE.contains(256)
    assert not SPACE.contains(-1)


def test_hash_in_range_and_stable():
    space = IdSpace(16)
    h = space.hash_value("website-3/object-17")
    assert 0 <= h < space.size
    assert h == space.hash_value("website-3/object-17")
    assert h != space.hash_value("website-3/object-18")


def test_add_wraps():
    assert SPACE.add(250, 10) == 4
    assert SPACE.add(4, -10) == 250


def test_finger_start():
    assert SPACE.finger_start(0, 0) == 1
    assert SPACE.finger_start(0, 7) == 128
    assert SPACE.finger_start(200, 7) == (200 + 128) % 256
    with pytest.raises(DHTError):
        SPACE.finger_start(0, 8)


def test_distance():
    assert SPACE.distance(10, 20) == 10
    assert SPACE.distance(20, 10) == 246
    assert SPACE.distance(7, 7) == 0


def test_in_open_simple():
    assert SPACE.in_open(5, 0, 10)
    assert not SPACE.in_open(0, 0, 10)
    assert not SPACE.in_open(10, 0, 10)


def test_in_open_wrapping():
    assert SPACE.in_open(250, 200, 10)
    assert SPACE.in_open(5, 200, 10)
    assert not SPACE.in_open(100, 200, 10)


def test_in_open_degenerate_full_circle():
    assert SPACE.in_open(5, 7, 7)
    assert not SPACE.in_open(7, 7, 7)


def test_half_open_right_includes_endpoint():
    assert SPACE.in_half_open_right(10, 0, 10)
    assert not SPACE.in_half_open_right(0, 0, 10)
    assert SPACE.in_half_open_right(3, 250, 10)
    # single-node ring owns everything
    assert SPACE.in_half_open_right(42, 7, 7)


def test_half_open_left_includes_endpoint():
    assert SPACE.in_half_open_left(0, 0, 10)
    assert not SPACE.in_half_open_left(10, 0, 10)
    assert SPACE.in_half_open_left(42, 7, 7)


@given(x=ids, a=ids, b=ids)
@settings(max_examples=300, deadline=None)
def test_open_interval_matches_walk(x, a, b):
    """(a, b) must equal the set reached walking clockwise from a to b."""
    if a == b:
        expected = x != a
    else:
        walk = set()
        current = SPACE.add(a, 1)
        while current != b:
            walk.add(current)
            current = SPACE.add(current, 1)
        expected = x in walk
    assert SPACE.in_open(x, a, b) == expected


@given(x=ids, a=ids, b=ids)
@settings(max_examples=200, deadline=None)
def test_half_open_right_consistent_with_open(x, a, b):
    if a != b:
        assert SPACE.in_half_open_right(x, a, b) == (SPACE.in_open(x, a, b) or x == b)


@given(x=ids, a=ids, b=ids)
@settings(max_examples=200, deadline=None)
def test_interval_partition(x, a, b):
    """For a != b, exactly one of: x in (a,b), x in [b,a), x == a."""
    if a == b:
        return
    memberships = [
        SPACE.in_open(x, a, b),
        SPACE.in_half_open_left(x, b, a),
        x == a,
    ]
    assert sum(bool(m) for m in memberships) == 1


@given(a=ids, b=ids)
@settings(max_examples=200, deadline=None)
def test_distance_antisymmetric(a, b):
    if a != b:
        assert SPACE.distance(a, b) + SPACE.distance(b, a) == SPACE.size
