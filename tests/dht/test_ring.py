"""Unit tests for ring parameters, registry and warm start."""

import pytest

from repro.dht.ring import RingParams
from repro.errors import DHTError

from tests.dht.conftest import ChordWorld


def test_params_validation():
    with pytest.raises(DHTError):
        RingParams(successor_list_size=0)
    with pytest.raises(DHTError):
        RingParams(lookup_max_probes=0)


def test_node_id_must_fit_space():
    world = ChordWorld()
    with pytest.raises(DHTError):
        world.add_node(2**16)  # bits=16


def test_warm_start_builds_sorted_ring():
    world = ChordWorld()
    ids = [10, 500, 90, 30000, 42]
    world.warm_ring(ids)
    members = world.ring.members()
    assert [m.node_id for m in members] == sorted(ids)
    for i, member in enumerate(members):
        expected_succ = members[(i + 1) % len(members)]
        assert member.successor.id == expected_succ.node_id
        expected_pred = members[(i - 1) % len(members)]
        assert member.predecessor.id == expected_pred.node_id
        assert member.joined


def test_warm_start_successor_lists_full():
    world = ChordWorld()
    hosts = world.warm_ring(range(0, 100, 7))
    r = world.ring.params.successor_list_size
    for host in hosts:
        assert len(host.chord.successors) == min(r, len(hosts))


def test_warm_start_fingers_correct():
    world = ChordWorld()
    ids = [0, 1000, 5000, 20000, 40000, 60000]
    hosts = world.warm_ring(ids)
    space = world.ring.space
    sorted_ids = sorted(ids)

    def true_successor(key):
        for i in sorted_ids:
            if i >= key:
                return i
        return sorted_ids[0]

    for host in hosts:
        node = host.chord
        for index, finger in enumerate(node.fingers):
            start = space.finger_start(node.node_id, index)
            assert finger is not None
            assert finger.id == true_successor(start)


def test_warm_start_rejects_duplicates():
    world = ChordWorld()
    hosts = [world.add_node(5), world.add_node(5)]
    with pytest.raises(DHTError):
        world.ring.warm_start([h.chord for h in hosts])


def test_register_conflict_detection():
    world = ChordWorld()
    a = world.add_node(7)
    b = world.add_node(7)
    a.chord.create()
    with pytest.raises(DHTError):
        world.ring.register(b.chord)


def test_register_allows_replacing_dead_node():
    world = ChordWorld()
    a = world.add_node(7)
    a.chord.create()
    a.fail()
    b = world.add_node(7)
    world.ring.register(b.chord)  # dead holder may be replaced
    assert world.ring.members()[-1] is b.chord or b.chord in world.ring.members()


def test_deregister_only_removes_own_entry():
    world = ChordWorld()
    a = world.add_node(7)
    a.chord.create()
    b = world.add_node(9)
    world.ring.deregister(b.chord)  # not registered: no-op
    assert len(world.ring) == 1


def test_random_bootstrap():
    world = ChordWorld()
    assert world.ring.random_bootstrap(world.sim.rng("boot")) is None
    hosts = world.warm_ring([1, 2, 3])
    addr = world.ring.random_bootstrap(world.sim.rng("boot"))
    assert addr in [h.address for h in hosts]


def test_random_bootstrap_skips_dead():
    world = ChordWorld()
    hosts = world.warm_ring([1, 2, 3])
    hosts[0].fail()
    hosts[1].fail()
    for _ in range(10):
        assert world.ring.random_bootstrap(world.sim.rng("boot")) == hosts[2].address


def test_active_members():
    world = ChordWorld()
    hosts = world.warm_ring([1, 2, 3])
    hosts[1].fail()
    active = world.ring.active_members()
    assert {n.node_id for n in active} == {1, 3}


def test_warm_start_empty_is_noop():
    world = ChordWorld()
    world.ring.warm_start([])
    assert len(world.ring) == 0


def test_warm_start_single_node():
    world = ChordWorld()
    hosts = world.warm_ring([42])
    node = hosts[0].chord
    assert node.successor.id == 42
    assert node.predecessor.id == 42
