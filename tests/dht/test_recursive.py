"""Tests for recursive (forwarded) Chord routing -- the default mode."""

import math

from repro.dht.ring import RingParams
from repro.sim.clock import minutes, seconds

from tests.dht.conftest import ChordWorld


def recursive_world(seed=1, **params):
    defaults = dict(bits=16, maintenance_period_ms=5000.0, lookup_mode="recursive")
    defaults.update(params)
    return ChordWorld(seed=seed, params=RingParams(**defaults))


def true_successor(sorted_ids, key):
    for i in sorted_ids:
        if i >= key:
            return i
    return sorted_ids[0]


def test_recursive_resolves_correct_successor():
    world = recursive_world(seed=3)
    ids = sorted(world.sim.rng("ids").sample(range(2**16), 40))
    hosts = world.warm_ring(ids)
    rng = world.sim.rng("keys")
    for __ in range(25):
        key = rng.randrange(2**16)
        result = world.lookup_sync(hosts[rng.randrange(len(hosts))], key)
        assert result.ok
        assert result.found.id == true_successor(ids, key)


def test_recursive_single_node():
    world = recursive_world()
    (host,) = world.warm_ring([100])
    result = world.lookup_sync(host, 55)
    assert result.ok and result.found.id == 100 and result.hops == 0
    assert result.latency_ms == 0.0


def test_recursive_latency_is_one_way_per_hop():
    """Recursive routing costs ~half an iterative lookup: each hop is one
    one-way link plus a single result message back."""
    world_r = recursive_world(seed=5)
    world_i = ChordWorld(seed=5)  # iterative, same topology seed
    ids = sorted(world_r.sim.rng("ids").sample(range(2**16), 48))
    hosts_r = world_r.warm_ring(ids)
    hosts_i = world_i.warm_ring(ids)
    rng_r = world_r.sim.rng("keys")
    rng_i = world_i.sim.rng("keys")
    total_r = total_i = 0.0
    for __ in range(30):
        key = rng_r.randrange(2**16)
        rng_i.randrange(2**16)  # keep streams aligned
        querier = 3
        total_r += world_r.lookup_sync(hosts_r[querier], key).latency_ms
        total_i += world_i.lookup_sync(hosts_i[querier], key).latency_ms
    assert total_r < 0.75 * total_i


def test_recursive_hops_logarithmic():
    world = recursive_world(seed=7)
    ids = sorted(world.sim.rng("ids").sample(range(2**16), 64))
    hosts = world.warm_ring(ids)
    rng = world.sim.rng("keys")
    hops = []
    for __ in range(30):
        key = rng.randrange(2**16)
        hops.append(world.lookup_sync(hosts[rng.randrange(len(hosts))], key).hops)
    assert sum(hops) / len(hops) <= math.log2(64)


def test_recursive_from_non_member_with_start():
    world = recursive_world(seed=9)
    ids = [100, 5000, 30000, 60000]
    hosts = world.warm_ring(ids)
    outsider = world.add_node(55)
    result = world.lookup_sync(outsider, 29000, start=hosts[0].address)
    assert result.ok and result.found.id == 30000


def test_recursive_reroutes_around_dead_hop():
    """A dead first hop is detected by the missing per-hop ack; the origin
    purges it, reroutes, and the lookup still resolves correctly -- paying
    the failure-detection timeout in latency."""
    world = recursive_world(seed=11, recursive_timeout_ms=10_000.0)
    ids = sorted(world.sim.rng("ids").sample(range(2**16), 32))
    hosts = world.warm_ring(ids)
    by_id = {h.chord.node_id: h for h in hosts}
    querier = hosts[0]
    key = (querier.chord.node_id + 2**15) % 2**16
    first_hop = querier.chord.closest_preceding(key, frozenset())
    by_id[first_hop.id].fail()
    result = world.lookup_sync(querier, key, horizon=minutes(5))
    assert result.ok
    alive_ids = sorted(i for i in ids if i != first_hop.id)
    assert result.found.id == true_successor(alive_ids, key)
    # the reroute cost at least one failure-detection timeout
    assert result.latency_ms >= world.ring.params.rpc_timeout_ms
    # the dead entry was reactively purged from the querier's tables
    assert all(
        f is None or f.id != first_hop.id for f in querier.chord.fingers
    )


def test_recursive_lookup_failure_when_ring_gone():
    world = recursive_world(seed=13, recursive_timeout_ms=1000.0, recursive_retries=1)
    hosts = world.warm_ring([100, 200])
    outsider = world.add_node(55)
    hosts[0].fail()
    hosts[1].fail()
    result = world.lookup_sync(outsider, 150, start=hosts[0].address, horizon=seconds(30))
    assert not result.ok


def test_recursive_join_works():
    world = recursive_world(seed=15)
    hosts = world.warm_ring([1000, 20000, 50000])
    joiner = world.add_node(30000)
    outcome = []
    joiner.chord.join(
        hosts[0].address,
        on_joined=lambda: outcome.append("joined"),
        on_failed=lambda reason, holder: outcome.append(reason),
    )
    world.sim.run(until=seconds(30))
    assert outcome == ["joined"]
    assert joiner.chord.successor.id == 50000
