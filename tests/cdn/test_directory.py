"""Unit tests for the directory role (index, members, load, snapshots)."""

import random

from repro.cdn.flower.directory import DirectoryRole


def make_role(owner=99):
    return DirectoryRole(owner, website=0, locality=1, instance=0, position_id=1234)


def test_initial_state():
    role = make_role()
    assert role.load == 0
    assert not role.overloaded(10)
    assert role.overloaded(None) is False
    assert role.providers_of((0, 1)) == set()


def test_add_member_indexes_keys():
    role = make_role()
    role.add_member(5, [(0, 1), (0, 2)])
    assert role.has_member(5)
    assert role.load == 1
    assert role.providers_of((0, 1)) == {5}
    assert role.providers_of((0, 2)) == {5}


def test_owner_never_a_member():
    role = make_role(owner=99)
    role.add_member(99, [(0, 1)])
    assert not role.has_member(99)
    assert role.load == 0


def test_update_member_keys_diffs():
    role = make_role()
    role.add_member(5, [(0, 1), (0, 2)])
    role.update_member_keys(5, [(0, 2), (0, 3)])
    assert role.providers_of((0, 1)) == set()
    assert role.providers_of((0, 2)) == {5}
    assert role.providers_of((0, 3)) == {5}


def test_remove_member_clears_pointers():
    role = make_role()
    role.add_member(5, [(0, 1)])
    role.add_member(6, [(0, 1)])
    role.remove_member(5)
    assert not role.has_member(5)
    assert role.providers_of((0, 1)) == {6}
    role.remove_member(6)
    assert role.providers_of((0, 1)) == set()
    assert (0, 1) not in role.index


def test_pick_provider_respects_exclusion():
    role = make_role()
    role.add_member(5, [(0, 1)])
    role.add_member(6, [(0, 1)])
    rng = random.Random(1)
    picks = {role.pick_provider((0, 1), rng, exclude={5}) for __ in range(10)}
    assert picks == {6}
    assert role.pick_provider((0, 1), rng, exclude={5, 6}) is None
    assert role.pick_provider((9, 9), rng) is None


def test_overload_accounting():
    role = make_role()
    for address in range(1, 5):
        role.add_member(address)
    assert role.load == 4
    assert role.overloaded(4)
    assert role.overloaded(3)
    assert not role.overloaded(5)
    assert not role.overloaded(None)


def test_expire_members_sweep():
    role = make_role()
    role.add_member(5, [(0, 1)])
    role.add_member(6)
    # two sweeps without contact exceed max_age=1
    assert role.expire_members(max_age=1) == []
    role.touch_member(6)  # 6 stays fresh
    expired = role.expire_members(max_age=1)
    assert expired == [5]
    assert not role.has_member(5)
    assert role.providers_of((0, 1)) == set()
    assert role.has_member(6)


def test_touch_resets_age():
    role = make_role()
    role.add_member(5)
    role.expire_members(max_age=5)
    role.touch_member(5)
    assert role.members.get(5).age == 0


def test_member_sample():
    role = make_role()
    for address in range(1, 8):
        role.add_member(address)
    sample = role.member_sample(random.Random(2), 3)
    assert len(sample) == 3
    assert len(set(sample)) == 3
    assert all(1 <= a < 8 for a in sample)


def test_snapshot_roundtrip():
    role = make_role()
    role.add_member(5, [(0, 1), (0, 2)])
    role.add_member(6, [(0, 2)])
    snapshot = role.snapshot()
    heir = DirectoryRole(77, 0, 1, 0, 1234)
    heir.adopt_snapshot(snapshot)
    assert heir.has_member(5) and heir.has_member(6)
    assert heir.providers_of((0, 2)) == {5, 6}
    assert heir.providers_of((0, 1)) == {5}


def test_adopt_snapshot_skips_self():
    role = make_role()
    role.add_member(77, [(0, 1)])
    heir = DirectoryRole(77, 0, 1, 0, 1234)
    heir.adopt_snapshot(role.snapshot())
    assert not heir.has_member(77)
    assert heir.providers_of((0, 1)) == set()
