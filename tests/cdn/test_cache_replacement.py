"""Tests for the bounded-cache (LRU replacement) extension.

The paper assumes unbounded caches (section 6.1 and footnote 1); this
extension bounds them and replaces least-recently-used objects, with all
the protocol consequences: summaries rebuilt, directories unlearning via
the next push, evicted objects re-queryable.
"""

import pytest

from repro.cdn.storage import ContentStore
from repro.errors import CDNError
from repro.sim.clock import seconds

from tests.cdn.conftest import CdnWorld, make_params


class TestBoundedStore:
    def test_capacity_validated(self):
        with pytest.raises(CDNError):
            ContentStore(capacity=0)

    def test_unbounded_never_evicts(self):
        store = ContentStore()
        for index in range(1000):
            store.add((0, index))
        assert len(store) == 1000
        assert store.evictions == 0

    def test_lru_eviction_order(self):
        store = ContentStore(capacity=3)
        for index in (1, 2, 3):
            store.add((0, index))
        was_new, evicted = store.add_with_evictions((0, 4))
        assert was_new and evicted == [(0, 1)]
        assert (0, 1) not in store and (0, 4) in store

    def test_touch_refreshes_recency(self):
        store = ContentStore(capacity=3)
        for index in (1, 2, 3):
            store.add((0, index))
        store.touch((0, 1))           # 1 becomes most recent
        __, evicted = store.add_with_evictions((0, 4))
        assert evicted == [(0, 2)]
        assert (0, 1) in store

    def test_re_adding_refreshes_recency(self):
        store = ContentStore(capacity=2)
        store.add((0, 1))
        store.add((0, 2))
        assert not store.add((0, 1))  # duplicate, but refreshed
        __, evicted = store.add_with_evictions((0, 3))
        assert evicted == [(0, 2)]

    def test_evictions_count_as_push_changes(self):
        store = ContentStore(capacity=2)
        store.add((0, 1))
        store.add((0, 2))
        store.mark_pushed()
        store.add((0, 3))  # 1 insertion + 1 eviction = 2 changes / 2 pushed
        assert store.change_fraction() == 1.0
        assert store.should_push(0.5)

    def test_initial_overflow_trimmed(self):
        store = ContentStore([(0, i) for i in range(5)], capacity=3)
        assert len(store) == 3


class TestStreamForget:
    def test_forget_allows_requery(self):
        from repro.workload.queries import QueryStream
        from repro.workload.zipf import ZipfSampler
        import random

        stream = QueryStream(0, ZipfSampler(5), random.Random(1))
        drawn = {stream.next_object()[1] for __ in range(5)}
        assert stream.exhausted
        stream.forget({drawn.pop()})
        assert not stream.exhausted
        assert stream.next_object() is not None


class TestFlowerWithBoundedCache:
    def make_world(self, capacity=3):
        return CdnWorld(params=make_params(cache_capacity=capacity))

    def test_peer_cache_bounded(self):
        world = self.make_world(capacity=3)
        peer = world.arrive(website=0)
        for index in range(1, 7):
            world.query(peer, (0, index))
        assert len(peer.store) == 3
        assert peer.store.evictions == 3

    def test_summary_rebuilt_after_eviction(self):
        world = self.make_world(capacity=2)
        peer = world.arrive(website=0)
        world.query(peer, (0, 1))
        world.query(peer, (0, 2))
        world.query(peer, (0, 3))  # evicts (0, 1)
        assert not peer.summary.contains((0, 1))
        assert peer.summary.contains((0, 3))

    def test_directory_unlearns_evicted_objects(self):
        world = self.make_world(capacity=2)
        peer = world.arrive(website=0)
        for index in (1, 2, 3, 4):
            world.query(peer, (0, index))
        world.run(seconds(30))  # pushes propagate
        directory = world.directory_of(0, peer.locality)
        assert peer.address not in directory.directory.providers_of((0, 1))
        held = peer.store.keys()
        for key in held:
            assert directory.directory.providers_of(key) == {peer.address}

    def test_experiment_runs_with_bounded_caches(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig.scaled(
            population=60,
            duration_hours=1.5,
            num_websites=4,
            num_active_websites=2,
            num_localities=2,
            objects_per_website=30,
            peer_cache_capacity=5,
        )
        result = run_experiment("flower", config, seed=17)
        assert result.queries > 0
