"""Unit tests for origin servers and the shared CDN base layer."""

import pytest

from repro.cdn.base import ProtocolParams
from repro.errors import CDNError

from tests.cdn.conftest import CdnWorld


class TestProtocolParams:
    def test_defaults_match_table_1(self):
        params = ProtocolParams()
        assert params.query_interval_ms == 6 * 60_000
        assert params.gossip_period_ms == 60 * 60_000
        assert params.push_threshold == 0.5
        assert params.max_instances == 1
        assert params.directory_load_limit is None

    def test_validation(self):
        with pytest.raises(CDNError):
            ProtocolParams(query_interval_ms=0)
        with pytest.raises(CDNError):
            ProtocolParams(push_threshold=0.0)
        with pytest.raises(CDNError):
            ProtocolParams(max_instances=0)
        with pytest.raises(CDNError):
            ProtocolParams(directory_load_limit=0)


class TestOriginServer:
    def test_server_serves_own_website(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        server = world.system.servers[0]
        record = world.query(peer, (0, 5))
        assert record.outcome in ("miss_server", "miss_failed")
        assert server.requests_served >= 1

    def test_one_server_per_website(self):
        world = CdnWorld(num_websites=2)
        assert set(world.system.servers) == {0, 1}


class TestIdentityManagement:
    def test_website_assignment_is_sticky(self):
        world = CdnWorld()
        system = world.system
        website = system.website_of(50)
        assert system.website_of(50) == website

    def test_assign_website_conflict(self):
        world = CdnWorld()
        world.system.assign_website(60, 1)
        with pytest.raises(CDNError):
            world.system.assign_website(60, 0)
        world.system.assign_website(60, 1)  # idempotent

    def test_peer_for_creates_once(self):
        world = CdnWorld()
        assert world.system.peer_for(70) is world.system.peer_for(70)


class TestQueryAccounting:
    def test_miss_metrics_use_server_distance(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        record = world.query(peer, (0, 3))
        server = world.system.servers[0]
        expected = world.network.latency(peer.address, server.address)
        if record.outcome == "miss_server":
            assert record.transfer_ms == pytest.approx(expected)
            assert record.lookup_latency_ms >= 0.0

    def test_store_updated_after_query(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        world.query(peer, (0, 3))
        assert (0, 3) in peer.store

    def test_local_hit_short_circuits(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        peer.store.add((0, 9))
        record = world.query(peer, (0, 9))
        assert record.outcome == "hit_local"
        assert record.transfer_ms == 0.0

    def test_crash_stops_query_process(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        peer.crash()
        assert not peer.alive
        before = peer.queries_issued
        world.run(60 * 60_000.0)
        assert peer.queries_issued == before

    def test_query_stream_never_repeats_across_sessions(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        world.query(peer, (0, 3))
        peer.crash()
        peer.begin_session()
        if peer.stream is not None:
            assert 3 in peer.stream.requested
