"""Property-based tests for the D-ring key-management service."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.flower.dring import DRingKeyService
from repro.dht.idspace import IdSpace

layouts = st.tuples(
    st.integers(1, 40),   # websites
    st.integers(1, 8),    # localities
    st.sampled_from([1, 2, 4, 8]),  # max instances
)


@given(layout=layouts)
@settings(max_examples=60, deadline=None)
def test_property_injective_over_all_positions(layout):
    websites, localities, instances = layout
    service = DRingKeyService(IdSpace(32), websites, localities, instances)
    ids = set()
    for ws in range(websites):
        for loc in range(localities):
            for inst in range(instances):
                position = service.position_id(ws, loc, inst)
                assert position not in ids
                ids.add(position)
                assert 0 <= position < 2**32


@given(layout=layouts, data=st.data())
@settings(max_examples=60, deadline=None)
def test_property_decode_inverts_encode(layout, data):
    websites, localities, instances = layout
    service = DRingKeyService(IdSpace(32), websites, localities, instances)
    ws = data.draw(st.integers(0, websites - 1))
    loc = data.draw(st.integers(0, localities - 1))
    inst = data.draw(st.integers(0, instances - 1))
    assert service.decode(service.position_id(ws, loc, inst)) == (ws, loc, inst)


@given(layout=layouts)
@settings(max_examples=40, deadline=None)
def test_property_website_arcs_contiguous_and_disjoint(layout):
    """Each website's positions form one contiguous identifier run, and
    the runs of different websites never interleave."""
    websites, localities, instances = layout
    service = DRingKeyService(IdSpace(32), websites, localities, instances)
    arcs = []
    for ws in range(websites):
        ids = sorted(
            service.position_id(ws, loc, inst)
            for loc in range(localities)
            for inst in range(instances)
        )
        assert ids == list(range(ids[0], ids[0] + len(ids)))
        arcs.append((ids[0], ids[-1]))
    arcs.sort()
    for (__, end_a), (start_b, __) in zip(arcs, arcs[1:]):
        assert end_a < start_b


@given(layout=layouts, data=st.data())
@settings(max_examples=40, deadline=None)
def test_property_same_website_predicate_consistent(layout, data):
    websites, localities, instances = layout
    service = DRingKeyService(IdSpace(32), websites, localities, instances)
    ws_a = data.draw(st.integers(0, websites - 1))
    ws_b = data.draw(st.integers(0, websites - 1))
    a = service.position_id(ws_a, data.draw(st.integers(0, localities - 1)), 0)
    b = service.position_id(ws_b, data.draw(st.integers(0, localities - 1)), 0)
    assert service.same_website(a, b) == (ws_a == ws_b)
