"""Directory-role lifecycle: voluntary leave, member expiry, re-admission.

Section 5.2.2's voluntary-departure path (state handoff to a petal
member that takes the D-ring position) and section 5.1's keepalive /
expiry interplay (silent members age out after ``member_expiry_rounds``
sweeps; contact of any kind -- keepalive, push, query -- resets ages,
and an expired member is re-admitted transparently by its next query).
"""

from repro.sim.clock import minutes, seconds


def _register_member(world, website=0, locality=0, key=(0, 5)):
    """Bring one client online, query once so it joins the petal, and let
    its content push land; returns (client, directory_peer)."""
    client = world.arrive(website=website, locality=locality)
    directory = world.directory_of(website, locality)
    world.query(client, key)
    world.run(seconds(10))  # push lands; index now references the client
    assert directory.directory.has_member(client.address)
    return client, directory


class TestGracefulLeave:
    def test_handoff_preserves_index_and_position(self, flower_world):
        world = flower_world
        first, old_dir = _register_member(world, key=(0, 5))
        second, _ = _register_member(
            world, locality=first.locality, key=(0, 9)
        )
        old_snapshot = old_dir.directory.snapshot()
        assert old_snapshot["member_keys"]  # index is non-trivial

        old_dir.leave_directory_gracefully()
        assert old_dir.directory is None
        world.run(seconds(10))  # handoff message delivers

        new_dir = world.directory_of(0, first.locality)
        assert new_dir is not None
        assert new_dir.address != old_dir.address
        # the heir is drawn from the petal: one of the two members
        assert new_dir.address in (first.address, second.address)
        role = new_dir.directory
        assert role.website == 0 and role.locality == first.locality
        # the heir drops its *own* snapshot entry (it is the owner now)
        # but keeps the other member's index pointers
        other = second if new_dir.address == first.address else first
        other_key = (0, 9) if other is second else (0, 5)
        assert role.has_member(other.address)
        assert other_key in set(role.member_keys.get(other.address, ()))

    def test_handoff_ships_posting_lists_without_rebuild(self, flower_world):
        """Section 5.4: the heir adopts the predecessor's keyword posting
        lists from the handoff snapshot instead of re-deriving them key by
        key -- and answers searches immediately after promotion."""
        from repro.cdn.flower.search import KeywordSearchEngine, KeywordSpace

        world = flower_world
        engine = KeywordSearchEngine(KeywordSpace(num_keywords=8))
        world.system.search_engine = engine
        first, old_dir = _register_member(world, key=(0, 5))
        second, _ = _register_member(
            world, locality=first.locality, key=(0, 9)
        )
        old_role = old_dir.directory
        old_dir._attach_search(old_role)
        assert old_role.postings, "predecessor has no posting lists"
        snapshot = old_role.snapshot()
        assert snapshot["postings"], "handoff snapshot must carry postings"

        derivations = []
        real_keywords_of = engine.space.keywords_of
        engine.space.keywords_of = lambda key: (
            derivations.append(key) or real_keywords_of(key)
        )
        try:
            old_dir.leave_directory_gracefully()
            world.run(seconds(10))  # handoff message delivers
        finally:
            engine.space.keywords_of = real_keywords_of

        new_dir = world.directory_of(0, first.locality)
        assert new_dir is not None and new_dir.address != old_dir.address
        role = new_dir.directory
        # Shipped, not rebuilt: adopting the snapshot derived nothing.
        assert derivations == []
        # The surviving member's keys are searchable through the heir.
        other = second if new_dir.address == first.address else first
        other_key = (0, 9) if other is second else (0, 5)
        for keyword in real_keywords_of(other_key):
            assert other_key in role.postings.get(keyword, set())
        keyword = next(iter(real_keywords_of(other_key)))
        results = []
        new_dir.search(keyword, results.append)  # local: zero round trips
        assert any(key == other_key for key, __ in results[0])

    def test_leave_without_members_just_vacates(self, flower_world):
        world = flower_world
        directory = world.directory_of(1, 1)
        directory.leave_directory_gracefully()
        world.run(seconds(10))
        # nobody to hand off to: the slot is simply vacant
        assert world.directory_of(1, 1) is None
        assert directory.directory is None

    def test_queries_survive_handoff(self, flower_world):
        """A fresh client in the petal still resolves after the handoff."""
        world = flower_world
        client, old_dir = _register_member(world, key=(0, 5))
        old_dir.leave_directory_gracefully()
        world.run(seconds(10))
        newcomer = world.arrive(website=0, locality=client.locality)
        record = world.query(newcomer, (0, 5))
        # served, one way or another (directory hit via the inherited
        # index, or a server miss if the lookup raced the takeover)
        assert record.outcome in ("hit_directory", "hit_gossip", "miss_server")


class TestExpiryKeepaliveInterplay:
    def test_keepalive_prevents_expiry(self, flower_world):
        world = flower_world
        client, directory = _register_member(world)
        before = world.system.expired_members
        # several full sweep periods: the client's periodic keepalive
        # keeps touching its directory entry
        world.run(4 * world.params.keepalive_period_ms)
        assert directory.directory.has_member(client.address)
        assert world.system.expired_members == before

    def test_silent_member_expires_after_rounds(self, flower_world):
        world = flower_world
        client, directory = _register_member(world)
        expired_events = []
        world.sim.trace.subscribe(
            "flower.member_expired", lambda e: expired_events.append(e)
        )
        # Silence the member without killing it: its keepalive (and
        # query) processes stop, as if all its messages were lost.
        client._keepalive_process.cancel()
        client._stop_query_process()
        rounds = world.system.params.member_expiry_rounds
        world.run((rounds + 2) * world.params.keepalive_period_ms * 1.1)
        assert not directory.directory.has_member(client.address)
        # eviction also purged the index pointers
        assert client.address not in directory.directory.member_keys
        assert world.system.expired_members >= 1
        assert any(
            e.payload["member"] == client.address
            and e.payload["directory"] == directory.address
            for e in expired_events
        )

    def test_expired_member_reregisters_on_next_query(self, flower_world):
        world = flower_world
        client, directory = _register_member(world)
        client._keepalive_process.cancel()
        client._stop_query_process()
        rounds = world.system.params.member_expiry_rounds
        world.run((rounds + 2) * world.params.keepalive_period_ms * 1.1)
        assert not directory.directory.has_member(client.address)
        # the comeback query re-admits the peer cleanly...
        record = world.query(client, (0, 7))
        assert record.outcome in ("hit_directory", "miss_server")
        world.run(seconds(10))
        assert directory.directory.has_member(client.address)
        # ...and its push re-populates the index
        assert client.address in {
            a
            for addrs in (
                directory.directory.providers_of((0, 7)),
                directory.directory.providers_of((0, 5)),
            )
            for a in addrs
        }

    def test_expiry_sweep_runs_only_while_directory(self, flower_world):
        """After a graceful leave the old holder sweeps no more."""
        world = flower_world
        client, old_dir = _register_member(world)
        old_dir.leave_directory_gracefully()
        before = world.system.expired_members
        world.run(minutes(45))
        # the old holder cannot expire anyone; only the heir's sweep runs
        assert old_dir.directory is None
        assert world.system.expired_members >= before
