"""Queue-aware redirect hints: pre-routing, staleness, and the one-hop bound.

The reactive overload plane lets clients act on gossiped queue depths
*before* the admission queue sheds them.  These tests pin the safety
contract of that plane under churn (the ISSUE 10 satellite): a hint that
went stale -- the hinted instance crashed or demoted after gossiping its
load -- must cost at most one extra RPC, never a routing loop, and every
hint-guided query must still close its ledger entry with a terminal
outcome.
"""

from repro.cdn.flower.system import FlowerSystem
from repro.cdn.petalup.system import PetalUpSystem, petalup_params
from repro.sim.clock import minutes, seconds

from tests.cdn.conftest import CdnWorld, make_params


def make_hint_world():
    # One-slot queue with a five-minute virtual service time: the first
    # admitted query keeps the home queue at its limit for the whole
    # test, so a fresh full-depth hint is truthful.
    return CdnWorld(
        FlowerSystem,
        params=make_params(
            directory_queue_limit=1,
            directory_service_ms=minutes(5),
            redirect_hints=True,
            hint_ttl_ms=minutes(30),
        ),
    )


def plant_loads(member, home_address, target_address, now):
    """Fresh hints: home at its queue limit, *target* looking idle."""
    member._petal_loads = {
        home_address: (1, now),
        target_address: (0, now),
    }


class TestHintStalenessUnderChurn:
    def test_crashed_hinted_instance_is_a_single_accounted_miss(self):
        """A hint pointing at a dead peer times out once, then terminates.

        The hop's timeout path must drop the stale hint, count it, and
        close the query through the origin server -- no retry against
        the dead target, no second hop, no open ledger entry.
        """
        world = make_hint_world()
        world.run(minutes(1))
        member = world.arrive(website=0, locality=0)
        world.query(member, (0, 11))  # registers member, fills the queue
        target = world.arrive(website=0, locality=1)
        target.crash()
        home = world.directory_of(0, 0)
        plant_loads(member, home.address, target.address, world.sim.now)
        record = world.query(member, (0, 13))
        assert record.outcome == "miss_failed"
        assert world.system.hint_hops == 1
        assert world.system.hint_stale == 1
        assert target.address not in member._petal_loads
        assert member._open_queries.get((0, 13)) is None

    def test_demoted_hinted_instance_falls_back_home_without_looping(self):
        """A live peer that is no longer a directory answers
        ``not_directory``: the client forgets the hint and retries the
        home path exactly once -- where the full queue sheds it with the
        ordinary terminal outcome, not a second hint hop.
        """
        world = make_hint_world()
        world.run(minutes(1))
        member = world.arrive(website=0, locality=0)
        world.query(member, (0, 11))  # registers member, fills the queue
        target = world.arrive(website=0, locality=0)  # plain content peer
        home = world.directory_of(0, 0)
        plant_loads(member, home.address, target.address, world.sim.now)
        record = world.query(member, (0, 13))
        assert record.outcome == "shed_overload"
        assert world.system.hint_hops == 1
        assert world.system.hint_stale == 1
        assert target.address not in member._petal_loads
        assert member._open_queries.get((0, 13)) is None

    def test_expired_hints_are_ignored(self):
        """Past ``hint_ttl_ms`` a harvested depth says nothing: the
        client takes the normal home path and no hop is charged."""
        world = make_hint_world()
        world.run(minutes(1))
        member = world.arrive(website=0, locality=0)
        world.query(member, (0, 11))
        target = world.arrive(website=0, locality=1)
        home = world.directory_of(0, 0)
        stale = world.sim.now - minutes(31)  # beyond the 30 min TTL
        member._petal_loads = {
            home.address: (1, stale),
            target.address: (0, stale),
        }
        record = world.query(member, (0, 13))
        assert world.system.hint_hops == 0
        assert record.outcome == "shed_overload"  # queue still full

    def test_hints_off_never_preroutes(self):
        world = CdnWorld(
            FlowerSystem,
            params=make_params(
                directory_queue_limit=1, directory_service_ms=minutes(5)
            ),
        )
        world.run(minutes(1))
        member = world.arrive(website=0, locality=0)
        world.query(member, (0, 11))
        home = world.directory_of(0, 0)
        plant_loads(member, home.address, home.address + 1, world.sim.now)
        world.query(member, (0, 13))
        assert world.system.hint_hops == 0


class TestHintPreRouting:
    def make_world(self):
        return CdnWorld(
            PetalUpSystem,
            params=petalup_params(
                make_params(
                    overload_shedding=True,
                    directory_queue_limit=4,
                    directory_service_ms=40.0,
                    redirect_hints=True,
                    hint_ttl_ms=minutes(30),
                ),
                load_limit=3,
                max_instances=4,
            ),
        )

    def split_petal(self, world):
        peers = []
        for index in range(6):
            peer = world.arrive(website=0, locality=0)
            world.query(peer, (0, index + 1))
            world.run(seconds(30))
            peers.append(peer)
        world.run_until(
            lambda: world.system.instance_count(0, 0) >= 2,
            horizon_ms=minutes(15),
        )
        return peers

    def test_hint_hop_lands_on_the_live_less_loaded_instance(self):
        """The happy path: a fresh hint routes the query around the
        saturated home instance to its idle sibling, which serves it
        (provider or origin miss) -- no shed, ledger closed."""
        world = self.make_world()
        peers = self.split_petal(world)
        first = world.directory_of(0, 0, instance=0)
        second = world.directory_of(0, 0, instance=1)
        member = next(
            p
            for p in peers
            if p.alive
            and p.directory is None
            and p.dir_info is not None
            and p.dir_info.address == first.address
        )
        member._petal_loads = {
            first.address: (4, world.sim.now),
            second.address: (0, world.sim.now),
        }
        record = world.query(member, (0, 15))
        assert world.system.hint_hops == 1
        assert record.outcome in ("hit_directory", "miss_server")
        assert member._open_queries.get((0, 15)) is None

    def test_replica_sync_gossips_the_load_vector_to_siblings(self):
        """With replication on, sibling instances learn each other's
        queue depth over the sync channel: after a few keepalive rounds
        the second instance knows the first's load without ever being
        queried by it."""
        world = CdnWorld(
            PetalUpSystem,
            params=petalup_params(
                make_params(
                    overload_shedding=True,
                    directory_queue_limit=4,
                    directory_service_ms=40.0,
                    redirect_hints=True,
                    hint_ttl_ms=minutes(30),
                    replication_k=2,
                ),
                load_limit=3,
                max_instances=4,
            ),
        )
        self.split_petal(world)
        first = world.directory_of(0, 0, instance=0)
        second = world.directory_of(0, 0, instance=1)
        world.run(minutes(25))  # a few keepalive/sync rounds
        assert first is not None and second is not None
        known = second.directory.peer_loads
        assert first.address in known
