"""The versioned ``SystemStats`` facade and its deprecated delegates.

One entry point (``system.stats()``), typed frozen dataclasses, and a
pinned ``STATS_VERSION``; the historical ``replication_stats()`` /
``overload_stats()`` / ``swarm_stats()`` methods survive as thin
delegates that warn and return the exact same dict shape, so every
pre-facade consumer keeps parsing.
"""

import dataclasses

import pytest

from repro.cdn.flower.stats import STATS_VERSION, SystemStats
from repro.cdn.flower.system import FlowerSystem
from repro.sim.clock import minutes

from tests.cdn.conftest import CdnWorld


def make_world():
    world = CdnWorld(FlowerSystem)
    world.run(minutes(5))
    peer = world.arrive(website=0, locality=0)
    world.query(peer, (0, 7))
    return world


def test_stats_returns_the_versioned_snapshot():
    world = make_world()
    stats = world.system.stats()
    assert isinstance(stats, SystemStats)
    assert stats.version == STATS_VERSION
    payload = stats.to_dict()
    assert payload["version"] == STATS_VERSION
    assert set(payload) == {"version", "overload", "replication", "swarm"}


def test_deprecated_overload_stats_delegates_and_warns():
    world = make_world()
    with pytest.deprecated_call():
        legacy = world.system.overload_stats()
    assert legacy == world.system.stats().overload.to_dict()


def test_deprecated_replication_stats_delegates_and_warns():
    world = make_world()
    with pytest.deprecated_call():
        legacy = world.system.replication_stats()
    assert legacy == world.system.stats().replication.to_dict()


def test_deprecated_swarm_stats_delegates_and_warns():
    world = make_world()
    with pytest.deprecated_call():
        legacy = world.system.swarm_stats()
    assert legacy == world.system.stats().swarm.to_dict()


def test_overload_dict_shape_is_the_legacy_one_plus_new_counters():
    world = make_world()
    overload = world.system.stats().overload.to_dict()
    # The pre-facade keys every existing report reads ...
    for key in (
        "queries_shed",
        "members_shed",
        "directories",
        "peak_queue_depth",
        "directory_loads",
        "directory_queries",
        "directory_sheds",
        "directory_detail",
        "content_fetches",
        "instances",
    ):
        assert key in overload
    # ... plus the reactive-plane counters of this PR.
    for key in (
        "hint_hops",
        "hint_hits",
        "hint_stale",
        "rebalance_spills",
        "rebalance_adoptions",
        "rebalance_kb",
        "content_detail",
    ):
        assert key in overload


def test_content_detail_rows_carry_the_petal():
    world = make_world()
    detail = world.system.stats().overload.content_detail
    assert detail  # at least the queried member
    for row in detail.values():
        assert set(row) == {"website", "locality", "fetches"}


def test_stats_snapshots_are_immutable():
    world = make_world()
    stats = world.system.stats()
    with pytest.raises(dataclasses.FrozenInstanceError):
        stats.overload.queries_shed = 99
