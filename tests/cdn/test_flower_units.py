"""Fine-grained unit tests for FlowerPeer internals.

The protocol-level behaviour is covered by tests/cdn/test_flower.py; these
pin down the smaller mechanisms: dir-info reconciliation, summary-candidate
selection, push triggering, registration payloads.
"""

from repro.cdn.flower.peer import DirInfo
from repro.gossip.view import Contact
from repro.sim.clock import seconds

from tests.cdn.conftest import CdnWorld


def joined_client(world, website=0, locality=0):
    peer = world.arrive(website=website, locality=locality)
    world.query(peer, (website, 1))
    return peer


class TestDirInfo:
    def test_pack_unpack_roundtrip(self):
        info = DirInfo(position_id=123, address=7, age=2)
        assert DirInfo.unpack(info.pack()) == info
        assert DirInfo.unpack(None) is None


class TestDirInfoReconciliation:
    def test_fresher_same_position_adopts_address(self):
        world = CdnWorld()
        peer = joined_client(world)
        replacement = world.arrive(website=0, locality=peer.locality)
        peer.dir_info.age = 3
        position = peer.dir_info.position_id
        peer._reconcile_dir_info(DirInfo(position, replacement.address, age=1))
        assert peer.dir_info.address == replacement.address
        assert peer.dir_info.age == 1

    def test_staler_same_position_ignored(self):
        world = CdnWorld()
        peer = joined_client(world)
        original = peer.dir_info.address
        peer.dir_info.age = 0
        peer._reconcile_dir_info(DirInfo(peer.dir_info.position_id, 42, age=5))
        assert peer.dir_info.address == original

    def test_other_position_ignored_when_set(self):
        world = CdnWorld()
        peer = joined_client(world)
        original = peer.dir_info.position_id
        foreign = world.system.key_service.position_id(1, peer.locality, 0)
        peer._reconcile_dir_info(DirInfo(foreign, 42, age=0))
        assert peer.dir_info.position_id == original

    def test_orphan_adopts_own_petal_directory(self):
        world = CdnWorld()
        peer = joined_client(world)
        position = peer.dir_info.position_id
        directory_address = peer.dir_info.address
        peer.dir_info = None
        peer._reconcile_dir_info(DirInfo(position, directory_address, age=1))
        assert peer.dir_info is not None
        assert peer.dir_info.address == directory_address

    def test_orphan_rejects_foreign_petal(self):
        world = CdnWorld()
        peer = joined_client(world, website=0)
        peer.dir_info = None
        foreign = world.system.key_service.position_id(1, peer.locality, 0)
        peer._reconcile_dir_info(DirInfo(foreign, 42, age=0))
        assert peer.dir_info is None

    def test_directory_peer_never_reconciles(self):
        world = CdnWorld()
        directory = world.directory_of(0, 0)
        directory._reconcile_dir_info(DirInfo(1, 42, age=0))
        assert directory.dir_info is None


class TestSummaryCandidates:
    def test_candidates_require_view_and_key(self):
        world = CdnWorld()
        peer = joined_client(world)
        other = joined_client(world, locality=peer.locality)
        # other holds (0,1); peer knows its summary but it is not in view
        peer.peer_summaries[other.address] = other.summary.snapshot()
        assert peer._summary_candidates((0, 1)) == []
        peer.view.add(Contact(other.address))
        assert other.address in peer._summary_candidates((0, 1))
        assert peer._summary_candidates((0, 19)) == []

    def test_candidates_sorted_by_latency(self):
        world = CdnWorld()
        peer = joined_client(world)
        holders = [joined_client(world, locality=peer.locality) for __ in range(3)]
        for holder in holders:
            holder.store.add((0, 7))
            holder.summary.add((0, 7))
            peer.view.add(Contact(holder.address))
            peer.peer_summaries[holder.address] = holder.summary.snapshot()
        candidates = peer._summary_candidates((0, 7))
        latencies = [world.network.latency(peer.address, a) for a in candidates]
        assert latencies == sorted(latencies)

    def test_own_address_never_a_candidate(self):
        world = CdnWorld()
        peer = joined_client(world)
        peer.peer_summaries[peer.address] = peer.summary.snapshot()
        assert peer.address not in peer._summary_candidates((0, 1))


class TestPushBehaviour:
    def test_push_state_reset_on_registration(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        peer.store.add((0, 9))
        peer.store.mark_pushed()
        assert not peer.store.should_push(0.5)
        world.query(peer, (0, 1))  # registration resets push state + pushes
        world.run(seconds(10))
        directory = world.directory_of(0, peer.locality)
        assert directory.directory.providers_of((0, 9)) == {peer.address}

    def test_gossip_payload_carries_summary_and_dirinfo(self):
        world = CdnWorld()
        peer = joined_client(world)
        data = peer._gossip_data()
        assert data["summary"].contains((0, 1))
        assert DirInfo.unpack(data["dir"]) == peer.dir_info

    def test_after_query_updates_summary(self):
        world = CdnWorld()
        peer = joined_client(world)
        world.query(peer, (0, 5))
        assert peer.summary.contains((0, 5))


class TestRoleGuards:
    def test_promote_declined_by_directory_peer(self):
        world = CdnWorld()
        directory = world.directory_of(0, 0)
        from repro.net.message import Message

        reply = directory.handle_flower_promote(
            Message(src=1, dst=directory.address, kind="flower.promote",
                    payload={"website": 0, "locality": 0, "instance": 1,
                             "position": 999})
        )
        assert reply == {"accepted": False}

    def test_fetch_reports_missing_object(self):
        world = CdnWorld()
        peer = joined_client(world)
        from repro.net.message import Message

        reply = peer.handle_flower_fetch(
            Message(src=1, dst=peer.address, kind="flower.fetch",
                    payload={"key": (0, 19)})
        )
        assert reply == {"ok": False}

    def test_crash_clears_membership_state(self):
        world = CdnWorld()
        peer = joined_client(world)
        peer.view.add(Contact(99))
        peer.peer_summaries[99] = peer.summary.snapshot()
        peer.crash()
        assert peer.dir_info is None
        assert len(peer.view) == 0
        assert peer.peer_summaries == {}
        assert not peer._recovering

    def test_registration_payload_excludes_joiner(self):
        world = CdnWorld()
        directory = world.directory_of(0, 0)
        role = directory.directory
        for address in (50, 51, 52):
            role.add_member(address)
        payload = directory._registration_payload(role, joiner=51)
        assert 51 not in payload["view_sample"]
        assert payload["dir_address"] == directory.address
        assert payload["dir_position"] == role.position_id
