"""Unit tests for the content store and push-threshold accounting."""

import pytest

from repro.cdn.storage import ContentStore
from repro.errors import CDNError


def test_empty_store():
    store = ContentStore()
    assert len(store) == 0
    assert (0, 1) not in store
    assert store.change_fraction() == 0.0
    assert not store.should_push(0.5)


def test_add_and_contains():
    store = ContentStore()
    assert store.add((0, 1))
    assert (0, 1) in store
    assert not store.add((0, 1))  # duplicate: no change
    assert len(store) == 1


def test_initial_content_counts_as_changes():
    store = ContentStore([(0, 1), (0, 2)])
    assert len(store) == 2
    assert store.changes_since_push == 2
    assert store.should_push(0.5)


def test_keys_returns_copy():
    store = ContentStore([(0, 1)])
    keys = store.keys()
    keys.add((9, 9))
    assert (9, 9) not in store


def test_held_indexes_filters_by_website():
    store = ContentStore([(0, 1), (0, 3), (1, 2)])
    assert store.held_indexes(0) == {1, 3}
    assert store.held_indexes(1) == {2}
    assert store.held_indexes(5) == set()


def test_first_object_always_triggers_push():
    store = ContentStore()
    store.add((0, 1))
    assert store.change_fraction() == 1.0
    assert store.should_push(0.5)


def test_push_threshold_cycle():
    """Paper section 5.1: push when changes reach 50% of the pushed size."""
    store = ContentStore()
    store.add((0, 1))
    store.add((0, 2))
    store.mark_pushed()           # directory saw 2 objects
    assert not store.should_push(0.5)
    store.add((0, 3))             # 1 change / 2 pushed = 0.5 -> push
    assert store.change_fraction() == 0.5
    assert store.should_push(0.5)
    store.mark_pushed()           # directory saw 3
    store.add((0, 4))             # 1/3 < 0.5
    assert not store.should_push(0.5)
    store.add((0, 5))             # 2/3 >= 0.5
    assert store.should_push(0.5)


def test_mark_pushed_resets_changes():
    store = ContentStore([(0, 1)])
    store.mark_pushed()
    assert store.changes_since_push == 0
    assert store.change_fraction() == 0.0


# ------------------------------------------------- capacity / LRU eviction


def test_capacity_must_be_positive_or_none():
    with pytest.raises(CDNError):
        ContentStore(capacity=0)
    with pytest.raises(CDNError):
        ContentStore(capacity=-3)


def test_initial_content_beyond_capacity_is_trimmed_oldest_first():
    store = ContentStore([(0, 1), (0, 2), (0, 3)], capacity=2)
    assert store.keys() == {(0, 2), (0, 3)}
    assert len(store) == 2


def test_add_beyond_capacity_evicts_lru():
    store = ContentStore(capacity=2)
    store.add((0, 1))
    store.add((0, 2))
    was_new, evicted = store.add_with_evictions((0, 3))
    assert was_new
    assert evicted == [(0, 1)]
    assert store.evictions == 1
    assert (0, 1) not in store


def test_touch_and_readd_refresh_recency():
    store = ContentStore(capacity=2)
    store.add((0, 1))
    store.add((0, 2))
    store.touch((0, 1))  # (0, 2) becomes the LRU victim
    __, evicted = store.add_with_evictions((0, 3))
    assert evicted == [(0, 2)]
    # Re-adding a present key is not a change but does refresh recency.
    was_new, evicted = store.add_with_evictions((0, 1))
    assert not was_new and evicted == []
    __, evicted = store.add_with_evictions((0, 4))
    assert evicted == [(0, 3)]


def test_touch_of_absent_key_is_a_noop():
    store = ContentStore(capacity=1)
    store.touch((9, 9))
    assert len(store) == 0


def test_evicted_key_can_be_readded_and_counts_as_new():
    store = ContentStore(capacity=1)
    store.add((0, 1))
    store.add((0, 2))  # evicts (0, 1)
    was_new, evicted = store.add_with_evictions((0, 1))
    assert was_new
    assert evicted == [(0, 2)]
    assert store.evictions == 2
    assert store.keys() == {(0, 1)}


def test_evictions_count_as_changes_for_the_push_threshold():
    store = ContentStore(capacity=2)
    store.add((0, 1))
    store.add((0, 2))
    store.mark_pushed()  # directory saw 2 objects
    assert not store.should_push(0.5)
    # One add at capacity = one insertion + one eviction = 2 changes
    # against a pushed size of 2 -> fraction 1.0, over threshold.
    store.add((0, 3))
    assert store.changes_since_push == 2
    assert store.change_fraction() == 1.0
    assert store.should_push(0.5)
    store.mark_pushed()
    assert store.changes_since_push == 0


def test_full_cycle_thrash_never_exceeds_capacity():
    store = ContentStore(capacity=3)
    for index in range(20):
        store.add((0, index))
        assert len(store) <= 3
    assert store.evictions == 17
    # The survivors are exactly the three most recent insertions.
    assert store.keys() == {(0, 17), (0, 18), (0, 19)}


def test_reset_push_state_counts_current_content_only():
    store = ContentStore(capacity=2)
    for index in range(5):
        store.add((0, index))
    store.reset_push_state()
    # A fresh directory only needs the 2 surviving keys, not the history
    # of evictions.
    assert store.changes_since_push == 2
    assert store.change_fraction() == 2.0
    assert store.should_push(0.5)
