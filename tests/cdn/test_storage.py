"""Unit tests for the content store and push-threshold accounting."""

from repro.cdn.storage import ContentStore


def test_empty_store():
    store = ContentStore()
    assert len(store) == 0
    assert (0, 1) not in store
    assert store.change_fraction() == 0.0
    assert not store.should_push(0.5)


def test_add_and_contains():
    store = ContentStore()
    assert store.add((0, 1))
    assert (0, 1) in store
    assert not store.add((0, 1))  # duplicate: no change
    assert len(store) == 1


def test_initial_content_counts_as_changes():
    store = ContentStore([(0, 1), (0, 2)])
    assert len(store) == 2
    assert store.changes_since_push == 2
    assert store.should_push(0.5)


def test_keys_returns_copy():
    store = ContentStore([(0, 1)])
    keys = store.keys()
    keys.add((9, 9))
    assert (9, 9) not in store


def test_held_indexes_filters_by_website():
    store = ContentStore([(0, 1), (0, 3), (1, 2)])
    assert store.held_indexes(0) == {1, 3}
    assert store.held_indexes(1) == {2}
    assert store.held_indexes(5) == set()


def test_first_object_always_triggers_push():
    store = ContentStore()
    store.add((0, 1))
    assert store.change_fraction() == 1.0
    assert store.should_push(0.5)


def test_push_threshold_cycle():
    """Paper section 5.1: push when changes reach 50% of the pushed size."""
    store = ContentStore()
    store.add((0, 1))
    store.add((0, 2))
    store.mark_pushed()           # directory saw 2 objects
    assert not store.should_push(0.5)
    store.add((0, 3))             # 1 change / 2 pushed = 0.5 -> push
    assert store.change_fraction() == 0.5
    assert store.should_push(0.5)
    store.mark_pushed()           # directory saw 3
    store.add((0, 4))             # 1/3 < 0.5
    assert not store.should_push(0.5)
    store.add((0, 5))             # 2/3 >= 0.5
    assert store.should_push(0.5)


def test_mark_pushed_resets_changes():
    store = ContentStore([(0, 1)])
    store.mark_pushed()
    assert store.changes_since_push == 0
    assert store.change_fraction() == 0.0
