"""Swarming tests: the size model, chunk placement, and seeder death.

The headline robustness property lives here: a chunked transfer whose
seeder dies mid-download *resumes* (warm mode keeps completed chunks and
fails over per-chunk) instead of restarting, and every terminal outcome
accounts for 100% of the object's bytes.
"""

import pytest

from repro.cdn.flower.system import FlowerSystem
from repro.errors import ConfigError
from repro.net.bandwidth import BandwidthModel, BandwidthParams
from repro.sim.clock import seconds
from repro.workload.objectsize import ObjectSizeModel

from tests.cdn.conftest import CdnWorld, make_params


# ------------------------------------------------------------ size model


class TestObjectSizeModel:
    def test_sizes_are_a_pure_function_of_seed_and_key(self):
        a = ObjectSizeModel(seed=5)
        b = ObjectSizeModel(seed=5)
        keys = [(w, i) for w in range(3) for i in range(50)]
        assert [a.size_bytes(k) for k in keys] == [b.size_bytes(k) for k in keys]
        # A different seed redraws the sizes.
        c = ObjectSizeModel(seed=6)
        assert [c.size_bytes(k) for k in keys] != [a.size_bytes(k) for k in keys]

    def test_sizes_are_bounded_and_heavy_tailed(self):
        model = ObjectSizeModel(mean_kb=64.0, alpha=1.5, max_kb=4096.0, seed=1)
        sizes = [model.size_bytes((0, i)) for i in range(500)]
        assert all(1024 <= s <= 4096 * 1024 for s in sizes)
        # Heavy tail: the median sits well below the mean.
        ordered = sorted(sizes)
        median = ordered[len(ordered) // 2]
        mean = sum(sizes) / len(sizes)
        assert median < mean

    def test_chunk_arithmetic_is_consistent(self):
        model = ObjectSizeModel(mean_kb=256.0, chunk_kb=64, seed=2)
        for i in range(50):
            key = (0, i)
            sizes = model.chunk_sizes(key)
            assert sum(sizes) == model.size_bytes(key)
            assert len(sizes) == model.chunk_count(key)
            assert all(s == model.chunk_bytes for s in sizes[:-1])
            assert 0 < sizes[-1] <= model.chunk_bytes
            assert [
                model.chunk_size(key, j) for j in range(len(sizes))
            ] == sizes

    def test_chunk_index_out_of_range_rejected(self):
        model = ObjectSizeModel(seed=1)
        with pytest.raises(ConfigError):
            model.chunk_size((0, 0), model.chunk_count((0, 0)))
        with pytest.raises(ConfigError):
            model.chunk_size((0, 0), -1)

    @pytest.mark.parametrize(
        "bad",
        [
            {"alpha": 1.0},
            {"alpha": 0.5},
            {"mean_kb": 0.0},
            {"chunk_kb": 0},
        ],
    )
    def test_param_validation(self, bad):
        with pytest.raises(ConfigError):
            ObjectSizeModel(**bad)


# ----------------------------------------------------------- world setup


def swarm_world(resume=True, bandwidth_kbps=0.0, replicate=0, seed=1, chunk_kb=64):
    params = make_params(
        swarming=True,
        swarm_resume=resume,
        swarm_replicate=replicate,
        swarm_retry_ms=100.0,
    )
    world = CdnWorld(FlowerSystem, seed=seed, params=params)
    world.system.install_sizes(
        ObjectSizeModel(mean_kb=256.0, chunk_kb=chunk_kb, seed=seed)
    )
    if bandwidth_kbps > 0.0:
        world.network.install_bandwidth(
            BandwidthModel(
                world.sim, BandwidthParams(upload_kbps=bandwidth_kbps, seed=seed)
            )
        )
    return world


def find_key(sizes, min_chunks, max_chunks=10_000, website=0, count=20):
    for index in range(count):
        key = (website, index)
        if min_chunks <= sizes.chunk_count(key) <= max_chunks:
            return key
    raise AssertionError("no key with the wanted chunk count in the catalog")


def seed_provider(world, key):
    """Arrive a peer, cache *key* from the origin, let the push land."""
    provider = world.arrive(website=key[0], locality=0)
    record = world.query(provider, key)
    assert record.outcome == "miss_server"
    world.run(seconds(15))  # push -> directory index learns the holder
    return provider


# ------------------------------------------------------------------ happy


def test_small_objects_keep_the_atomic_fetch_path():
    # A 4 MB chunk swallows every object whole: chunk_count == 1 for all.
    world = swarm_world(chunk_kb=4096)
    key = find_key(world.system.sizes, 1, 1)
    seed_provider(world, key)
    client = world.arrive(website=key[0], locality=0)
    record = world.query(client, key)
    assert record.outcome == "hit_directory"
    assert world.system.swarm_started == 0


def test_large_object_is_served_by_a_swarm_transfer():
    world = swarm_world()
    key = find_key(world.system.sizes, 3)
    provider = seed_provider(world, key)
    client = world.arrive(website=key[0], locality=0)
    record = world.query(client, key)
    assert record.outcome == "hit_swarm"
    assert record.is_hit
    system = world.system
    assert system.swarm_started == 1
    assert system.swarm_completed == 1
    assert system.swarm_degraded == 0
    # Byte accounting: all of the object came over P2P chunk payloads,
    # and the provider billed exactly those uploads.
    size = system.sizes.size_bytes(key)
    assert system.swarm_p2p_bytes == size
    assert system.swarm_origin_bytes == 0
    assert provider.bytes_uploaded == size
    # The object is now stored locally like any other hit.
    assert key in client.store


def test_chunk_placement_spreads_replicas_and_manifests_name_them():
    world = swarm_world(replicate=2)
    sizes = world.system.sizes
    key = find_key(sizes, 3)
    count = sizes.chunk_count(key)
    holder = world.arrive(website=key[0], locality=0)
    helper = world.arrive(website=key[0], locality=0)
    world.query(helper, (key[0], (key[1] + 1) % 20))  # join the petal
    world.query(holder, key)
    world.run(seconds(30))  # gossip a view, then place replicas
    holder._maybe_place_chunks(key)
    world.run(seconds(5))
    placed = [
        peer
        for peer in world.system.peers.values()
        if key in getattr(peer, "chunk_holdings", {})
    ]
    assert placed, "no peer accepted a chunk replica"
    for peer in placed:
        held = peer.chunk_holdings[key]
        assert held and held <= set(range(count))
        # A partial holder advertises exactly its chunks, and names the
        # full holder that placed them as a further source.
        assert key not in peer.store


# ----------------------------------------------------------- seeder death


def kill_mid_transfer(world, provider):
    """Crash *provider* once it is actively uploading chunk payloads."""
    bandwidth = world.network.bandwidth
    world.run_until(lambda: bandwidth.active_flows(provider.address) > 0)
    provider.crash()


def test_warm_transfer_survives_seeder_death_by_resuming():
    world = swarm_world(resume=True, bandwidth_kbps=2000.0)
    system = world.system
    key = find_key(system.sizes, 4)
    provider = seed_provider(world, key)
    client = world.arrive(website=key[0], locality=0)

    started = world.sim.now
    before = len(system.metrics)
    client.resolve_query(key, started_at=started)
    kill_mid_transfer(world, provider)
    world.run_until(
        lambda: any(
            r.object_key == key and r.time >= started
            for r in system.metrics.records[before:]
        )
    )
    record = next(
        r
        for r in system.metrics.records[before:]
        if r.object_key == key and r.time >= started
    )
    # Sole seeder died mid-download: the remaining chunks degrade to the
    # origin, completed chunks are KEPT (resume, never restart).
    assert record.outcome == "miss_degraded"
    assert system.swarm_restarts == 0
    assert system.swarm_degraded == 1
    assert system.swarm_p2p_bytes > 0, "progress before the crash was discarded"
    assert system.swarm_origin_bytes > 0
    # 100% terminal accounting: every byte of the object is attributed.
    size = system.sizes.size_bytes(key)
    assert system.swarm_p2p_bytes + system.swarm_origin_bytes == size
    assert system.swarm_chunk_retries > 0


def test_cold_transfer_restarts_from_zero_on_seeder_death():
    world = swarm_world(resume=False, bandwidth_kbps=2000.0)
    system = world.system
    key = find_key(system.sizes, 4)
    provider = seed_provider(world, key)
    client = world.arrive(website=key[0], locality=0)

    started = world.sim.now
    before = len(system.metrics)
    client.resolve_query(key, started_at=started)
    kill_mid_transfer(world, provider)
    world.run_until(
        lambda: any(
            r.object_key == key and r.time >= started
            for r in system.metrics.records[before:]
        )
    )
    record = next(
        r
        for r in system.metrics.records[before:]
        if r.object_key == key and r.time >= started
    )
    # The baseline strategy throws everything away and refetches the
    # whole object from the origin.
    assert record.outcome == "miss_degraded"
    assert system.swarm_restarts >= 1


def test_downloader_crash_mid_transfer_settles_the_ledger():
    world = swarm_world(resume=True, bandwidth_kbps=2000.0)
    system = world.system
    key = find_key(system.sizes, 4)
    seed_provider(world, key)
    client = world.arrive(website=key[0], locality=0)
    client.resolve_query(key, started_at=world.sim.now)
    world.run_until(lambda: system.swarm_started == 1)
    client.crash()
    world.run(seconds(5))
    # The transfer closed without a served outcome and no swarm state
    # lingers on the dead peer.
    assert system.swarm_failed == 1
    assert not client._swarms
