"""Protocol tests for the Squirrel baseline."""

from repro.cdn.squirrel.system import SquirrelSystem
from repro.sim.clock import minutes

from tests.cdn.conftest import CdnWorld, make_params


def home_of(world, key):
    """The peer currently acting as home node for an object key."""
    system = world.system
    key_id = system.ring.space.hash_value(system.catalog.url(key))
    for member in system.ring.active_members():
        pred = member.predecessor
        if pred is None:
            continue
        if system.ring.space.in_half_open_right(key_id, pred.id, member.node_id):
            return world.network.node(member.host.address)
    return None


class TestSetup:
    def test_every_seed_is_a_ring_member(self, squirrel_world):
        system = squirrel_world.system
        assert len(system.ring.members()) == len(system.seed_identities)

    def test_arrival_joins_ring(self, squirrel_world):
        world = squirrel_world
        peer = world.arrive(website=0)
        world.run_until(lambda: peer.chord is not None and peer.chord.joined)
        assert peer.chord.joined


class TestQueryPath:
    def test_first_query_misses_and_registers_at_home(self, squirrel_world):
        world = squirrel_world
        peer = world.arrive(website=0)
        record = world.query(peer, (0, 5))
        assert record.outcome in ("miss_server", "miss_failed")
        home = home_of(world, (0, 5))
        if home is not None and home is not peer:
            assert peer.address in home.home_directory.get((0, 5), {})

    def test_second_query_redirected_to_first_downloader(self, squirrel_world):
        world = squirrel_world
        first = world.arrive(website=0)
        world.query(first, (0, 5))
        second = world.arrive(website=0)
        world.run_until(lambda: second.chord is not None and second.chord.joined)
        record = world.query(second, (0, 5))
        if record.outcome == "hit_directory":
            assert record.transfer_ms == world.network.latency(
                second.address, first.address
            )
        else:
            assert record.outcome in ("miss_server", "miss_failed")

    def test_query_latency_includes_ring_walk(self, squirrel_world):
        """Squirrel pays a full DHT navigation per query (related work,
        section 2)."""
        world = squirrel_world
        peer = world.arrive(website=0)
        world.run_until(lambda: peer.chord.joined)
        record = world.query(peer, (0, 7))
        assert record.hops >= 0
        assert record.lookup_latency_ms >= 0.0

    def test_local_hit(self, squirrel_world):
        world = squirrel_world
        peer = world.arrive(website=0)
        peer.store.add((0, 3))
        record = world.query(peer, (0, 3))
        assert record.outcome == "hit_local"


class TestHomeNodeDirectory:
    def test_directory_lost_on_home_failure(self, squirrel_world):
        """The paper's core criticism: 'the directory information is
        abruptly lost at the failure of its storing peer'."""
        world = squirrel_world
        first = world.arrive(website=0)
        world.query(first, (0, 5))
        home = home_of(world, (0, 5))
        if home is None or home is first:
            return  # degenerate placement; covered by other seeds
        assert (0, 5) in home.home_directory
        home.crash()
        world.run(minutes(5))  # stabilization reassigns the key range
        new_home = home_of(world, (0, 5))
        if new_home is not None:
            assert (0, 5) not in new_home.home_directory

    def test_delegate_capacity_evicts_oldest(self):
        world = CdnWorld(
            SquirrelSystem, params=make_params(squirrel_directory_capacity=2)
        )
        home = world.system.peers[0]
        for requester in (11, 12, 13):
            home._register_delegate((0, 1), requester)
        delegates = list(home.home_directory[(0, 1)])
        assert delegates == [12, 13]

    def test_register_existing_delegate_refreshes(self, squirrel_world):
        home = squirrel_world.system.peers[0]
        home._register_delegate((0, 1), 11)
        home._register_delegate((0, 1), 12)
        home._register_delegate((0, 1), 11)  # refresh: 11 becomes newest
        assert list(home.home_directory[(0, 1)]) == [12, 11]

    def test_dead_delegate_report_removes_entry(self, squirrel_world):
        world = squirrel_world
        home = world.system.peers[0]
        home._register_delegate((0, 1), 11)
        home._drop_delegate((0, 1), 11)
        assert (0, 1) not in home.home_directory

    def test_pick_delegate_excludes_requester(self, squirrel_world):
        home = squirrel_world.system.peers[0]
        home._register_delegate((0, 1), 11)
        assert home._pick_delegate((0, 1), exclude=11) is None
        home._register_delegate((0, 1), 12)
        assert home._pick_delegate((0, 1), exclude=11) == 12


class TestChurnBehaviour:
    def test_crash_clears_directory_and_ring_membership(self, squirrel_world):
        world = squirrel_world
        peer = world.arrive(website=0)
        world.run_until(lambda: peer.chord.joined)
        peer.home_directory[(0, 1)] = {}
        peer.crash()
        assert peer.chord is None
        assert peer.home_directory == {}

    def test_rejoin_gets_fresh_chord_node(self, squirrel_world):
        world = squirrel_world
        peer = world.arrive(website=0)
        world.run_until(lambda: peer.chord.joined)
        peer.crash()
        world.run(minutes(5))
        peer.begin_session()
        world.run_until(lambda: peer.chord is not None and peer.chord.joined,
                        horizon_ms=minutes(10))
        assert peer.chord.joined
        assert peer.node_id == peer.chord.node_id  # same machine, same id
