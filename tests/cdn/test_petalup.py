"""Protocol tests for PetalUp-CDN: load-triggered directory splits."""

import pytest

from repro.cdn.petalup.system import PetalUpSystem, petalup_params
from repro.errors import CDNError
from repro.sim.clock import minutes, seconds

from tests.cdn.conftest import CdnWorld, make_params


def make_petalup_world(load_limit=3, max_instances=4, seed=1):
    return CdnWorld(
        PetalUpSystem,
        seed=seed,
        params=petalup_params(
            make_params(), load_limit=load_limit, max_instances=max_instances
        ),
    )


class TestConfiguration:
    def test_params_helper_validates(self):
        with pytest.raises(CDNError):
            petalup_params(load_limit=0)
        with pytest.raises(CDNError):
            petalup_params(max_instances=1)

    def test_system_requires_split_knobs(self):
        with pytest.raises(CDNError):
            CdnWorld(PetalUpSystem, params=make_params())  # plain Flower params

    def test_params_flow_through(self, petalup_world):
        params = petalup_world.system.params
        assert params.directory_load_limit == 3
        assert params.max_instances == 4


class TestSplitProtocol:
    def fill_petal(self, world, website=0, locality=0, count=6):
        peers = []
        for index in range(count):
            peer = world.arrive(website=website, locality=locality)
            peer.locality = locality
            world.query(peer, (website, index + 1))
            world.run(seconds(30))
            peers.append(peer)
        return peers

    def test_overload_spawns_second_instance(self):
        world = make_petalup_world(load_limit=3)
        self.fill_petal(world, count=6)
        world.run(minutes(10))
        # a second directory instance must have joined D-ring
        assert world.system.instance_count(0, 0) >= 2
        second = world.directory_of(0, 0, instance=1)
        assert second is not None
        assert second.directory.instance == 1

    def test_instances_occupy_successive_ids(self):
        world = make_petalup_world(load_limit=3)
        self.fill_petal(world, count=6)
        world.run(minutes(10))
        first = world.directory_of(0, 0, instance=0)
        second = world.directory_of(0, 0, instance=1)
        if first is not None and second is not None:
            assert (
                second.directory.position_id == first.directory.position_id + 1
            )

    def test_promoted_peer_removed_from_first_instance(self):
        world = make_petalup_world(load_limit=3)
        self.fill_petal(world, count=6)
        world.run(minutes(10))
        first = world.directory_of(0, 0, instance=0)
        second = world.directory_of(0, 0, instance=1)
        if first is not None and second is not None:
            assert not first.directory.has_member(second.address)

    def test_clients_distributed_across_instances(self):
        """Section 4: each instance manages a subset of the content peers."""
        world = make_petalup_world(load_limit=3)
        self.fill_petal(world, count=8)
        world.run(minutes(20))
        total = world.system.petal_size(0, 0)
        first = world.directory_of(0, 0, instance=0)
        if first is not None and world.system.instance_count(0, 0) >= 2:
            assert first.directory.load <= total

    def test_flower_never_splits(self, flower_world):
        """Plain Flower-CDN (no load limit) keeps a single instance."""
        world = flower_world
        for index in range(6):
            peer = world.arrive(website=0, locality=0)
            peer.locality = 0
            world.query(peer, (0, index + 1))
        world.run(minutes(10))
        assert world.system.key_service.max_instances == 1
