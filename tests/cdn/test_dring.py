"""Unit tests for the D-ring key-management service."""

import pytest

from repro.cdn.flower.dring import DRingKeyService
from repro.dht.idspace import IdSpace
from repro.errors import CDNError


def make_service(bits=32, websites=100, localities=6, instances=8):
    return DRingKeyService(IdSpace(bits), websites, localities, instances)


def test_validation():
    with pytest.raises(CDNError):
        make_service(websites=0)
    with pytest.raises(CDNError):
        make_service(localities=0)
    with pytest.raises(CDNError):
        make_service(instances=0)
    with pytest.raises(CDNError):
        DRingKeyService(IdSpace(8), 100, 6, 8)  # space too small


def test_all_positions_unique():
    service = make_service()
    ids = [
        service.position_id(ws, loc, inst)
        for ws in range(100)
        for loc in range(6)
        for inst in range(8)
    ]
    assert len(set(ids)) == len(ids)


def test_instances_have_successive_ids():
    """Section 4: instances of d(ws, loc) sit at consecutive identifiers."""
    service = make_service()
    for ws in (0, 17, 99):
        for loc in range(6):
            base = service.position_id(ws, loc, 0)
            for inst in range(1, 8):
                assert service.position_id(ws, loc, inst) == base + inst


def test_same_website_ids_contiguous():
    """Section 3.2: directory peers of one website are ring neighbours."""
    service = make_service()
    for ws in (3, 42):
        ids = sorted(
            service.position_id(ws, loc, inst)
            for loc in range(6)
            for inst in range(8)
        )
        assert ids == list(range(ids[0], ids[0] + len(ids)))


def test_decode_roundtrip():
    service = make_service()
    for ws in (0, 55, 99):
        for loc in range(6):
            for inst in (0, 3, 7):
                position = service.position_id(ws, loc, inst)
                assert service.decode(position) == (ws, loc, inst)


def test_decode_unknown_prefix():
    service = make_service(websites=3)
    # find an id whose prefix belongs to no website
    space = IdSpace(32)
    for candidate in range(0, 2**16, 97):
        if service.decode(candidate << service.arc_bits) is None:
            return
    pytest.fail("expected at least one unused prefix")


def test_same_website_predicate():
    service = make_service()
    a = service.position_id(5, 0, 0)
    b = service.position_id(5, 5, 7)
    c = service.position_id(6, 0, 0)
    assert service.same_website(a, b)
    assert not service.same_website(a, c)


def test_position_validation():
    service = make_service(websites=10, localities=4, instances=2)
    with pytest.raises(CDNError):
        service.position_id(10, 0, 0)
    with pytest.raises(CDNError):
        service.position_id(0, 4, 0)
    with pytest.raises(CDNError):
        service.position_id(0, 0, 2)


def test_all_positions_iterator():
    service = make_service(websites=4, localities=3, instances=2)
    positions = list(service.all_positions(0))
    assert len(positions) == 12
    assert all(service.decode(pos) == (ws, loc, 0) for ws, loc, pos in positions)


def test_single_instance_single_locality():
    service = DRingKeyService(IdSpace(32), 5, 1, 1)
    ids = {service.position_id(ws, 0, 0) for ws in range(5)}
    assert len(ids) == 5


def test_deterministic_across_constructions():
    a = make_service()
    b = make_service()
    assert all(
        a.position_id(ws, loc, 0) == b.position_id(ws, loc, 0)
        for ws in range(0, 100, 13)
        for loc in range(6)
    )
