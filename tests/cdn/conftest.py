"""Shared fixtures for CDN protocol tests.

Builds small, churn-free worlds so tests control arrivals and failures
explicitly; queries are injected with ``peer.resolve_query`` rather than
waiting for the periodic query process.
"""

import pytest

from repro.cdn.base import ProtocolParams
from repro.cdn.flower.system import FlowerSystem
from repro.cdn.petalup.system import PetalUpSystem, petalup_params
from repro.cdn.squirrel.system import SquirrelSystem
from repro.dht.ring import RingParams
from repro.net.landmarks import LandmarkBinner
from repro.net.topology import ClusteredTopology
from repro.net.transport import Network
from repro.sim.clock import minutes, seconds
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog


def make_params(**overrides):
    defaults = dict(
        query_interval_ms=minutes(6),
        gossip_period_ms=minutes(10),      # fast gossip keeps tests short
        keepalive_period_ms=minutes(10),
        dring=RingParams(bits=24, maintenance_period_ms=seconds(20)),
    )
    defaults.update(overrides)
    return ProtocolParams(**defaults)


class CdnWorld:
    """Simulator + network + one CDN system, without churn."""

    def __init__(
        self,
        system_cls=FlowerSystem,
        seed=1,
        num_websites=2,
        num_localities=2,
        objects_per_website=20,
        num_active_websites=2,
        params=None,
    ):
        self.sim = Simulator(seed=seed)
        self.topology = ClusteredTopology(
            self.sim.rng("topology"), num_clusters=num_localities
        )
        self.network = Network(self.sim, self.topology, default_timeout_ms=1500.0)
        self.binner = LandmarkBinner.for_clustered(self.topology)
        self.catalog = Catalog(
            num_websites=num_websites,
            objects_per_website=objects_per_website,
            num_active_websites=num_active_websites,
        )
        self.params = params or make_params()
        self.system = system_cls(
            self.sim, self.network, self.binner, self.catalog, self.params
        )
        self.system.setup_initial_population()
        self._next_identity = len(self.system.seed_identities)

    # ----------------------------------------------------------------- peers
    def arrive(self, website=0, locality=None):
        """Bring a fresh identity online with a chosen interest/locality."""
        identity = self._next_identity
        self._next_identity += 1
        self.system.assign_website(identity, website)
        peer = self.system.peer_for(identity)
        if locality is not None:
            peer.locality = locality  # pin for deterministic petal targeting
        peer.begin_session()
        return peer

    def directory_of(self, website, locality, instance=0):
        """The peer currently holding a directory position, or None."""
        position = self.system.key_service.position_id(website, locality, instance)
        holder = self.system.ring.holder_of(position)
        if holder is None or not holder.is_active:
            return None
        return self.network.node(holder.host.address)

    # ------------------------------------------------------------------ time
    def run(self, duration_ms):
        self.sim.run(until=self.sim.now + duration_ms)

    def run_until(self, predicate, horizon_ms=minutes(30)):
        deadline = self.sim.now + horizon_ms
        while not predicate() and self.sim.now < deadline and self.sim.pending_events:
            self.sim.step()
        assert predicate(), "condition not reached within horizon"

    def query(self, peer, key):
        """Inject one query and run until *its* record lands.

        Seed directory peers run periodic query processes of their own, so
        we must match on the object key (records carry no peer identity)
        rather than on "any new record".
        """
        started = self.sim.now
        before = len(self.system.metrics)

        def mine():
            return [
                r
                for r in self.system.metrics.records[before:]
                if r.object_key == tuple(key) and r.time >= started
            ]

        peer.resolve_query(key, started_at=started)
        self.run_until(lambda: bool(mine()))
        return mine()[0]


@pytest.fixture
def flower_world():
    return CdnWorld(FlowerSystem)


@pytest.fixture
def squirrel_world():
    return CdnWorld(SquirrelSystem)


@pytest.fixture
def petalup_world():
    return CdnWorld(
        PetalUpSystem,
        params=petalup_params(make_params(), load_limit=3, max_instances=4),
    )
