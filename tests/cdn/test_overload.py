"""Overload extension tests: bounded admission, shedding, warm splits.

Covers the three layers of the overload machinery separately:

- the virtual admission queue on :class:`DirectoryRole` (pure
  bookkeeping, unit-testable without a world);
- query shedding through the wire protocol (a full ``shed_overload``
  outcome recorded on the client);
- replica-aware PetalUp behaviour: partition-seeded splits and direct
  member handoff to the warm successor;
- the per-petal directory registry that makes instance lookups O(1).
"""

import pytest

from repro.cdn.flower.directory import DirectoryRole
from repro.cdn.flower.system import FlowerSystem
from repro.cdn.petalup.system import PetalUpSystem, petalup_params
from repro.sim.clock import minutes, seconds

from tests.cdn.conftest import CdnWorld, make_params


class TestAdmissionQueue:
    def make_role(self):
        return DirectoryRole(
            owner_address=1, website=0, locality=0, instance=0, position_id=42
        )

    def test_fresh_queue_admits_without_wait(self):
        role = self.make_role()
        admitted, wait, depth = role.admit(now=1000.0, service_ms=40.0, limit=4)
        assert admitted and wait == 0.0 and depth == 0
        assert role.busy_until == 1040.0

    def test_backlog_accumulates_and_waits(self):
        role = self.make_role()
        role.admit(now=0.0, service_ms=40.0, limit=4)
        admitted, wait, depth = role.admit(now=0.0, service_ms=40.0, limit=4)
        assert admitted and wait == 40.0 and depth == 1
        assert role.busy_until == 80.0

    def test_full_queue_sheds(self):
        role = self.make_role()
        for _ in range(3):
            assert role.admit(now=0.0, service_ms=40.0, limit=3)[0]
        admitted, wait, depth = role.admit(now=0.0, service_ms=40.0, limit=3)
        assert not admitted and depth == 3
        assert role.queries_shed == 1
        assert role.peak_queue_depth == 3
        # Rejection leaves the backlog untouched.
        assert role.busy_until == 120.0

    # -------------------------------------------- two-class admission
    def test_foreign_limit_reserves_the_top_quarter(self):
        assert DirectoryRole.foreign_limit(1) == 1
        assert DirectoryRole.foreign_limit(2) == 1
        assert DirectoryRole.foreign_limit(4) == 3
        assert DirectoryRole.foreign_limit(8) == 6
        assert DirectoryRole.foreign_limit(100) == 75
        # Never zero, never the full queue (for limit >= 2).
        for limit in range(2, 64):
            bound = DirectoryRole.foreign_limit(limit)
            assert 1 <= bound < limit

    def test_foreign_sheds_where_a_member_is_still_admitted(self):
        role = self.make_role()
        # Fill to the foreign bound (3 of 4 slots).
        for _ in range(3):
            assert role.admit(now=0.0, service_ms=40.0, limit=4, foreign=True)[0]
        # Depth 3 == foreign_limit(4): the next foreign scan sheds ...
        admitted, _, depth = role.admit(
            now=0.0, service_ms=40.0, limit=4, foreign=True
        )
        assert not admitted and depth == 3
        assert role.queries_shed == 1
        assert role.foreign_shed == 1
        # ... while a petal member at the same instant still gets in.
        admitted, wait, depth = role.admit(now=0.0, service_ms=40.0, limit=4)
        assert admitted and depth == 3 and wait == 120.0

    def test_member_shed_does_not_count_as_foreign(self):
        role = self.make_role()
        for _ in range(2):
            role.admit(now=0.0, service_ms=40.0, limit=2)
        admitted, *_ = role.admit(now=0.0, service_ms=40.0, limit=2)
        assert not admitted
        assert role.queries_shed == 1
        assert role.foreign_shed == 0

    def test_idle_directory_never_starves_foreign_scans(self):
        # Even the tightest queue (limit=1, foreign bound 1) admits a
        # foreign scan when idle -- starvation bound of the two-class
        # design.
        role = self.make_role()
        admitted, wait, depth = role.admit(
            now=0.0, service_ms=40.0, limit=1, foreign=True
        )
        assert admitted and wait == 0.0 and depth == 0

    def test_foreign_class_drains_and_readmits(self):
        role = self.make_role()
        for _ in range(3):
            role.admit(now=0.0, service_ms=40.0, limit=4, foreign=True)
        assert not role.admit(now=0.0, service_ms=40.0, limit=4, foreign=True)[0]
        # After one service time the backlog has drained one slot.
        admitted, *_ = role.admit(now=40.0, service_ms=40.0, limit=4, foreign=True)
        assert admitted

    def test_backlog_drains_with_time(self):
        role = self.make_role()
        for _ in range(3):
            role.admit(now=0.0, service_ms=40.0, limit=8)
        assert role.queue_depth(60.0, 40.0) == 2
        assert role.queue_depth(200.0, 40.0) == 0
        admitted, wait, _depth = role.admit(now=200.0, service_ms=40.0, limit=8)
        assert admitted and wait == 0.0
        assert role.busy_until == 240.0


class TestQueryShedding:
    def make_world(self):
        # One-slot queue with a five-minute virtual service time: the
        # first admitted query blocks the queue for the whole test.
        return CdnWorld(
            FlowerSystem,
            params=make_params(
                directory_queue_limit=1, directory_service_ms=minutes(5)
            ),
        )

    def test_second_query_is_shed_with_terminal_outcome(self):
        world = self.make_world()
        world.run(minutes(1))
        first = world.arrive(website=0, locality=0)
        second = world.arrive(website=0, locality=0)
        world.query(first, (0, 11))
        record = world.query(second, (0, 13))
        assert record.outcome == "shed_overload"
        assert world.system.shed_queries >= 1
        assert world.system.metrics.sheds >= 1
        directory = world.directory_of(0, 0)
        assert directory.directory.queries_shed >= 1

    def test_queue_off_never_sheds(self):
        world = CdnWorld(
            FlowerSystem, params=make_params(directory_queue_limit=0)
        )
        world.run(minutes(1))
        peer = world.arrive(website=0, locality=0)
        record = world.query(peer, (0, 11))
        assert record.outcome != "shed_overload"
        assert world.system.shed_queries == 0


def make_overload_petalup_world(load_limit=3, seed=1):
    return CdnWorld(
        PetalUpSystem,
        seed=seed,
        params=petalup_params(
            make_params(overload_shedding=True),
            load_limit=load_limit,
            max_instances=4,
        ),
    )


def fill_petal(world, website=0, locality=0, count=6):
    peers = []
    for index in range(count):
        peer = world.arrive(website=website, locality=locality)
        world.query(peer, (website, index + 1))
        world.run(seconds(30))
        peers.append(peer)
    return peers


class TestReplicaAwareSplit:
    def test_split_seeds_new_instance_with_member_partition(self):
        world = make_overload_petalup_world()
        fill_petal(world, count=6)
        world.run_until(
            lambda: world.system.instance_count(0, 0) >= 2,
            horizon_ms=minutes(15),
        )
        second = world.directory_of(0, 0, instance=1)
        assert second is not None
        # Warm from birth: the split handed the new instance half the
        # member partition before it joined the ring, so it serves its
        # first admitted query from a populated view.
        assert second.directory.load >= 1

    def test_partition_members_repoint_to_new_instance(self):
        world = make_overload_petalup_world()
        peers = fill_petal(world, count=6)
        world.run_until(
            lambda: world.system.instance_count(0, 0) >= 2,
            horizon_ms=minutes(15),
        )
        world.run(minutes(1))
        second = world.directory_of(0, 0, instance=1)
        repointed = [
            peer
            for peer in peers
            if peer.alive
            and peer.dir_info is not None
            and peer.dir_info.address == second.address
        ]
        assert repointed

    def test_sweep_sheds_excess_members_to_successor(self):
        world = make_overload_petalup_world()
        fill_petal(world, count=6)
        world.run_until(
            lambda: world.system.instance_count(0, 0) >= 2,
            horizon_ms=minutes(15),
        )
        first = world.directory_of(0, 0, instance=0)
        second = world.directory_of(0, 0, instance=1)
        extras = [world.arrive(website=0, locality=0) for _ in range(5)]
        for index, peer in enumerate(extras):
            first.directory.add_member(peer.address, [(0, 10 + index)])
        overloaded = first.directory.load
        assert overloaded > world.system.params.directory_load_limit
        world.run(minutes(12))  # one keepalive-period sweep plus jitter
        assert world.system.members_shed > 0
        assert first.directory.members_shed > 0
        assert first.directory.load < overloaded
        shed_addresses = [
            peer.address
            for peer in extras
            if second.directory.has_member(peer.address)
        ]
        assert shed_addresses


class TestDirectoryRegistry:
    def test_registry_matches_ring_holder(self):
        world = CdnWorld(FlowerSystem)
        world.run(minutes(1))
        directory = world.directory_of(0, 0)
        instances = world.system.directory_instances(0, 0)
        assert directory.address in instances
        assert instances[directory.address] is directory

    def test_crash_unregisters(self):
        world = CdnWorld(FlowerSystem)
        world.run(minutes(1))
        directory = world.directory_of(0, 0)
        directory.crash()
        assert directory.address not in world.system.directory_instances(0, 0)

    def test_instance_count_matches_population_scan(self):
        world = make_overload_petalup_world()
        fill_petal(world, count=6)
        world.run(minutes(15))
        system = world.system
        for website in range(system.catalog.num_websites):
            for locality in range(2):
                brute = sum(
                    1
                    for peer in system.peers.values()
                    if peer.alive
                    and peer.directory is not None
                    and peer.directory.website == website
                    and peer.directory.locality == locality
                )
                assert system.instance_count(website, locality) == brute
