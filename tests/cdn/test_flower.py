"""Protocol tests for Flower-CDN: petals, D-ring queries, maintenance."""

from repro.cdn.flower.system import FlowerSystem
from repro.sim.clock import minutes, seconds

from tests.cdn.conftest import CdnWorld, make_params


class TestInitialPopulation:
    def test_one_directory_per_website_locality(self, flower_world):
        world = flower_world
        system = world.system
        assert len(system.seed_identities) == 4  # 2 websites x 2 localities
        for website in range(2):
            for locality in range(2):
                directory = world.directory_of(website, locality)
                assert directory is not None
                assert directory.directory.website == website
                assert directory.directory.locality == locality

    def test_dring_is_formed_and_sorted(self, flower_world):
        members = flower_world.system.ring.members()
        assert len(members) == 4
        ids = [m.node_id for m in members]
        assert ids == sorted(ids)

    def test_seed_directories_sit_in_their_locality(self, flower_world):
        for website in range(2):
            for locality in range(2):
                directory = flower_world.directory_of(website, locality)
                assert directory.locality == locality


class TestNewClientQuery:
    def test_first_query_registers_with_petal_directory(self, flower_world):
        world = flower_world
        client = world.arrive(website=0)
        directory = world.directory_of(0, client.locality)
        record = world.query(client, (0, 5))
        assert record.outcome == "miss_server"  # empty petal: nothing cached
        assert directory.directory.has_member(client.address)
        assert client.dir_info is not None
        assert client.dir_info.address == directory.address

    def test_client_pushes_content_after_first_query(self, flower_world):
        world = flower_world
        client = world.arrive(website=0)
        directory = world.directory_of(0, client.locality)
        world.query(client, (0, 5))
        world.run(seconds(10))  # let the push land
        assert directory.directory.providers_of((0, 5)) == {client.address}

    def test_second_client_hits_via_directory(self, flower_world):
        world = flower_world
        first = world.arrive(website=0, locality=0)
        world.query(first, (0, 5))
        world.run(seconds(10))
        second = world.arrive(website=0, locality=0)
        second.locality = first.locality  # same petal
        record = world.query(second, (0, 5))
        assert record.outcome == "hit_directory"
        assert record.transfer_ms == world.network.latency(
            second.address, first.address
        )

    def test_client_of_other_locality_misses(self, flower_world):
        world = flower_world
        first = world.arrive(website=0, locality=0)
        world.query(first, (0, 5))
        world.run(seconds(10))
        other = world.arrive(website=0, locality=1)
        record = world.query(other, (0, 5))
        # different petal: the copy in locality 0 is invisible without
        # directory collaboration
        assert record.outcome == "miss_server"

    def test_registered_client_leaves_dring_alone(self, flower_world):
        """Section 4: once in the petal, queries do not use D-ring."""
        world = flower_world
        client = world.arrive(website=0)
        world.query(client, (0, 5))
        lookups_before = world.sim.trace.count("chord.lookup")
        world.query(client, (0, 6))
        world.query(client, (0, 7))
        # D-ring lookups may happen for ring maintenance, but the client's
        # own queries go straight to its directory peer
        assert client.dir_info is not None
        assert world.sim.trace.count("chord.lookup") - lookups_before <= 2


class TestContentPeerPaths:
    def test_summary_hit_after_gossip(self, flower_world):
        world = flower_world
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        querier = world.arrive(website=0, locality=0)
        querier.locality = holder.locality
        world.query(querier, (0, 9))  # join the petal
        # let several gossip rounds spread summaries
        world.run(minutes(35))
        if holder.address in querier.peer_summaries:
            record = world.query(querier, (0, 5))
            assert record.outcome in ("hit_summary", "hit_directory")

    def test_fetch_falls_back_to_server_when_provider_dies(self, flower_world):
        world = flower_world
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        world.run(seconds(10))
        querier = world.arrive(website=0, locality=0)
        querier.locality = holder.locality
        holder.crash()
        record = world.query(querier, (0, 5))
        assert record.outcome in ("miss_failed", "miss_server")
        assert (0, 5) in querier.store  # served by the origin regardless

    def test_dead_provider_hint_cleans_index(self, flower_world):
        world = flower_world
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        world.run(seconds(10))
        directory = world.directory_of(0, holder.locality)
        querier = world.arrive(website=0, locality=0)
        querier.locality = holder.locality
        world.query(querier, (0, 9))  # join petal first
        holder.crash()
        world.query(querier, (0, 5))
        world.run(seconds(10))
        # the dead holder is purged; the querier (served by the origin and
        # having pushed) is now the only provider
        assert holder.address not in directory.directory.providers_of((0, 5))


class TestMaintenance:
    def test_keepalive_keeps_member_alive_in_index(self, flower_world):
        world = flower_world
        client = world.arrive(website=0)
        world.query(client, (0, 5))
        directory = world.directory_of(0, client.locality)
        # several sweep periods pass; keepalives must prevent expiry
        world.run(minutes(45))
        assert directory.directory.has_member(client.address)

    def test_silent_member_expires(self, flower_world):
        world = flower_world
        client = world.arrive(website=0)
        world.query(client, (0, 5))
        directory = world.directory_of(0, client.locality)
        client.crash()
        world.run(minutes(45))  # > member_expiry_rounds keepalive periods
        assert not directory.directory.has_member(client.address)

    def test_directory_failure_recovery_by_member(self, flower_world):
        """Section 5.2.1: a content peer detecting the failure replaces the
        directory peer; the petal keeps a directory at the same position."""
        world = flower_world
        client = world.arrive(website=0)
        world.query(client, (0, 5))
        directory = world.directory_of(0, client.locality)
        position = directory.directory.position_id
        directory.crash()
        world.run(minutes(45))
        replacement = world.directory_of(0, client.locality)
        assert replacement is not None
        assert replacement.address != directory.address
        assert replacement.directory.position_id == position

    def test_replacement_directory_learns_content_from_push(self, flower_world):
        world = flower_world
        client = world.arrive(website=0)
        world.query(client, (0, 5))
        directory = world.directory_of(0, client.locality)
        directory.crash()
        world.run(minutes(60))
        replacement = world.directory_of(0, client.locality)
        if replacement is not None and replacement is not client:
            world.run(minutes(30))
            assert client.address in replacement.directory.member_keys or (
                replacement.directory.providers_of((0, 5)) == {client.address}
            )

    def test_new_client_claims_vacant_position(self, flower_world):
        """Section 5.2.2 case 2: no directory exists for the petal; the
        first client becomes its directory peer."""
        world = flower_world
        directory = world.directory_of(1, 0)
        directory.crash()
        client = world.arrive(website=1, locality=0)
        record = world.query(client, (1, 3))
        assert record.outcome in ("miss_server", "miss_failed")
        world.run_until(
            lambda: world.directory_of(1, 0) is not None, horizon_ms=minutes(30)
        )
        replacement = world.directory_of(1, 0)
        assert replacement.directory.website == 1

    def test_graceful_leave_hands_state_to_heir(self, flower_world):
        world = flower_world
        client = world.arrive(website=0)
        world.query(client, (0, 5))
        world.run(seconds(10))
        directory = world.directory_of(0, client.locality)
        directory.leave_directory_gracefully()
        directory.fail()
        world.run_until(
            lambda: world.directory_of(0, client.locality) is not None,
            horizon_ms=minutes(10),
        )
        heir = world.directory_of(0, client.locality)
        assert heir.address == client.address
        assert heir.directory.providers_of((0, 5)) == set() or (
            heir.directory.has_member(client.address) is False
        )


class TestNonActiveWebsites:
    def test_non_active_peer_registers_without_querying(self):
        world = CdnWorld(FlowerSystem, num_websites=2, num_active_websites=1)
        peer = world.arrive(website=1)  # website 1 inactive
        world.run(minutes(10))
        assert peer.queries_issued == 0
        directory = world.directory_of(1, peer.locality)
        assert directory is not None
        assert directory.directory.has_member(peer.address)


class TestCollaboration:
    def test_sibling_walk_turns_remote_copy_into_hit_transfer(self):
        world = CdnWorld(
            FlowerSystem, params=make_params(directory_collaboration=True)
        )
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        world.run(seconds(10))
        other = world.arrive(website=0, locality=1)
        record = world.query(other, (0, 5))
        assert record.outcome in ("hit_transfer", "miss_server")
        if record.outcome == "hit_transfer":
            assert record.transfer_ms == world.network.latency(
                other.address, holder.address
            )
