"""Directory replication and warm takeover (section 5.3 extension).

Unit tests pin the versioning contract (journal, full/delta payloads,
the :class:`ReplicaStore` acceptance rules, per-entry merge dominance);
world tests drive the protocol end to end: periodic syncs landing on the
member heir, a crash replacement winning the section 5.2 race *warm*,
the graceful-leave delta handoff, and the split-brain reconciliation in
which a provisional claimant merges into the ring-registered holder and
demotes (invariants I2/I4).
"""

from repro.cdn.flower.directory import DirectoryRole
from repro.cdn.flower.replication import (
    ReplicaStore,
    delta_sync_payload,
    full_sync_payload,
)
from repro.cdn.flower.system import FlowerSystem
from repro.sim.clock import minutes, seconds
from tests.cdn.conftest import CdnWorld, make_params


def make_role(owner=99, website=0, locality=0, instance=0, position=12345):
    return DirectoryRole(owner, website, locality, instance, position)


def replication_world(**overrides):
    params = make_params(
        replication_k=2, replication_anti_entropy_rounds=2, **overrides
    )
    return CdnWorld(FlowerSystem, params=params)


def _register(world, website=0, locality=0, key=(0, 5)):
    """One client online + queried once so its push lands in the index."""
    client = world.arrive(website=website, locality=locality)
    directory = world.directory_of(website, locality)
    world.query(client, key)
    world.run(seconds(10))
    assert directory.directory.has_member(client.address)
    return client, directory


# ---------------------------------------------------------------------------
# Version journal
# ---------------------------------------------------------------------------

class TestVersionJournal:
    def test_member_changes_bump_the_version(self):
        role = make_role()
        assert role.version == 0
        role.add_member(10, [(0, 1)])
        after_add = role.version
        assert after_add > 0
        role.update_member_keys(10, [(0, 1), (0, 2)])
        assert role.version > after_add

    def test_unchanged_push_does_not_bump(self):
        role = make_role()
        role.add_member(10, [(0, 1)])
        before = role.version
        role.update_member_keys(10, [(0, 1)])  # same key set: no-op
        assert role.version == before

    def test_removal_tombstones(self):
        role = make_role()
        role.add_member(10, [(0, 1)])
        base = role.version
        role.remove_member(10)
        assert role.removed_since(base) == [10]
        assert role.changed_since(base) == []
        # re-admission clears the tombstone
        role.add_member(10)
        assert role.removed_since(base) == []
        assert role.changed_since(base) == [10]

    def test_changed_since_is_exclusive_of_base(self):
        role = make_role()
        role.add_member(10)
        v1 = role.version
        role.add_member(20)
        assert role.changed_since(v1) == [20]
        assert role.changed_since(0) == [10, 20]
        assert role.changed_since(role.version) == []


# ---------------------------------------------------------------------------
# Payloads and the replica store
# ---------------------------------------------------------------------------

class TestReplicaStore:
    def test_full_snapshot_roundtrip(self):
        role = make_role()
        role.add_member(10, [(0, 1), (0, 2)])
        role.add_member(20, [(0, 3)])
        store = ReplicaStore()
        ack = store.accept(full_sync_payload(role, role.owner_address), now=0.0)
        assert ack == {"status": "ok", "version": role.version}
        record = store.get(role.position_id)
        assert record.members == {10: 0, 20: 0}
        assert record.member_keys == {10: [(0, 1), (0, 2)], 20: [(0, 3)]}

    def test_delta_applies_on_exact_base(self):
        role = make_role()
        role.add_member(10, [(0, 1)])
        store = ReplicaStore()
        store.accept(full_sync_payload(role, role.owner_address), now=0.0)
        base = role.version
        role.add_member(20, [(0, 3)])
        role.remove_member(10)
        ack = store.accept(
            delta_sync_payload(role, role.owner_address, base), now=1.0
        )
        assert ack == {"status": "ok", "version": role.version}
        record = store.get(role.position_id)
        assert 10 not in record.members  # tombstone applied
        assert record.member_keys == {20: [(0, 3)]}

    def test_gapped_delta_requests_full(self):
        role = make_role()
        role.add_member(10)
        store = ReplicaStore()
        store.accept(full_sync_payload(role, role.owner_address), now=0.0)
        have = role.version
        role.add_member(20)
        skipped_base = role.version  # never acknowledged by the store
        role.add_member(30)
        ack = store.accept(
            delta_sync_payload(role, role.owner_address, skipped_base), now=1.0
        )
        assert ack == {"status": "need_full", "have": have}

    def test_delta_without_record_requests_full(self):
        role = make_role()
        role.add_member(10)
        ack = ReplicaStore().accept(
            delta_sync_payload(role, role.owner_address, 0), now=0.0
        )
        assert ack["status"] == "need_full"
        assert ack["have"] == -1

    def test_version_behind_full_is_rejected_as_stale(self):
        """A demoted split-brain loser cannot roll a replica backwards."""
        fresh = make_role(owner=1)
        fresh.add_member(10)
        fresh.add_member(20)
        stale = make_role(owner=2)
        stale.add_member(30)
        assert stale.version < fresh.version
        store = ReplicaStore()
        store.accept(full_sync_payload(fresh, 1), now=0.0)
        ack = store.accept(full_sync_payload(stale, 2), now=1.0)
        assert ack == {"status": "stale", "have": fresh.version}
        assert store.get(fresh.position_id).members == {10: 0, 20: 0}


class TestMergeDominance:
    def test_fresher_remote_entry_wins(self):
        mine = make_role(owner=1)
        mine.add_member(10, [(0, 1)])
        # age our copy of 10 by two sweeps without expiring it
        mine.members.increase_ages()
        mine.members.increase_ages()
        adopted = mine.merge_remote(
            {10: 0, 20: 1}, {10: [(0, 7)], 20: [(0, 3)]}, remote_version=1
        )
        assert adopted == 2  # both: 20 unknown, 10 fresher remotely
        assert mine.member_keys[10] == {(0, 7)}
        assert (0, 3) in mine.index and 20 in mine.index[(0, 3)]

    def test_staler_remote_entry_is_ignored(self):
        mine = make_role(owner=1)
        mine.add_member(10, [(0, 1)])
        adopted = mine.merge_remote({10: 5}, {10: [(0, 9)]}, remote_version=0)
        assert adopted == 0
        assert mine.member_keys[10] == {(0, 1)}

    def test_owner_entry_is_never_adopted(self):
        mine = make_role(owner=1)
        adopted = mine.merge_remote({1: 0}, {1: [(0, 1)]}, remote_version=10)
        assert adopted == 0
        assert not mine.has_member(1)

    def test_version_jumps_past_remote(self):
        mine = make_role(owner=1)
        mine.merge_remote({10: 0}, {}, remote_version=40)
        assert mine.version > 40


# ---------------------------------------------------------------------------
# End-to-end: periodic sync
# ---------------------------------------------------------------------------

class TestPeriodicSync:
    def test_member_heir_holds_a_replica(self):
        world = replication_world()
        client, directory = _register(world, key=(0, 5))
        world.run(minutes(25))  # >= two keepalive-cadence sync rounds
        role = directory.directory
        heir = world.network.node(min(role.members.addresses()))
        record = heir.replica_store.get(role.position_id)
        assert record is not None
        assert record.origin == directory.address
        assert client.address in record.members
        assert (0, 5) in record.member_keys[client.address]
        stats = world.system.stats().replication.to_dict()
        assert stats["syncs"] > 0 and stats["fulls"] > 0
        assert stats["replica_holders"] >= 1

    def test_replication_off_runs_no_machinery(self):
        world = CdnWorld(FlowerSystem, params=make_params(replication_k=0))
        _register(world, key=(0, 5))
        world.run(minutes(25))
        stats = world.system.stats().replication.to_dict()
        assert stats["syncs"] == 0
        assert stats["replicas_stored"] == 0
        assert all(
            len(p.replica_store) == 0 for p in world.system.peers.values()
        )


# ---------------------------------------------------------------------------
# End-to-end: warm crash takeover (section 5.2 race, replicated)
# ---------------------------------------------------------------------------

class TestWarmTakeover:
    def test_crash_replacement_installs_replica_state(self):
        world = replication_world()
        first, directory = _register(world, key=(0, 5))
        second, _ = _register(world, key=(0, 9))
        world.run(minutes(25))  # replicas propagate to heir + successors
        world.sim.trace.record("flower.replica_adopted")
        old_role = directory.directory
        assert old_role.load >= 2

        directory.crash()
        world.run(minutes(45))  # strike-out + replacement race

        replacement = world.directory_of(0, 0)
        assert replacement is not None
        assert replacement.address != directory.address
        role = replacement.directory
        # Warm: the survivor members are indexed *before* their next
        # keepalive/push cycle could have re-taught an empty replacement.
        other = second if replacement.address == first.address else first
        assert role.has_member(other.address)
        adopted = world.sim.trace.events("flower.replica_adopted")
        assert adopted, "takeover must be seeded from a replica"
        for event in adopted:
            assert event.payload["staleness_ms"] >= 0.0
        assert any(e.payload["adopted"] > 0 for e in adopted)


# ---------------------------------------------------------------------------
# End-to-end: graceful leave hands a delta to the acked heir
# ---------------------------------------------------------------------------

class TestGracefulLeaveWithReplication:
    def test_heir_is_the_replica_target_and_keeps_the_index(self):
        world = replication_world()
        first, old_dir = _register(world, key=(0, 5))
        second, _ = _register(world, key=(0, 9))
        world.run(minutes(25))  # heir has acknowledged at least one sync
        heir_address = min(first.address, second.address)

        old_dir.leave_directory_gracefully()
        assert old_dir._replicator is None  # driver detached with the role
        world.run(seconds(30))

        new_dir = world.directory_of(0, 0)
        assert new_dir is not None
        assert new_dir.address == heir_address
        role = new_dir.directory
        other = second if heir_address == first.address else first
        other_key = (0, 9) if other is second else (0, 5)
        assert role.has_member(other.address)
        assert other_key in set(role.member_keys.get(other.address, ()))
        assert role.version > 0  # inherited journal, not a cold start


# ---------------------------------------------------------------------------
# End-to-end: split-brain reconciliation (I2 / I4)
# ---------------------------------------------------------------------------

class TestSplitBrainReconciliation:
    def test_provisional_claimant_merges_into_registered_holder(self):
        world = replication_world()
        client, registered = _register(world, key=(0, 5))
        claimant = world.arrive(website=0, locality=0)
        world.run(minutes(5))  # claimant registers as a content peer
        world.sim.trace.record(
            "flower.slot_merged", "flower.directory_demoted"
        )

        # Force the partition-side outcome by hand: the claimant serves
        # the already-taken slot provisionally, with its own member view.
        position = world.system.key_service.position_id(0, 0, 0)
        role = DirectoryRole(claimant.address, 0, 0, 0, position)
        role.add_member(client.address, [(0, 5)])
        claimant._activate_provisional(role)
        assert claimant.directory is role and role.provisional

        world.run(minutes(20))  # discovery + reconcile + demotion

        # I2: exactly one live claimant of the slot survives -- the
        # ring-registered holder; the provisional side demoted.
        holders = [
            peer
            for peer in world.system.peers.values()
            if peer.alive
            and peer.directory is not None
            and peer.directory.position_id == position
        ]
        assert [h.address for h in holders] == [registered.address]
        assert not registered.directory.provisional
        assert claimant.directory is None
        # The loser re-points at the winner (and will re-push to it).
        assert claimant.dir_info is not None
        assert claimant.dir_info.address == registered.address

        # I4: the winner absorbed the loser's state before the demotion.
        merged = world.sim.trace.events("flower.slot_merged")
        assert any(
            e.payload["peer"] == registered.address
            and e.payload["origin"] == claimant.address
            for e in merged
        )
        demoted = world.sim.trace.events("flower.directory_demoted")
        assert any(
            e.payload["peer"] == claimant.address
            and e.payload["winner"] == registered.address
            for e in demoted
        )
        assert registered.directory.has_member(client.address)


# ---------------------------------------------------------------------------
# Replicated search: posting lists over the sync channel (section 5.4)
# ---------------------------------------------------------------------------

class TestPostingReplication:
    def _searchable_role(self):
        from repro.cdn.flower.search import KeywordSpace

        space = KeywordSpace(num_keywords=8)
        role = make_role()
        role.attach_search(space)
        role.add_member(10, [(0, 5)])
        role.add_member(11, [(0, 9)])
        return role, space

    def test_full_payload_carries_postings(self):
        role, space = self._searchable_role()
        payload = full_sync_payload(role, role.owner_address)
        shipped = {kw: {tuple(k) for k in keys} for kw, keys in payload["postings"]}
        for keyword in space.keywords_of((0, 5)):
            assert (0, 5) in shipped[keyword]
        assert payload["postings_removed"] == []

    def test_delta_ships_only_changed_keywords(self):
        role, space = self._searchable_role()
        base = role.version
        role.update_member_keys(10, [(0, 5), (0, 7)])
        payload = delta_sync_payload(role, role.owner_address, base)
        changed = {kw for kw, __ in payload["postings"]}
        assert changed == set(space.keywords_of((0, 7)))

    def test_removal_tombstones_empty_posting_lists(self):
        role, space = self._searchable_role()
        base = role.version
        role.remove_member(11)
        payload = delta_sync_payload(role, role.owner_address, base)
        removed = set(payload["postings_removed"])
        survivors = space.keywords_of((0, 5))
        for keyword in space.keywords_of((0, 9)):
            if keyword not in survivors:
                assert keyword in removed
                assert keyword not in role.postings

    def test_replica_record_answers_searches(self):
        from repro.cdn.flower.search import KeywordSpace

        role, space = self._searchable_role()
        store = ReplicaStore()
        ack = store.accept(full_sync_payload(role, role.owner_address), now=0.0)
        assert ack["status"] == "ok"
        record = store.get(role.position_id)
        keyword = next(iter(space.keywords_of((0, 5))))
        matches = record.search_matches(KeywordSpace(num_keywords=8), keyword, 20)
        assert ((0, 5), 10) in matches

    def test_delta_updates_replica_postings(self):
        role, space = self._searchable_role()
        store = ReplicaStore()
        store.accept(full_sync_payload(role, role.owner_address), now=0.0)
        base = role.version
        role.update_member_keys(10, [(0, 5), (0, 7)])
        ack = store.accept(
            delta_sync_payload(role, role.owner_address, base), now=1.0
        )
        assert ack["status"] == "ok"
        record = store.get(role.position_id)
        keyword = next(iter(space.keywords_of((0, 7))))
        assert (0, 7) in record.postings[keyword]

    def test_search_off_roles_ship_no_postings(self):
        role = make_role()
        role.add_member(10, [(0, 5)])
        payload = full_sync_payload(role, role.owner_address)
        assert "postings" not in payload


# ---------------------------------------------------------------------------
# Split-brain search: provisional serves the cut, demotes without
# double-serving (section 5.4 + I2/I7)
# ---------------------------------------------------------------------------

class TestSplitBrainSearch:
    def _search_world(self):
        from repro.cdn.flower.search import KeywordSearchEngine, KeywordSpace

        world = replication_world()
        world.system.search_engine = KeywordSearchEngine(
            KeywordSpace(num_keywords=8)
        )
        return world

    def test_provisional_answers_scoped_searches_during_partition(self):
        from repro.net.message import Message

        world = self._search_world()
        space = world.system.search_engine.space
        client, registered = _register(world, key=(0, 5))
        claimant = world.arrive(website=0, locality=0)
        world.run(minutes(5))  # claimant registers as a content peer

        # Partition-side outcome: the registered holder is unreachable
        # and the claimant serves the slot provisionally.
        registered.crash()
        position = world.system.key_service.position_id(0, 0, 0)
        role = DirectoryRole(claimant.address, 0, 0, 0, position)
        role.add_member(client.address, [(0, 5)])
        claimant._activate_provisional(role)
        assert claimant.directory is role and role.provisional
        # Promotion attached the search plane: postings are live.
        assert role.search_space is space and role.postings

        # Scoped replica-plane queries are answered authoritatively.
        keyword = next(iter(space.keywords_of((0, 5))))
        reply = claimant.handle_flower_search_replica(
            Message(
                src=client.address,
                dst=claimant.address,
                kind="flower.search_replica",
                payload={"position": position, "keyword": keyword},
            )
        )
        assert reply["status"] == "ok"
        assert reply["source"] == "takeover"
        assert reply["staleness_ms"] == 0.0
        assert ((0, 5), client.address) in [
            (tuple(k), a) for k, a in reply["matches"]
        ]

    def test_demoted_claimant_stops_serving_searches(self):
        from repro.net.message import Message

        world = self._search_world()
        space = world.system.search_engine.space
        client, registered = _register(world, key=(0, 5))
        claimant = world.arrive(website=0, locality=0)
        world.run(minutes(5))
        position = world.system.key_service.position_id(0, 0, 0)
        role = DirectoryRole(claimant.address, 0, 0, 0, position)
        role.add_member(client.address, [(0, 5)])
        claimant._activate_provisional(role)

        world.run(minutes(20))  # discovery + reconcile + demotion

        # The merge demoted the claimant (I2); only the registered holder
        # still answers the slot's searches -- no double-serving.
        assert claimant.directory is None
        keyword = next(iter(space.keywords_of((0, 5))))
        reply = claimant.handle_flower_search_replica(
            Message(
                src=client.address,
                dst=claimant.address,
                kind="flower.search_replica",
                payload={"position": position, "keyword": keyword},
            )
        )
        assert reply.get("source") != "takeover"
        world.sim.trace.record("flower.search_done")
        results = []
        client.search(keyword, results.append)
        world.run(seconds(30))
        assert any(key == (0, 5) for key, __ in results[0])
        done = world.sim.trace.events("flower.search_done")
        assert [e.payload["source"] for e in done] == ["directory"]
