"""Tests for the keyword-search extension (paper section 7 future work)."""

import pytest

from repro.cdn.flower.search import (
    KeywordSearchEngine,
    KeywordSpace,
    SearchAvailabilityTracker,
    staleness_bound_ms,
)
from repro.cdn.flower.system import FlowerSystem
from repro.errors import CDNError
from repro.sim.clock import minutes, seconds

from tests.cdn.conftest import CdnWorld, make_params


class TestKeywordSpace:
    def test_validation(self):
        with pytest.raises(CDNError):
            KeywordSpace(num_keywords=0)
        with pytest.raises(CDNError):
            KeywordSpace(min_keywords=0)
        with pytest.raises(CDNError):
            KeywordSpace(min_keywords=3, max_keywords=2)

    def test_keywords_deterministic(self):
        space = KeywordSpace(num_keywords=30)
        assert space.keywords_of((0, 5)) == space.keywords_of((0, 5))
        assert KeywordSpace(30).keywords_of((0, 5)) == space.keywords_of((0, 5))

    def test_keyword_count_in_bounds(self):
        space = KeywordSpace(num_keywords=30, min_keywords=1, max_keywords=3)
        for ws in range(3):
            for index in range(50):
                keywords = space.keywords_of((ws, index))
                assert 1 <= len(keywords) <= 3
                assert keywords <= set(space.all_keywords())

    def test_matches(self):
        space = KeywordSpace(20)
        key = (1, 7)
        keyword = next(iter(space.keywords_of(key)))
        assert space.matches(key, keyword)
        non_keywords = set(space.all_keywords()) - space.keywords_of(key)
        assert not space.matches(key, next(iter(non_keywords)))

    def test_golden_keyword_sets(self):
        """The memoized derivation pins the exact historical sets: any
        drift here silently re-shards every posting list."""
        space = KeywordSpace(num_keywords=8)
        golden = {
            (0, 0): {"kw3", "kw4"},
            (0, 5): {"kw7"},
            (1, 7): {"kw1", "kw5", "kw7"},
            (3, 11): {"kw1", "kw3"},
            (7, 42): {"kw3"},
        }
        for key, expected in golden.items():
            assert set(space.keywords_of(key)) == expected
        wide = KeywordSpace(num_keywords=30, min_keywords=1, max_keywords=3)
        assert set(wide.keywords_of((0, 5))) == {"kw29"}
        assert set(wide.keywords_of((2, 19))) == {"kw4", "kw12", "kw17"}

    def test_memoization_returns_identical_sets(self):
        space = KeywordSpace(num_keywords=8)
        first = space.keywords_of((0, 5))
        # The cached hit is the *same* frozenset, not a recomputation.
        assert space.keywords_of((0, 5)) is first
        # A fresh space recomputes to an equal value (cache is invisible).
        assert KeywordSpace(num_keywords=8).keywords_of((0, 5)) == first

    def test_cache_eviction_keeps_answers_stable(self):
        space = KeywordSpace(num_keywords=4)
        space._cache_capacity = 8  # force evictions at toy scale
        baseline = {
            (ws, i): space.keywords_of((ws, i))
            for ws in range(4)
            for i in range(16)
        }
        assert len(space._cache) <= 8
        for key, expected in baseline.items():
            assert space.keywords_of(key) == expected


class TestEngineOverIndex:
    def test_search_index_finds_providers(self):
        space = KeywordSpace(10)
        engine = KeywordSearchEngine(space)
        key = (0, 3)
        keyword = next(iter(space.keywords_of(key)))
        matches = engine.search_index({key: {42}}, set(), 99, keyword)
        assert (key, 42) in matches

    def test_own_store_included(self):
        space = KeywordSpace(10)
        engine = KeywordSearchEngine(space)
        key = (0, 3)
        keyword = next(iter(space.keywords_of(key)))
        matches = engine.search_index({}, {key}, 99, keyword)
        assert matches == [(key, 99)]

    def test_max_results_cap(self):
        space = KeywordSpace(1)  # every object matches kw0
        engine = KeywordSearchEngine(space, max_results=3)
        index = {(0, i): {i} for i in range(10)}
        assert len(engine.search_index(index, set(), 99, "kw0")) == 3

    def test_invalid_max_results(self):
        with pytest.raises(CDNError):
            KeywordSearchEngine(KeywordSpace(5), max_results=0)


class TestPetalSearch:
    def make_search_world(self):
        world = CdnWorld()
        world.system.search_engine = KeywordSearchEngine(
            KeywordSpace(num_keywords=8)
        )
        return world

    def test_search_requires_engine(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        with pytest.raises(CDNError):
            peer.search("kw0", lambda matches: None)

    def test_content_peer_searches_via_directory(self):
        world = self.make_search_world()
        space = world.system.search_engine.space
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        world.run(seconds(10))  # push lands in the directory-index
        querier = world.arrive(website=0, locality=0)
        querier.locality = holder.locality
        world.query(querier, (0, 9))  # join the petal
        keyword = next(iter(space.keywords_of((0, 5))))
        results = []
        querier.search(keyword, results.append)
        world.run(seconds(10))
        assert results, "search reply missing"
        assert any(key == (0, 5) for key, __ in results[0])

    def test_directory_answers_locally(self):
        world = self.make_search_world()
        space = world.system.search_engine.space
        directory = world.directory_of(0, 0)
        directory.store.add((0, 5))
        keyword = next(iter(space.keywords_of((0, 5))))
        results = []
        directory.search(keyword, results.append)
        assert results[0] == [((0, 5), directory.address)]

    def test_unregistered_peer_gets_nothing(self):
        world = self.make_search_world()
        peer = world.arrive(website=0)
        results = []
        peer.search("kw0", results.append)
        assert results == [[]]

    def test_search_of_unknown_keyword_is_empty(self):
        world = self.make_search_world()
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        world.run(seconds(10))
        space = world.system.search_engine.space
        absent = set(space.all_keywords()) - space.keywords_of((0, 5))
        directory = world.directory_of(0, 0)
        results = []
        directory.search(next(iter(absent)), results.append)
        matched_keys = {key for key, __ in results[0]}
        assert (0, 5) not in matched_keys


# ---------------------------------------------------------------------------
# Query failover plane (section 5.4)
# ---------------------------------------------------------------------------


def make_failover_world(**overrides):
    params = make_params(
        replication_k=2, replication_anti_entropy_rounds=2, **overrides
    )
    world = CdnWorld(FlowerSystem, params=params)
    world.system.search_engine = KeywordSearchEngine(
        KeywordSpace(num_keywords=8)
    )
    return world


class TestStalenessBound:
    def test_bound_tracks_protocol_periods(self):
        base = make_params()
        slower = make_params(keepalive_period_ms=2 * base.keepalive_period_ms)
        assert staleness_bound_ms(slower) == 2 * staleness_bound_ms(base)
        deeper = make_params(
            replication_k=2,
            replication_anti_entropy_rounds=2
            * base.replication_anti_entropy_rounds,
        )
        assert staleness_bound_ms(deeper) > staleness_bound_ms(base)


class TestSearchFailover:
    def test_failover_serves_replica_when_directory_dies(self):
        world = make_failover_world()
        space = world.system.search_engine.space
        client = world.arrive(website=0, locality=0)
        directory = world.directory_of(0, 0)
        world.query(client, (0, 5))
        world.run(seconds(10))
        assert directory.directory.has_member(client.address)
        # Two keepalive/sync periods: replicas acked, hint harvested.
        world.run(minutes(25))
        assert client._search_position is not None

        world.sim.trace.record("flower.search_done")
        directory.crash()
        keyword = next(iter(space.keywords_of((0, 5))))
        results = []
        client.search(keyword, results.append)
        world.run(minutes(1))  # RPC timeout + retries + failover chain

        assert results, "failed-over search never completed"
        assert any(key == (0, 5) for key, __ in results[0])
        done = world.sim.trace.events("flower.search_done")
        assert len(done) == 1
        event = done[0]
        assert event.payload["source"] in ("replica", "takeover")
        bound = staleness_bound_ms(world.system.params)
        assert 0.0 <= event.payload["staleness_ms"] <= bound

    def test_search_without_failover_state_reports_outage(self):
        """k=0: a dead directory means a sustained, *accounted* outage."""
        world = CdnWorld(FlowerSystem, params=make_params(replication_k=0))
        world.system.search_engine = KeywordSearchEngine(
            KeywordSpace(num_keywords=8)
        )
        space = world.system.search_engine.space
        client = world.arrive(website=0, locality=0)
        directory = world.directory_of(0, 0)
        world.query(client, (0, 5))
        world.run(minutes(25))  # keepalives harvested the (empty) hint

        world.sim.trace.record("flower.search_done")
        directory.crash()
        keyword = next(iter(space.keywords_of((0, 5))))
        results = []
        client.search(keyword, results.append)
        world.run(minutes(1))

        assert results == [[]]
        done = world.sim.trace.events("flower.search_done")
        assert len(done) == 1
        assert done[0].payload["source"] == "none"

    def test_directory_answer_is_source_directory(self):
        world = make_failover_world()
        space = world.system.search_engine.space
        client = world.arrive(website=0, locality=0)
        world.query(client, (0, 5))
        world.run(seconds(10))
        world.sim.trace.record("flower.search_done")
        keyword = next(iter(space.keywords_of((0, 5))))
        results = []
        client.search(keyword, results.append)
        world.run(seconds(10))
        done = world.sim.trace.events("flower.search_done")
        assert [e.payload["source"] for e in done] == ["directory"]
        assert done[0].payload["staleness_ms"] == 0.0


class TestAvailabilityTracker:
    def _emit(self, world, source, staleness_ms=0.0, at=None):
        world.sim.emit(
            "flower.search_done",
            peer=1,
            website=0,
            locality=0,
            keyword="kw0",
            matches=0,
            source=source,
            staleness_ms=staleness_ms,
        )

    def test_window_accounting(self):
        world = CdnWorld(FlowerSystem)
        tracker = SearchAvailabilityTracker(world.sim)
        self._emit(world, "directory")
        self._emit(world, "replica", staleness_ms=1234.0)
        self._emit(world, "none")
        self._emit(world, "unregistered")  # excluded from the denominator
        stats = tracker.window_stats(0.0, 1.0)
        assert stats["issued"] == 3
        assert stats["answered"] == 2
        assert stats["availability"] == pytest.approx(2 / 3)
        assert stats["replica_served"] == 1
        assert stats["max_replica_staleness_ms"] == 1234.0
        assert stats["by_source"] == {
            "directory": 1,
            "replica": 1,
            "none": 1,
        }

    def test_empty_window_is_vacuously_available(self):
        world = CdnWorld(FlowerSystem)
        tracker = SearchAvailabilityTracker(world.sim)
        stats = tracker.window_stats(0.0, 1.0)
        assert stats["issued"] == 0
        assert stats["availability"] == 1.0
