"""Tests for the keyword-search extension (paper section 7 future work)."""

import pytest

from repro.cdn.flower.search import KeywordSearchEngine, KeywordSpace
from repro.errors import CDNError
from repro.sim.clock import seconds

from tests.cdn.conftest import CdnWorld


class TestKeywordSpace:
    def test_validation(self):
        with pytest.raises(CDNError):
            KeywordSpace(num_keywords=0)
        with pytest.raises(CDNError):
            KeywordSpace(min_keywords=0)
        with pytest.raises(CDNError):
            KeywordSpace(min_keywords=3, max_keywords=2)

    def test_keywords_deterministic(self):
        space = KeywordSpace(num_keywords=30)
        assert space.keywords_of((0, 5)) == space.keywords_of((0, 5))
        assert KeywordSpace(30).keywords_of((0, 5)) == space.keywords_of((0, 5))

    def test_keyword_count_in_bounds(self):
        space = KeywordSpace(num_keywords=30, min_keywords=1, max_keywords=3)
        for ws in range(3):
            for index in range(50):
                keywords = space.keywords_of((ws, index))
                assert 1 <= len(keywords) <= 3
                assert keywords <= set(space.all_keywords())

    def test_matches(self):
        space = KeywordSpace(20)
        key = (1, 7)
        keyword = next(iter(space.keywords_of(key)))
        assert space.matches(key, keyword)
        non_keywords = set(space.all_keywords()) - space.keywords_of(key)
        assert not space.matches(key, next(iter(non_keywords)))


class TestEngineOverIndex:
    def test_search_index_finds_providers(self):
        space = KeywordSpace(10)
        engine = KeywordSearchEngine(space)
        key = (0, 3)
        keyword = next(iter(space.keywords_of(key)))
        matches = engine.search_index({key: {42}}, set(), 99, keyword)
        assert (key, 42) in matches

    def test_own_store_included(self):
        space = KeywordSpace(10)
        engine = KeywordSearchEngine(space)
        key = (0, 3)
        keyword = next(iter(space.keywords_of(key)))
        matches = engine.search_index({}, {key}, 99, keyword)
        assert matches == [(key, 99)]

    def test_max_results_cap(self):
        space = KeywordSpace(1)  # every object matches kw0
        engine = KeywordSearchEngine(space, max_results=3)
        index = {(0, i): {i} for i in range(10)}
        assert len(engine.search_index(index, set(), 99, "kw0")) == 3

    def test_invalid_max_results(self):
        with pytest.raises(CDNError):
            KeywordSearchEngine(KeywordSpace(5), max_results=0)


class TestPetalSearch:
    def make_search_world(self):
        world = CdnWorld()
        world.system.search_engine = KeywordSearchEngine(
            KeywordSpace(num_keywords=8)
        )
        return world

    def test_search_requires_engine(self):
        world = CdnWorld()
        peer = world.arrive(website=0)
        with pytest.raises(CDNError):
            peer.search("kw0", lambda matches: None)

    def test_content_peer_searches_via_directory(self):
        world = self.make_search_world()
        space = world.system.search_engine.space
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        world.run(seconds(10))  # push lands in the directory-index
        querier = world.arrive(website=0, locality=0)
        querier.locality = holder.locality
        world.query(querier, (0, 9))  # join the petal
        keyword = next(iter(space.keywords_of((0, 5))))
        results = []
        querier.search(keyword, results.append)
        world.run(seconds(10))
        assert results, "search reply missing"
        assert any(key == (0, 5) for key, __ in results[0])

    def test_directory_answers_locally(self):
        world = self.make_search_world()
        space = world.system.search_engine.space
        directory = world.directory_of(0, 0)
        directory.store.add((0, 5))
        keyword = next(iter(space.keywords_of((0, 5))))
        results = []
        directory.search(keyword, results.append)
        assert results[0] == [((0, 5), directory.address)]

    def test_unregistered_peer_gets_nothing(self):
        world = self.make_search_world()
        peer = world.arrive(website=0)
        results = []
        peer.search("kw0", results.append)
        assert results == [[]]

    def test_search_of_unknown_keyword_is_empty(self):
        world = self.make_search_world()
        holder = world.arrive(website=0, locality=0)
        world.query(holder, (0, 5))
        world.run(seconds(10))
        space = world.system.search_engine.space
        absent = set(space.all_keywords()) - space.keywords_of((0, 5))
        directory = world.directory_of(0, 0)
        results = []
        directory.search(next(iter(absent)), results.append)
        matched_keys = {key for key, __ in results[0]}
        assert (0, 5) not in matched_keys
