"""Protocol tests for Squirrel's home-store (replication) strategy."""

from repro.cdn.squirrel.homestore import HomeStorePeer, HomeStoreSquirrelSystem
from repro.sim.clock import minutes, seconds

from tests.cdn.conftest import CdnWorld


def make_world(seed=1):
    return CdnWorld(HomeStoreSquirrelSystem, seed=seed)


def home_of(world, key):
    system = world.system
    key_id = system.ring.space.hash_value(system.catalog.url(key))
    for member in system.ring.active_members():
        pred = member.predecessor
        if pred is None:
            continue
        if system.ring.space.in_half_open_right(key_id, pred.id, member.node_id):
            return world.network.node(member.host.address)
    return None


def test_miss_replicates_object_at_home():
    world = make_world()
    peer = world.arrive(website=0)
    record = world.query(peer, (0, 5))
    assert record.outcome in ("miss_server", "miss_failed")
    world.run(seconds(5))
    home = home_of(world, (0, 5))
    if home is not None and home is not peer:
        assert (0, 5) in home.replica_store
        # the home never requested this object: a forced replica
        assert (0, 5) not in home.store


def test_second_query_served_by_home_replica():
    world = make_world()
    first = world.arrive(website=0)
    world.query(first, (0, 5))
    world.run(seconds(5))
    home = home_of(world, (0, 5))
    second = world.arrive(website=0)
    world.run_until(lambda: second.chord is not None and second.chord.joined)
    record = world.query(second, (0, 5))
    if home is not None and record.outcome == "hit_home":
        assert record.transfer_ms == world.network.latency(
            second.address, home.address
        )


def test_replicas_lost_when_home_fails():
    """The same churn weakness as the directory variant, on content."""
    world = make_world()
    peer = world.arrive(website=0)
    world.query(peer, (0, 5))
    world.run(seconds(5))
    home = home_of(world, (0, 5))
    if home is None or home is peer:
        return
    home.crash()
    world.run(minutes(5))
    new_home = home_of(world, (0, 5))
    if new_home is not None:
        assert (0, 5) not in new_home.replica_store


def test_forced_replica_accounting():
    world = make_world()
    peer = world.arrive(website=0)
    world.query(peer, (0, 5))
    world.query(peer, (0, 6))
    world.run(seconds(10))
    assert world.system.total_forced_replicas() >= 0


def test_replica_store_does_not_survive_sessions():
    world = make_world()
    peer = world.arrive(website=0)
    peer.replica_store.add((0, 9))
    peer.crash()
    assert peer.replica_store == set()
    peer.begin_session()
    assert (0, 9) not in peer.replica_store
    # but the *interest* cache does survive (same browser cache)
    assert isinstance(peer, HomeStorePeer)
