"""Tests for the repository scripts (sweep runner, EXPERIMENTS renderer)."""

import importlib.util
import json
import pathlib
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parent.parent / "scripts"


def load_script(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_run_full_scale_run_one(tmp_path, monkeypatch):
    """run_one must produce a JSON file with the figure histograms."""
    module = load_script("run_full_scale")
    # shrink the configuration drastically for the test
    from repro.experiments.config import ExperimentConfig

    monkeypatch.setattr(
        ExperimentConfig,
        "paper",
        classmethod(
            lambda cls, population=3000, **kw: ExperimentConfig.scaled(
                population=60,
                duration_hours=1.0,
                num_websites=4,
                num_active_websites=2,
                num_localities=2,
                objects_per_website=20,
            )
        ),
    )
    payload = module.run_one("flower", 60, seed=3, out_dir=tmp_path)
    stored = json.loads((tmp_path / "full_flower_60.json").read_text())
    assert stored["protocol"] == "flower"
    assert "fig4_lookup_histogram" in stored
    assert "fig5_transfer_histogram" in stored
    assert payload["queries"] == stored["queries"]


def test_render_experiments_handles_missing_results(tmp_path, monkeypatch, capsys):
    module = load_script("render_experiments")
    monkeypatch.setattr(module, "RESULTS", tmp_path)  # no result files at all
    assert module.main() == 0
    out = capsys.readouterr().out
    assert "# EXPERIMENTS" in out
    assert "Table 2" in out
    assert "—" in out  # missing cells rendered as dashes


def test_render_experiments_with_one_pair(tmp_path, monkeypatch, capsys):
    module = load_script("render_experiments")
    result = {
        "hit_ratio": 0.5,
        "mean_lookup_latency_ms": 500.0,
        "mean_transfer_ms": 100.0,
        "hit_ratio_curve": [[float(h), 0.02 * h] for h in range(1, 25)],
        "lookup_cdf": [[100.0, 0.5], [2000.0, 1.0]],
        "transfer_cdf": [[50.0, 0.6], [300.0, 1.0]],
        "fig4_lookup_histogram": {"<=150": 0.5, ">1200": 0.1},
        "fig5_transfer_histogram": {"<=50": 0.6, ">300": 0.0},
        "queries": 1000,
        "arrivals": 2000,
        "events_executed": 12345,
        "wall_seconds": 9.0,
    }
    (tmp_path / "full_flower_3000.json").write_text(json.dumps(result))
    squirrel = dict(result, hit_ratio=0.3, mean_lookup_latency_ms=1500.0)
    (tmp_path / "full_squirrel_3000.json").write_text(json.dumps(squirrel))
    monkeypatch.setattr(module, "RESULTS", tmp_path)
    assert module.main() == 0
    out = capsys.readouterr().out
    assert "relative improvement" in out
    assert "| 3000 | Flower-CDN | 0.68 | 0.50 |" in out
    assert "Provenance" in out
