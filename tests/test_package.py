"""Package-level tests: exports, lazy loading, error taxonomy."""

import pytest

import repro
from repro.errors import (
    CDNError,
    ConfigError,
    DHTError,
    ReproError,
    SimulationError,
    TopologyError,
    TransportError,
    WorkloadError,
)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_lazy_exports_resolve():
    assert repro.ExperimentConfig is not None
    assert callable(repro.run_experiment)
    assert repro.ExperimentResult is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.no_such_symbol


def test_every_exception_is_a_repro_error():
    for exc in (
        SimulationError,
        TopologyError,
        TransportError,
        DHTError,
        CDNError,
        ConfigError,
        WorkloadError,
    ):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_all_list_is_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_subpackage_exports():
    from repro import analysis, cdn, dht, experiments, gossip, metrics, net, sim, workload

    assert sim.Simulator
    assert net.Network
    assert dht.ChordNode
    assert gossip.CyclonProtocol
    assert workload.ChurnModel
    assert cdn.CdnSystem
    assert metrics.MetricsCollector
    assert experiments.ExperimentConfig
    assert analysis.ComparisonReport
