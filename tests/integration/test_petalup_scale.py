"""Integration test: PetalUp-CDN under a concentrated community.

The paper's claim (section 4): PetalUp-CDN serves the same queries as
Flower-CDN while keeping every directory peer's load below the configured
limit, by splitting petals across directory instances as they grow.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world, run_experiment

#: Everyone interested in very few websites -> petals far above the limit.
CONCENTRATED = ExperimentConfig.scaled(
    population=160,
    duration_hours=6.0,
    num_websites=2,
    num_active_websites=1,
    num_localities=2,
    objects_per_website=40,
    directory_load_limit=10,
    max_instances=8,
)


@pytest.fixture(scope="module")
def petalup_world():
    world = build_world("petalup", CONCENTRATED, seed=27)
    world.run()
    return world


def test_petals_split_into_multiple_instances(petalup_world):
    system = petalup_world.system
    split_petals = sum(
        1
        for website in range(CONCENTRATED.num_websites)
        for locality in range(CONCENTRATED.num_localities)
        if system.instance_count(website, locality) >= 2
    )
    assert split_petals >= 1


def test_directory_loads_stay_near_limit(petalup_world):
    """No instance should balloon far beyond the limit (soft bound: late
    registrations may briefly exceed it before the next split)."""
    limit = CONCENTRATED.directory_load_limit
    loads = [
        peer.directory.load
        for peer in petalup_world.system.peers.values()
        if peer.alive and peer.directory is not None
    ]
    assert loads, "expected live directory instances"
    assert max(loads) <= 2 * limit


def test_query_semantics_preserved(petalup_world):
    metrics = petalup_world.system.metrics
    assert len(metrics) > 300
    assert metrics.hit_ratio() > 0.3


def test_petalup_matches_flower_hit_ratio():
    """Splitting is a load-management mechanism, not a caching change:
    at equal workloads the hit ratios must be close."""
    flower_config = CONCENTRATED.replace(directory_load_limit=None, max_instances=1)
    flower = run_experiment("flower", flower_config, seed=27)
    petalup = run_experiment("petalup", CONCENTRATED, seed=27)
    assert petalup.hit_ratio == pytest.approx(flower.hit_ratio, abs=0.12)
