"""End-to-end integration tests: whole-system behaviour under churn.

These run short scaled experiments (same code paths as the paper's setup)
and assert the *qualitative* results the paper reports -- petals form, hit
ratios grow, Flower-CDN's locality awareness shows up in the metrics, the
D-ring survives churn.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world, run_experiment
from repro.sim.clock import hours

SMALL = ExperimentConfig.scaled(
    population=120,
    duration_hours=6.0,
    num_websites=6,
    num_active_websites=2,
    num_localities=2,
    objects_per_website=40,
)


@pytest.fixture(scope="module")
def flower_result():
    return run_experiment("flower", SMALL, seed=9)


@pytest.fixture(scope="module")
def squirrel_result():
    return run_experiment("squirrel", SMALL, seed=9)


class TestFlowerEndToEnd:
    def test_queries_flow_and_hit_ratio_positive(self, flower_result):
        assert flower_result.queries > 200
        assert flower_result.hit_ratio > 0.2

    def test_hit_ratio_grows_over_time(self, flower_result):
        """Figure 3's Flower-CDN curve climbs as petals populate."""
        curve = [ratio for __, ratio in flower_result.hit_ratio_curve]
        assert curve[-1] > curve[0]
        assert curve[-1] > 0.3

    def test_all_hit_kinds_occur(self, flower_result):
        assert flower_result.outcome_counts.get("hit_directory", 0) > 0
        assert flower_result.outcome_counts.get("hit_summary", 0) > 0

    def test_population_converges(self, flower_result):
        online = flower_result.extra["online_peers"]
        assert 0.7 * SMALL.population <= online <= 1.3 * SMALL.population

    def test_dring_survives_churn(self, flower_result):
        """Every directory peer dies roughly hourly, yet D-ring persists."""
        assert flower_result.extra["directories"] > 0


class TestLocalityAwareness:
    def test_flower_transfers_are_local(self, flower_result, squirrel_result):
        """Figure 5: Flower serves content from nearby providers while
        Squirrel redirects to random network locations."""
        assert flower_result.mean_transfer_ms < squirrel_result.mean_transfer_ms

    def test_flower_lookups_are_faster(self, flower_result, squirrel_result):
        """Figure 4 / Table 2: full-DHT navigation costs Squirrel dearly."""
        assert (
            flower_result.mean_lookup_latency_ms
            < 0.6 * squirrel_result.mean_lookup_latency_ms
        )


class TestChurnRobustness:
    def test_dring_positions_reoccupied_after_kill(self):
        """Mass-kill every directory peer: recovery (section 5.2) must
        repopulate D-ring from content peers and new clients."""
        world = build_world("flower", SMALL, seed=21)
        world.run(until_ms=hours(2))
        system = world.system
        killed = 0
        for peer in list(system.peers.values()):
            if peer.alive and peer.is_directory:
                peer.crash()
                killed += 1
        assert killed > 0
        assert system.directory_count() == 0
        world.run(until_ms=hours(5))
        assert system.directory_count() > killed // 2

    def test_queries_keep_working_after_mass_directory_failure(self):
        world = build_world("flower", SMALL, seed=22)
        world.run(until_ms=hours(2))
        system = world.system
        for peer in list(system.peers.values()):
            if peer.alive and peer.is_directory:
                peer.crash()
        before = len(system.metrics)
        hits_before = system.metrics.hits
        world.run(until_ms=hours(6))
        assert len(system.metrics) > before
        assert system.metrics.hits > hits_before


class TestDeterminism:
    def test_full_runs_identical(self):
        tiny = SMALL.replace(duration_hours=2.0)
        a = run_experiment("squirrel", tiny, seed=33)
        b = run_experiment("squirrel", tiny, seed=33)
        assert a.to_dict() == b.to_dict()
