"""Integration test: maintenance overhead comparison.

Paper section 3: petals "are maintained via low-cost gossip techniques"
while Squirrel keeps *every* peer inside the DHT, paying ring stabilization
for the whole population.  Flower-CDN's per-peer maintenance traffic must
therefore be substantially lower.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.overhead import OverheadReport

CONFIG = ExperimentConfig.scaled(
    population=120,
    duration_hours=4.0,
    num_websites=6,
    num_active_websites=2,
    num_localities=2,
    objects_per_website=30,
)


@pytest.fixture(scope="module")
def reports():
    out = {}
    for protocol in ("flower", "squirrel"):
        result = run_experiment(protocol, CONFIG, seed=31)
        out[protocol] = OverheadReport(
            result.extra["message_counts"], result.queries
        )
    return out


def test_categories_cover_all_traffic(reports):
    for protocol, report in reports.items():
        assert report.categories["other"] == 0, (
            protocol,
            {k: v for k, v in report.kind_counts.items()
             if k not in ()},
        )


def test_flower_maintenance_cheaper_than_squirrel(reports):
    flower = reports["flower"].maintenance_per_query
    squirrel = reports["squirrel"].maintenance_per_query
    assert flower < 0.6 * squirrel, (flower, squirrel)


def test_flower_gossip_is_low_rate(reports):
    """Hourly gossip/keepalive per content peer: over 4 hours with ~120
    peers that is at most a few thousand messages."""
    gossip = reports["flower"].kind_counts.get("gossip.shuffle", 0)
    keepalive = reports["flower"].kind_counts.get("flower.keepalive", 0)
    assert 0 < gossip + keepalive < 4000


def test_squirrel_dominated_by_ring_maintenance(reports):
    report = reports["squirrel"]
    chord = sum(
        count for kind, count in report.kind_counts.items()
        if kind.startswith("chord.")
    )
    assert chord > 0.7 * report.total
