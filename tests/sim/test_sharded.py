"""Unit tests of the sharded execution layer's building blocks.

End-to-end shard-count invariance (the headline property) is pinned in
``tests/experiments/test_determinism.py``; this module covers the pieces in
isolation: the structured address codec, the canonical bus merge order, the
barrier-floor injection rule, the pure-function topology and the window
scheduler's lockstep sequencing.
"""

import pytest

from repro.errors import ConfigError, TransportError
from repro.net.message import Message
from repro.net.shardnet import (
    BLOCK_BITS,
    MAX_SHARDS,
    MSG,
    REPLY,
    ShardedBinner,
    ShardedNetwork,
    ShardedTopology,
    ShardMap,
)
from repro.net.transport import NetworkNode
from repro.sim.engine import Simulator
from repro.sim.sharded import route_entries, run_windows, run_windows_parallel


# ------------------------------------------------------------------ ShardMap
class TestShardMap:
    def test_round_robin_locality_assignment(self):
        smap = ShardMap(num_shards=2, num_localities=4, num_websites=3)
        assert smap.localities_of(0) == (0, 2)
        assert smap.localities_of(1) == (1, 3)
        assert [smap.shard_of_locality(loc) for loc in range(4)] == [0, 1, 0, 1]

    def test_peer_address_roundtrip(self):
        smap = ShardMap(num_shards=2, num_localities=4, num_websites=3)
        for locality in range(4):
            shard = smap.shard_of_locality(locality)
            for index in (0, 1, smap.locality_capacity - 1):
                address = smap.peer_address(shard, locality, index)
                assert smap.shard_of_address(address) == shard
                assert smap.locality_of_address(address) == locality
                assert not smap.is_server_address(address)

    def test_server_addresses_precede_peers(self):
        smap = ShardMap(num_shards=2, num_localities=2, num_websites=3)
        for shard in range(2):
            for website in range(3):
                address = smap.server_address(shard, website)
                assert smap.shard_of_address(address) == shard
                assert smap.is_server_address(address)
                # Pinned to one of the shard's own localities.
                assert smap.locality_of_address(address) in smap.localities_of(shard)

    def test_seed_peer_address_is_per_locality_index_website(self):
        smap = ShardMap(num_shards=2, num_localities=4, num_websites=3)
        for website in range(3):
            for locality in range(4):
                shard = smap.shard_of_locality(locality)
                assert smap.seed_peer_address(website, locality) == smap.peer_address(
                    shard, locality, website
                )

    def test_capacity_exhaustion_is_a_transport_error(self):
        smap = ShardMap(num_shards=1, num_localities=1, num_websites=1)
        with pytest.raises(TransportError):
            smap.peer_address(0, 0, smap.locality_capacity)

    @pytest.mark.parametrize(
        "shards,localities,websites",
        [
            (0, 4, 3),  # no shards
            (MAX_SHARDS + 1, MAX_SHARDS + 1, 3),  # beyond the packed space
            (5, 4, 3),  # more shards than localities
            (3, 4, 3),  # does not divide
            (1, 1, 1 << BLOCK_BITS),  # servers leave no room for peers
        ],
    )
    def test_invalid_shapes_raise_config_errors(self, shards, localities, websites):
        with pytest.raises(ConfigError):
            ShardMap(shards, localities, websites)

    def test_binner_decodes_exactly(self):
        smap = ShardMap(num_shards=2, num_localities=4, num_websites=2)
        binner = ShardedBinner(smap)
        assert binner.num_localities == 4
        address = smap.peer_address(1, 3, 7)
        assert binner.locality_of(address) == 3


# ------------------------------------------------------------- route_entries
class TestRouteEntries:
    @staticmethod
    def entry(arrival, dst_shard, label):
        return (MSG, arrival, dst_shard, label, "k", {}, 0, arrival, None)

    def test_merge_sorts_by_arrival_then_src_then_serial(self):
        outboxes = {
            1: [self.entry(30.0, 0, "b"), self.entry(10.0, 0, "c")],
            0: [self.entry(30.0, 1, "x"), self.entry(30.0, 0, "a")],
        }
        inboxes = route_entries(outboxes)
        # arrival leads: 10.0 before 30.0 even though serial order says otherwise.
        # Ties break by src shard (0 before 1), then by outbox position.
        assert [e[3] for e in inboxes[0]] == ["c", "a", "b"]
        assert [e[3] for e in inboxes[1]] == ["x"]

    def test_empty_outboxes_produce_no_inboxes(self):
        assert route_entries({0: [], 1: []}) == {}


# --------------------------------------------------- bus injection semantics
class _Recorder(NetworkNode):
    """Records (sim.now, payload) for every delivered ping."""

    def __init__(self, network, cluster_hint=None):
        super().__init__(network, cluster_hint)
        self.seen = []

    def handle_ping(self, message: Message):
        self.seen.append((self.sim.now, message.payload["tag"]))
        return {"ok": True}


def _shard0_world():
    smap = ShardMap(num_shards=2, num_localities=2, num_websites=1)
    sim = Simulator(seed=7)
    topology = ShardedTopology(smap, topology_seed=7)
    network = ShardedNetwork(sim, topology, smap, shard_id=0)
    node = _Recorder(network, cluster_hint=0)
    return smap, sim, network, node


class TestInjection:
    def test_arrivals_before_the_barrier_are_floored_to_it(self):
        smap, sim, network, node = _shard0_world()
        sim.run(until=150.0)
        entry = (MSG, 100.0, 0, node.address, "ping", {"tag": "early"}, 99, 50.0, None)
        network.inject_entries([entry], barrier=150.0)
        sim.run(until=1000.0)
        assert node.seen == [(150.0, "early")]

    def test_arrivals_after_the_barrier_keep_their_natural_time(self):
        smap, sim, network, node = _shard0_world()
        sim.run(until=150.0)
        entry = (MSG, 400.0, 0, node.address, "ping", {"tag": "late"}, 99, 50.0, None)
        network.inject_entries([entry], barrier=150.0)
        sim.run(until=1000.0)
        assert node.seen == [(400.0, "late")]

    def test_rpc_entry_generates_a_reply_entry(self):
        smap, sim, network, node = _shard0_world()
        sim.run(until=150.0)
        token = (1, 0)  # src shard 1, serial 0
        entry = (MSG, 100.0, 0, node.address, "ping", {"tag": "rpc"}, 99, 50.0, token)
        network.inject_entries([entry], barrier=150.0)
        sim.run(until=1000.0)
        assert node.seen == [(150.0, "rpc")]
        assert len(network.outbox) == 1
        tag, arrival, dst_shard, out_token, payload, replier = network.outbox[0]
        assert tag == REPLY
        assert dst_shard == 1 and out_token == token
        assert payload == {"ok": True}
        assert replier == node.address
        assert arrival > 150.0  # reply leg priced with the real link latency

    def test_foreign_delivery_becomes_an_outbox_entry(self):
        smap, sim, network, node = _shard0_world()
        foreign = smap.peer_address(1, 1, 0)
        node.send(foreign, "ping", tag="out")
        sim.run(until=1000.0)
        assert node.seen == []
        assert len(network.outbox) == 1
        assert network.outbox[0][0] == MSG
        assert network.outbox[0][2] == 1  # dst shard
        assert network.bus_entries_out == 1


# ----------------------------------------------------------- ShardedTopology
class TestShardedTopology:
    def test_positions_are_pure_functions_of_seed_and_address(self):
        smap = ShardMap(num_shards=2, num_localities=4, num_websites=2)
        a = ShardedTopology(smap, topology_seed=42)
        b = ShardedTopology(smap, topology_seed=42)
        for locality in range(4):
            address = smap.peer_address(smap.shard_of_locality(locality), locality, 5)
            assert a.position(address) == b.position(address)
        other = ShardedTopology(smap, topology_seed=43)
        address = smap.peer_address(0, 0, 5)
        assert a.position(address) != other.position(address)

    def test_latency_is_symmetric_bounded_and_zero_on_self(self):
        smap = ShardMap(num_shards=2, num_localities=4, num_websites=2)
        topo = ShardedTopology(smap, topology_seed=1)
        addresses = [
            smap.peer_address(smap.shard_of_locality(loc), loc, i)
            for loc in range(4)
            for i in range(3)
        ]
        for a in addresses:
            assert topo.latency(a, a) == 0.0
            for b in addresses:
                if a == b:
                    continue
                lat = topo.latency(a, b)
                assert topo.latency(b, a) == lat
                assert topo.latency_min_ms <= lat <= topo.latency_max_ms

    def test_same_locality_pairs_are_nearer_than_cross_locality(self):
        smap = ShardMap(num_shards=4, num_localities=4, num_websites=2)
        topo = ShardedTopology(smap, topology_seed=3)
        near = topo.latency(smap.peer_address(0, 0, 0), smap.peer_address(0, 0, 1))
        far = topo.latency(smap.peer_address(0, 0, 0), smap.peer_address(2, 2, 0))
        assert near < far

    def test_duplicate_registration_rejected(self):
        smap = ShardMap(num_shards=1, num_localities=1, num_websites=1)
        topo = ShardedTopology(smap, topology_seed=1)
        topo.register(1000)
        with pytest.raises(ConfigError):
            topo.register(1000)


# ----------------------------------------------------------- window scheduler
class _FakeCell:
    """Scripted cell: forwards one entry per window, logs every call."""

    def __init__(self, shard_id, send_to, log):
        self.shard_id = shard_id
        self.send_to = send_to
        self.log = log
        self.now = 0.0
        self.received = []
        self.windows = 0

    def run_to(self, until_ms):
        self.log.append(("run", self.shard_id, until_ms))
        self.now = until_ms

    def drain(self):
        self.windows += 1
        return [(MSG, self.now, self.send_to, f"s{self.shard_id}w{self.windows}")]

    def inject(self, entries, barrier_ms):
        self.log.append(("inject", self.shard_id, barrier_ms, len(entries)))
        self.received.extend(e[3] for e in entries)

    def finalize(self):
        return {"shard_id": self.shard_id, "received": self.received}


class TestRunWindows:
    def test_lockstep_barriers_and_exchange(self):
        log = []
        cells = {0: _FakeCell(0, 1, log), 1: _FakeCell(1, 0, log)}
        results = run_windows(cells, horizon_ms=30.0, window_ms=10.0)
        # Three windows; exchanges happen after the first two barriers only
        # (the horizon barrier never injects -- nothing could run after it).
        assert results[0]["received"] == ["s1w1", "s1w2"]
        assert results[1]["received"] == ["s0w1", "s0w2"]
        run_calls = [item for item in log if item[0] == "run"]
        assert run_calls == [
            ("run", 0, 10.0),
            ("run", 1, 10.0),
            ("run", 0, 20.0),
            ("run", 1, 20.0),
            ("run", 0, 30.0),
            ("run", 1, 30.0),
        ]
        # Every inject sees the barrier it follows.
        assert [item for item in log if item[0] == "inject"] == [
            ("inject", 0, 10.0, 1),
            ("inject", 1, 10.0, 1),
            ("inject", 0, 20.0, 1),
            ("inject", 1, 20.0, 1),
        ]

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ConfigError):
            run_windows({}, horizon_ms=10.0, window_ms=0.0)

    def test_worker_count_must_divide_the_shard_map(self):
        with pytest.raises(ConfigError, match="divide"):
            run_windows_parallel(
                lambda ids: {}, num_shards=4, workers=3, horizon_ms=1.0, window_ms=1.0
            )
