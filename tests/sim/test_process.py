"""Unit tests for periodic processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, desynchronized_start


def test_ticks_at_fixed_period():
    sim = Simulator()
    times = []
    PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
    sim.run(until=45.0)
    assert times == [10.0, 20.0, 30.0, 40.0]


def test_initial_delay_zero_ticks_immediately():
    sim = Simulator()
    times = []
    PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), initial_delay=0.0)
    sim.run(until=25.0)
    assert times == [0.0, 10.0, 20.0]


def test_custom_initial_delay():
    sim = Simulator()
    times = []
    PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), initial_delay=3.0)
    sim.run(until=25.0)
    assert times == [3.0, 13.0, 23.0]


def test_cancel_stops_future_ticks():
    sim = Simulator()
    times = []
    process = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
    sim.schedule(25.0, process.cancel)
    sim.run(until=100.0)
    assert times == [10.0, 20.0]
    assert not process.active
    assert process.ticks == 2


def test_callback_may_cancel_its_own_process():
    sim = Simulator()
    process_box = []

    def tick():
        if sim.now >= 20.0:
            process_box[0].cancel()

    process_box.append(PeriodicProcess(sim, 10.0, tick))
    sim.run(until=100.0)
    assert process_box[0].ticks == 2


def test_cancel_is_idempotent():
    sim = Simulator()
    process = PeriodicProcess(sim, 10.0, lambda: None)
    process.cancel()
    process.cancel()
    sim.run(until=50.0)
    assert process.ticks == 0


def test_invalid_period_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PeriodicProcess(sim, 0.0, lambda: None)
    with pytest.raises(SimulationError):
        PeriodicProcess(sim, -5.0, lambda: None)


def test_jitter_requires_rng():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PeriodicProcess(sim, 10.0, lambda: None, jitter=0.1)


def test_jitter_bounds():
    sim = Simulator(seed=3)
    with pytest.raises(SimulationError):
        PeriodicProcess(sim, 10.0, lambda: None, jitter=1.0, rng=sim.rng("j"))


def test_jittered_gaps_stay_within_band():
    sim = Simulator(seed=5)
    times = []
    PeriodicProcess(
        sim, 100.0, lambda: times.append(sim.now), jitter=0.2, rng=sim.rng("jit")
    )
    sim.run(until=5000.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps, "expected several ticks"
    assert all(80.0 <= gap <= 120.0 for gap in gaps)
    # jitter actually varies the gaps
    assert len(set(round(g, 6) for g in gaps)) > 1


def test_desynchronized_start_in_range():
    sim = Simulator(seed=11)
    rng = sim.rng("start")
    starts = [desynchronized_start(60.0, rng) for _ in range(200)]
    assert all(0.0 <= s < 60.0 for s in starts)
    assert max(starts) > 40.0 and min(starts) < 20.0  # actually spread out
