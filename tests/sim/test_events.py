"""Unit tests for the event heap."""

import pytest

from repro.sim.events import EventQueue


def test_empty_queue():
    queue = EventQueue()
    assert len(queue) == 0
    assert not queue
    assert queue.peek_time() is None
    with pytest.raises(IndexError):
        queue.pop()


def test_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, fired.append, ("c",))
    queue.push(1.0, fired.append, ("a",))
    queue.push(2.0, fired.append, ("b",))
    while queue:
        queue.pop()._fire()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    queue = EventQueue()
    fired = []
    for name in "abcde":
        queue.push(5.0, fired.append, (name,))
    while queue:
        queue.pop()._fire()
    assert fired == list("abcde")


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    handle = queue.push(1.0, fired.append, ("cancelled",))
    queue.push(2.0, fired.append, ("kept",))
    handle.cancel()
    queue.notify_cancelled()
    assert len(queue) == 1
    assert queue.peek_time() == 2.0
    queue.pop()._fire()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert not handle.active
    assert handle.cancelled


def test_cancel_drops_callback_reference():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    handle.cancel()
    assert handle.callback is None
    assert handle.args == ()


def test_clear():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.peek_time() is None


def test_handle_ordering():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    late = queue.push(2.0, lambda: None)
    assert early < late
