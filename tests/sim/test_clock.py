"""Unit tests for time-unit conversions."""

from repro.sim.clock import (
    HOUR,
    MINUTE,
    MS,
    SECOND,
    hours,
    minutes,
    ms_to_hours,
    ms_to_minutes,
    seconds,
)


def test_unit_constants_are_consistent():
    assert SECOND == 1000 * MS
    assert MINUTE == 60 * SECOND
    assert HOUR == 60 * MINUTE


def test_seconds_minutes_hours():
    assert seconds(1.5) == 1500.0
    assert minutes(6) == 360_000.0
    assert hours(24) == 86_400_000.0


def test_roundtrip_minutes():
    assert ms_to_minutes(minutes(7.25)) == 7.25


def test_roundtrip_hours():
    assert ms_to_hours(hours(0.5)) == 0.5


def test_fractional_units():
    assert minutes(0.5) == seconds(30)
    assert hours(1 / 60) == minutes(1)
