"""Unit tests for the Simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_initial_state():
    sim = Simulator(seed=1)
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.events_executed == 0
    assert sim.seed == 1


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    times = []
    sim.schedule(10.0, lambda: times.append(sim.now))
    sim.schedule(5.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [5.0, 10.0]
    assert sim.now == 10.0
    assert sim.events_executed == 2


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_is_half_open():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append("at-10"))
    sim.run(until=10.0)
    assert fired == []          # events at exactly `until` do not fire
    assert sim.now == 10.0      # but the clock lands on `until`
    sim.run(until=10.0)         # idempotent
    assert fired == []
    sim.run(until=10.1)
    assert fired == ["at-10"]


def test_run_tiles_timeline_without_gaps():
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if sim.now < 50:
            sim.schedule(10.0, tick)

    sim.schedule(10.0, tick)
    for horizon in (15.0, 35.0, 80.0):
        sim.run(until=horizon)
    assert ticks == [10.0, 20.0, 30.0, 40.0, 50.0]
    assert sim.now == 80.0


def test_run_backwards_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=20.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_nested_scheduling():
    sim = Simulator()
    order = []

    def outer():
        order.append(("outer", sim.now))
        sim.schedule(5.0, inner)

    def inner():
        order.append(("inner", sim.now))

    sim.schedule(10.0, outer)
    sim.run()
    assert order == [("outer", 10.0), ("inner", 15.0)]


def test_cancel_via_simulator():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10.0, lambda: fired.append(1))
    sim.cancel(handle)
    sim.cancel(handle)  # idempotent
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 1


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_args_passed_to_callback():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), "x", 42)
    sim.run()
    assert got == [("x", 42)]


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=99)
    sim_b = Simulator(seed=99)
    assert [sim_a.rng("churn").random() for _ in range(5)] == [
        sim_b.rng("churn").random() for _ in range(5)
    ]
    # different stream names give different sequences
    assert sim_a.rng("workload").random() != sim_b.rng("churn").random()


def test_emit_routes_to_trace():
    sim = Simulator()
    sim.trace.record("test.kind")
    sim.schedule(7.0, lambda: sim.emit("test.kind", value=3))
    sim.run()
    events = sim.trace.events("test.kind")
    assert len(events) == 1
    assert events[0].time == 7.0
    assert events[0].payload == {"value": 3}
