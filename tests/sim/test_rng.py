"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(42, "churn") == derive_seed(42, "churn")


def test_derive_seed_differs_by_name_and_seed():
    assert derive_seed(42, "churn") != derive_seed(42, "workload")
    assert derive_seed(42, "churn") != derive_seed(43, "churn")


def test_same_name_returns_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_reproducible_across_registries():
    seq_a = [RngRegistry(7).stream("x").random() for _ in range(1)]
    seq_b = [RngRegistry(7).stream("x").random() for _ in range(1)]
    assert seq_a == seq_b


def test_streams_independent():
    registry = RngRegistry(7)
    a = registry.stream("a")
    b = registry.stream("b")
    seq_a = [a.random() for _ in range(10)]
    seq_b = [b.random() for _ in range(10)]
    assert seq_a != seq_b


def test_consuming_one_stream_does_not_perturb_another():
    clean = RngRegistry(7)
    expected = [clean.stream("b").random() for _ in range(5)]

    mixed = RngRegistry(7)
    mixed.stream("a").random()  # interleaved use of another stream
    got_first = mixed.stream("b").random()
    mixed.stream("a").random()
    got_rest = [mixed.stream("b").random() for _ in range(4)]
    assert [got_first] + got_rest == expected


def test_fork_creates_distinct_namespace():
    registry = RngRegistry(7)
    fork = registry.fork("rep-1")
    assert fork.master_seed != registry.master_seed
    assert fork.stream("a").random() != registry.stream("a").random()


def test_fork_is_deterministic():
    a = RngRegistry(7).fork("rep-1").stream("x").random()
    b = RngRegistry(7).fork("rep-1").stream("x").random()
    assert a == b


def test_contains():
    registry = RngRegistry(0)
    assert "a" not in registry
    registry.stream("a")
    assert "a" in registry
