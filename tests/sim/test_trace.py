"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


def test_counters_always_update():
    trace = TraceRecorder()
    trace.emit(1.0, "a")
    trace.emit(2.0, "a")
    trace.emit(3.0, "b")
    assert trace.count("a") == 2
    assert trace.count("b") == 1
    assert trace.count("missing") == 0


def test_records_only_subscribed_kinds():
    trace = TraceRecorder()
    trace.record("keep")
    trace.emit(1.0, "keep", value=1)
    trace.emit(2.0, "drop", value=2)
    assert len(trace.events("keep")) == 1
    assert trace.events("drop") == []
    assert trace.count("drop") == 1  # still counted


def test_recorded_event_contents():
    trace = TraceRecorder()
    trace.record("x")
    trace.emit(5.5, "x", a=1, b="two")
    event = trace.events("x")[0]
    assert event.time == 5.5
    assert event.kind == "x"
    assert event.payload == {"a": 1, "b": "two"}


def test_listeners_invoked_in_order():
    trace = TraceRecorder()
    seen = []
    trace.subscribe("k", lambda e: seen.append(("first", e.payload["n"])))
    trace.subscribe("k", lambda e: seen.append(("second", e.payload["n"])))
    trace.emit(1.0, "k", n=7)
    assert seen == [("first", 7), ("second", 7)]


def test_listener_without_record_does_not_store():
    trace = TraceRecorder()
    seen = []
    trace.subscribe("k", lambda e: seen.append(e))
    trace.emit(1.0, "k")
    assert len(seen) == 1
    assert trace.events("k") == []


def test_clear_single_kind():
    trace = TraceRecorder()
    trace.record("a", "b")
    trace.emit(1.0, "a")
    trace.emit(1.0, "b")
    trace.clear("a")
    assert trace.count("a") == 0
    assert trace.events("a") == []
    assert trace.count("b") == 1


def test_clear_all():
    trace = TraceRecorder()
    trace.record("a")
    trace.emit(1.0, "a")
    trace.clear()
    assert trace.count("a") == 0
    assert trace.events("a") == []
