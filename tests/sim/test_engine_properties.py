"""Property-based tests for the event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(delays=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=80))
@settings(max_examples=120, deadline=None)
def test_property_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, lambda i=index: fired.append((sim.now, i)))
    sim.run()
    times = [t for t, __ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=50))
@settings(max_examples=100, deadline=None)
def test_property_equal_times_fire_in_schedule_order(delays):
    """Ties break by scheduling order -- determinism's cornerstone."""
    sim = Simulator()
    fired = []
    shared_delay = 50.0
    for index in range(len(delays)):
        sim.schedule(shared_delay, lambda i=index: fired.append(i))
    sim.run()
    assert fired == list(range(len(delays)))


@given(
    delays=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=40),
    horizon=st.floats(0.0, 1000.0),
)
@settings(max_examples=100, deadline=None)
def test_property_run_until_half_open(delays, horizon):
    """run(until=h) fires exactly the events strictly before h."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run(until=horizon)
    assert all(delay < horizon for delay in fired)
    assert sorted(fired) == sorted(d for d in delays if d < horizon)
    assert sim.now == horizon


@given(
    delays=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=40),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
)
@settings(max_examples=100, deadline=None)
def test_property_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(delay, lambda i=index: fired.append(i))
        for index, delay in enumerate(delays)
    ]
    cancelled = set()
    for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            sim.cancel(handle)
            cancelled.add(index)
    sim.run()
    assert not (set(fired) & cancelled)
    assert set(fired) == set(range(len(delays))) - cancelled
