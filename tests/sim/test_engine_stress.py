"""Stress tests for the slotted event queue and the batched run loop.

These target the two places the fast representation could silently go
wrong: cancellation storms (tombstones + compaction must not disturb
ordering, accounting or memory), and the ``max_events`` budget boundary
(exactly N events run; the N+1-th raises *before* executing).
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import _COMPACT_MIN_DEAD
from repro.sim.process import PeriodicProcess


# ------------------------------------------------------------ cancel storms
def test_cancellation_storm_preserves_order_and_accounting():
    """Cancel 90% of 5000 events; the survivors fire in exact time order."""
    sim = Simulator(seed=7)
    rng = random.Random(1234)
    fired = []
    handles = []
    for i in range(5000):
        t = rng.uniform(0.0, 1000.0)
        handles.append((t, i, sim.schedule(t, fired.append, (t, i))))
    doomed = rng.sample(range(5000), 4500)
    for i in doomed:
        sim.cancel(handles[i][2])
    doomed_set = set(doomed)
    expected = sorted(
        (t, i) for t, i, _h in handles if i not in doomed_set
    )
    assert sim.pending_events == 500
    sim.run()
    assert [(t, i) for t, i in fired] == expected
    assert sim.events_executed == 500
    assert sim.pending_events == 0


def test_cancellation_storm_compacts_the_heap():
    """Mass cancellation must shrink the heap, not leave tombstone bloat."""
    sim = Simulator()
    keep = sim.schedule(10.0, lambda: None)
    handles = [sim.schedule(1.0, lambda: None) for _ in range(4 * _COMPACT_MIN_DEAD)]
    heap = sim._queue._heap
    assert len(heap) == len(handles) + 1
    for h in handles:
        sim.cancel(h)
    # Compaction triggers once tombstones dominate: only live entries remain,
    # and the heap *list object* is the same one (run() hoists its reference).
    assert sim._queue._heap is heap
    assert len(heap) < len(handles)
    assert sim.pending_events == 1
    assert keep.active
    sim.run()
    assert sim.events_executed == 1


def test_cancel_inside_callbacks_during_run():
    """Callbacks cancelling future events mid-run: lazy tombstones at the
    heap top are discarded by the run loop without executing them."""
    sim = Simulator()
    fired = []
    later = [sim.schedule(10.0 + i, fired.append, i) for i in range(100)]

    def axe():
        for h in later[1::2]:  # cancel every other future event, in flight
            sim.cancel(h)

    sim.schedule(5.0, axe)
    sim.run()
    assert fired == list(range(0, 100, 2))
    assert sim.events_executed == 1 + 50


def test_periodic_process_storm_cancel():
    """Killing a whole population of periodic processes stops every tick."""
    sim = Simulator(seed=3)
    rng = sim.rng("jitter")
    counts = [0] * 200
    procs = [
        PeriodicProcess(
            sim,
            period=10.0,
            callback=(lambda i=i: counts.__setitem__(i, counts[i] + 1)),
            jitter=0.2,
            rng=rng,
        )
        for i in range(200)
    ]
    sim.run(until=55.0)
    assert all(c > 0 for c in counts)
    snapshot = list(counts)
    for p in procs:
        p.cancel()
        p.cancel()  # idempotent
    assert sim.pending_events == 0
    sim.run(until=500.0)
    assert counts == snapshot
    assert all(not p.active for p in procs)


# --------------------------------------------------------- max_events bound
def test_max_events_exact_budget_is_not_an_error():
    """Exactly max_events events inside the horizon is fine."""
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=10)
    assert fired == list(range(10))
    assert sim.events_executed == 10


def test_max_events_boundary_raises_before_excess_event_runs():
    """The (max_events+1)-th event raises *before* its callback executes."""
    sim = Simulator()
    fired = []
    for i in range(11):
        sim.schedule(float(i), fired.append, i)
    with pytest.raises(SimulationError, match="max_events=10"):
        sim.run(max_events=10)
    # The first 10 ran; the 11th was refused without executing.
    assert fired == list(range(10))
    assert sim.events_executed == 10
    assert sim.pending_events == 1


def test_max_events_zero_refuses_first_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    with pytest.raises(SimulationError):
        sim.run(max_events=0)
    assert fired == []
    assert sim.events_executed == 0


def test_max_events_ignores_events_beyond_horizon():
    """Only events inside the half-open horizon count against the budget."""
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(50.0, fired.append, 50)  # beyond the horizon: not counted
    sim.run(until=10.0, max_events=1)
    assert fired == [1]
    assert sim.now == 10.0
    assert sim.pending_events == 1


def test_max_events_does_not_count_tombstones():
    """Cancelled events surfacing at the heap top never consume budget."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(float(i), fired.append, i) for i in range(50)]
    for h in doomed[:49]:
        sim.cancel(h)
    sim.run(max_events=1)
    assert fired == [49]
    assert sim.events_executed == 1
