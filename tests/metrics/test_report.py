"""Unit tests for text table rendering."""

import pytest

from repro.metrics.report import render_table


def test_basic_table():
    text = render_table(
        ["P", "approach", "hit ratio"],
        [[2000, "Squirrel", 0.35], [2000, "Flower-CDN", 0.63]],
        title="Table 2",
    )
    lines = text.splitlines()
    assert lines[0] == "Table 2"
    assert "approach" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "Squirrel" in lines[3]
    assert "0.35" in lines[3]
    assert "Flower-CDN" in lines[4]


def test_column_alignment():
    text = render_table(["a", "b"], [["x", "yy"], ["xxxx", "y"]])
    lines = text.splitlines()
    # first column padded to the widest cell ("xxxx"), so the second column
    # starts at offset 6 on every row
    assert lines[2].index("yy") == 6
    assert lines[3].index("y") == 6


def test_float_formatting():
    text = render_table(["v"], [[1503.4], [0.724], [12.6], [0.0]])
    assert "1503" in text
    assert "0.724" in text
    assert "12.60" in text


def test_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_empty_rows():
    text = render_table(["a", "b"], [])
    assert "a" in text and "b" in text
