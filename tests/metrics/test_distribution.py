"""Unit and property tests for empirical distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CDNError
from repro.metrics.distribution import (
    LOOKUP_LATENCY_EDGES,
    TRANSFER_DISTANCE_EDGES,
    Distribution,
)


def test_empty_distribution():
    dist = Distribution([])
    assert dist.empty
    assert dist.mean() == 0.0
    assert dist.percentile(50) == 0.0
    assert dist.fraction_below(10) == 0.0
    assert dist.histogram([1.0, 2.0]) == {}
    assert dist.cdf_points() == []


def test_moments():
    dist = Distribution([10.0, 20.0, 30.0])
    assert dist.mean() == 20.0
    assert dist.minimum() == 10.0
    assert dist.maximum() == 30.0
    assert len(dist) == 3


def test_percentiles_nearest_rank():
    dist = Distribution(range(1, 101))  # 1..100
    assert dist.percentile(50) == 50
    assert dist.percentile(90) == 90
    assert dist.percentile(100) == 100
    assert dist.percentile(1) == 1
    assert dist.median() == 50


def test_percentile_bounds():
    dist = Distribution([1.0])
    with pytest.raises(CDNError):
        dist.percentile(101)
    with pytest.raises(CDNError):
        dist.percentile(-1)


def test_fraction_below_and_above():
    dist = Distribution([100, 200, 300, 400])
    assert dist.fraction_below(250) == 0.5
    assert dist.fraction_below(400) == 1.0
    assert dist.fraction_below(50) == 0.0
    assert dist.fraction_above(250) == 0.5
    assert abs(dist.fraction_above(400)) < 1e-12


def test_fraction_below_is_inclusive():
    dist = Distribution([100, 100, 200])
    assert dist.fraction_below(100) == pytest.approx(2 / 3)


def test_histogram_buckets_sum_to_one():
    dist = Distribution([10, 100, 200, 500, 1000, 1500, 2500])
    hist = dist.histogram(LOOKUP_LATENCY_EDGES)
    assert abs(sum(hist.values()) - 1.0) < 1e-12
    assert hist["<=150"] == pytest.approx(2 / 7)
    assert hist[">1200"] == pytest.approx(2 / 7)


def test_histogram_labels_match_paper_buckets():
    dist = Distribution([10])
    labels = list(dist.histogram(TRANSFER_DISTANCE_EDGES))
    assert labels == ["<=50", "50-100", "100-150", "150-200", "200-300", ">300"]


def test_histogram_rejects_unsorted_edges():
    dist = Distribution([1.0])
    with pytest.raises(CDNError):
        dist.histogram([5.0, 2.0])
    with pytest.raises(CDNError):
        dist.histogram([2.0, 2.0])


def test_cdf_points_end_at_one():
    dist = Distribution(range(100))
    points = dist.cdf_points(10)
    assert points[-1][1] == 1.0
    values = [v for v, __ in points]
    fractions = [f for __, f in points]
    assert values == sorted(values)
    assert fractions == sorted(fractions)


@given(samples=st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_percentile_monotone(samples):
    dist = Distribution(samples)
    previous = dist.minimum()
    for q in (10, 25, 50, 75, 90, 100):
        value = dist.percentile(q)
        assert value >= previous
        previous = value


@given(
    samples=st.lists(st.floats(0, 1000), min_size=1, max_size=100),
    threshold=st.floats(0, 1000),
)
@settings(max_examples=100, deadline=None)
def test_property_fractions_complementary(samples, threshold):
    dist = Distribution(samples)
    total = dist.fraction_below(threshold) + dist.fraction_above(threshold)
    assert abs(total - 1.0) < 1e-9
