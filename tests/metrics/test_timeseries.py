"""Unit tests for the hit-ratio time series."""

import pytest

from repro.errors import CDNError
from repro.metrics.timeseries import RatioSeries


def filled_series():
    series = RatioSeries()
    # window 1 (0-10]: 2 hits of 3; window 2 (10-20]: 0 of 1; window 3: empty
    series.observe(1.0, True)
    series.observe(5.0, True)
    series.observe(9.0, False)
    series.observe(15.0, False)
    return series


def test_observe_requires_time_order():
    series = RatioSeries()
    series.observe(5.0, True)
    with pytest.raises(CDNError):
        series.observe(4.0, True)


def test_overall():
    series = filled_series()
    assert series.overall() == 0.5
    assert len(series) == 4
    assert RatioSeries().overall() == 0.0


def test_cumulative_curve():
    series = filled_series()
    points = series.cumulative(window_ms=10.0, until=30.0)
    assert [p.time for p in points] == [10.0, 20.0, 30.0]
    assert points[0].ratio == pytest.approx(2 / 3)
    assert points[0].total == 3
    assert points[1].ratio == pytest.approx(2 / 4)
    assert points[2].ratio == pytest.approx(2 / 4)  # no new data: flat
    assert points[2].total == 4


def test_windowed_curve():
    series = filled_series()
    points = series.windowed(window_ms=10.0, until=30.0)
    assert points[0].ratio == pytest.approx(2 / 3)
    assert points[1].ratio == 0.0
    assert points[1].total == 1
    assert points[2].total == 0
    assert points[2].ratio == 0.0


def test_empty_series_curves():
    series = RatioSeries()
    points = series.cumulative(10.0, 20.0)
    assert [p.ratio for p in points] == [0.0, 0.0]


def test_validation():
    series = filled_series()
    with pytest.raises(CDNError):
        series.cumulative(0.0, 10.0)
    with pytest.raises(CDNError):
        series.windowed(10.0, 5.0)


def test_boundary_observation_included_in_first_window():
    series = RatioSeries()
    series.observe(10.0, True)
    points = series.cumulative(10.0, 10.0)
    assert points[0].total == 1
