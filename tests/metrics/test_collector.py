"""Unit tests for the metrics collector."""

import pytest

from repro.errors import CDNError
from repro.metrics.collector import (
    ALL_OUTCOMES,
    FAILED_OUTCOMES,
    HIT_OUTCOMES,
    MISS_OUTCOMES,
    SERVED_OUTCOMES,
    SHED_OUTCOMES,
    MetricsCollector,
    QueryRecord,
)


def rec(outcome, time=1.0, website=0, locality=0, lookup=100.0, transfer=50.0, hops=3):
    return QueryRecord(
        time=time,
        website=website,
        object_key=(website, 1),
        locality=locality,
        outcome=outcome,
        lookup_latency_ms=lookup,
        transfer_ms=transfer,
        hops=hops,
    )


def test_outcome_taxonomy_is_partition():
    assert HIT_OUTCOMES & MISS_OUTCOMES == frozenset()
    assert HIT_OUTCOMES & FAILED_OUTCOMES == frozenset()
    assert MISS_OUTCOMES & FAILED_OUTCOMES == frozenset()
    assert SHED_OUTCOMES & (HIT_OUTCOMES | MISS_OUTCOMES | FAILED_OUTCOMES) == frozenset()
    assert HIT_OUTCOMES | MISS_OUTCOMES == SERVED_OUTCOMES
    assert SERVED_OUTCOMES | FAILED_OUTCOMES | SHED_OUTCOMES == ALL_OUTCOMES


def test_failed_outcomes_excluded_from_service_stats():
    """Failed queries count as issued work but never as service: they are
    invisible to the hit ratio and the latency projections."""
    collector = MetricsCollector()
    collector.record(rec("hit_directory"))
    collector.record(rec("miss_server"))
    collector.record(rec("failed_crash", lookup=9999.0, transfer=0.0))
    collector.record(rec("failed_unreachable", lookup=9999.0, transfer=0.0))
    assert len(collector) == 4
    assert collector.failures == 2
    assert collector.hit_ratio() == 0.5  # hits / (hits + misses)
    assert 9999.0 not in collector.lookup_latencies(hits_only=False)
    assert collector.outcome_count("failed_crash") == 1


def test_is_hit():
    assert rec("hit_summary").is_hit
    assert rec("hit_directory").is_hit
    assert not rec("miss_server").is_hit


def test_unknown_outcome_rejected():
    collector = MetricsCollector()
    with pytest.raises(CDNError):
        collector.record(rec("hit_magic"))


def test_hit_ratio():
    collector = MetricsCollector()
    assert collector.hit_ratio() == 0.0
    for outcome in ["hit_summary", "hit_directory", "miss_server", "miss_failed"]:
        collector.record(rec(outcome))
    assert collector.hit_ratio() == 0.5
    assert collector.hits == 2
    assert collector.misses == 2
    assert len(collector) == 4


def test_outcome_count():
    collector = MetricsCollector()
    collector.record(rec("hit_summary"))
    collector.record(rec("hit_summary"))
    assert collector.outcome_count("hit_summary") == 2
    assert collector.outcome_count("miss_server") == 0


def test_means():
    collector = MetricsCollector()
    collector.record(rec("hit_summary", lookup=100.0, transfer=10.0))
    collector.record(rec("miss_server", lookup=300.0, transfer=30.0))
    assert collector.mean_lookup_latency_ms() == 200.0
    assert collector.mean_transfer_ms() == 20.0
    assert collector.mean_lookup_latency_ms(hits_only=True) == 100.0
    assert collector.mean_transfer_ms(hits_only=True) == 10.0


def test_means_empty():
    collector = MetricsCollector()
    assert collector.mean_lookup_latency_ms() == 0.0
    assert collector.mean_transfer_ms() == 0.0


def test_projections():
    collector = MetricsCollector()
    collector.record(rec("hit_summary", lookup=1.0))
    collector.record(rec("miss_server", lookup=2.0))
    assert collector.lookup_latencies() == [1.0, 2.0]
    assert collector.lookup_latencies(hits_only=True) == [1.0]
    assert collector.transfer_distances() == [50.0, 50.0]


def test_filtered():
    collector = MetricsCollector()
    collector.record(rec("hit_summary", website=1, locality=2))
    collector.record(rec("miss_server", website=1, locality=3))
    collector.record(rec("hit_directory", website=2, locality=2))
    assert len(collector.filtered(website=1)) == 2
    assert len(collector.filtered(locality=2)) == 2
    assert len(collector.filtered(website=1, locality=2)) == 1
    assert len(collector.filtered(outcomes=HIT_OUTCOMES)) == 2
    assert len(collector.filtered(website=9)) == 0
