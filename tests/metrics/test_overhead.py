"""Unit tests for message-overhead accounting."""

from repro.metrics.overhead import OverheadReport, classify


def test_classification_covers_every_protocol_kind():
    maintenance = [
        "chord.probe", "chord.route", "chord.get_state", "chord.notify",
        "chord.ping", "gossip.shuffle", "flower.keepalive", "flower.push",
        "flower.dead_provider", "flower.promote", "flower.handoff",
        "squirrel.dead",
    ]
    query = [
        "flower.query", "flower.fetch", "squirrel.query", "squirrel.fetch",
        "squirrel.homefetch", "squirrel.store", "server.fetch",
    ]
    for kind in maintenance:
        assert classify(kind) == "maintenance", kind
    for kind in query:
        assert classify(kind) == "query", kind
    assert classify("mystery.kind") == "other"


def test_report_totals_and_ratios():
    report = OverheadReport(
        {"chord.ping": 600, "gossip.shuffle": 300, "flower.query": 50,
         "server.fetch": 50},
        queries=100,
    )
    assert report.total == 1000
    assert report.categories["maintenance"] == 900
    assert report.categories["query"] == 100
    assert report.maintenance_per_query == 9.0
    assert report.query_messages_per_query == 1.0


def test_report_zero_queries():
    report = OverheadReport({"chord.ping": 10}, queries=0)
    assert report.maintenance_per_query == 10.0
    assert report.query_messages_per_query == 0.0


def test_top_kinds_sorted_descending():
    report = OverheadReport({"a.x": 1, "b.x": 5, "c.x": 3}, queries=1)
    top = list(report.top_kinds(2))
    assert top == ["b.x", "c.x"]


def test_render_contains_sections():
    report = OverheadReport({"chord.ping": 10, "flower.query": 5}, queries=5)
    text = report.render()
    assert "message overhead" in text
    assert "heaviest message kinds" in text
    assert "maintenance messages per query" in text
