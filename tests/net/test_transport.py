"""Unit tests for the message transport: latency, liveness, RPC timeouts."""

import pytest

from repro.errors import TransportError
from repro.net.message import Message
from repro.net.topology import ExplicitTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.engine import Simulator


MATRIX = [
    [0.0, 100.0, 250.0],
    [100.0, 0.0, 40.0],
    [250.0, 40.0, 0.0],
]


class Echo(NetworkNode):
    """Test node: records pings, echoes RPCs back."""

    def __init__(self, network):
        super().__init__(network)
        self.pings = []

    def handle_ping(self, message):
        self.pings.append((self.sim.now, message.src, message.payload))
        return {"echo": message.payload.get("value"), "at": self.sim.now}


def make_network():
    sim = Simulator(seed=1)
    network = Network(sim, ExplicitTopology(MATRIX), default_timeout_ms=1000.0)
    nodes = [Echo(network) for _ in range(3)]
    return sim, network, nodes


def test_addresses_assigned_sequentially():
    __, network, nodes = make_network()
    assert [n.address for n in nodes] == [0, 1, 2]
    assert network.node(1) is nodes[1]
    assert len(network) == 3


def test_unknown_address_rejected():
    __, network, __ = make_network()
    with pytest.raises(TransportError):
        network.node(99)


def test_one_way_message_arrives_after_latency():
    sim, __, nodes = make_network()
    nodes[0].send(1, "ping", value=7)
    sim.run()
    assert nodes[1].pings == [(100.0, 0, {"value": 7})]


def test_message_from_dead_node_not_sent():
    sim, network, nodes = make_network()
    nodes[0].fail()
    nodes[0].send(1, "ping")
    sim.run()
    assert nodes[1].pings == []
    assert network.messages_sent == 0


def test_message_to_dead_node_dropped():
    sim, network, nodes = make_network()
    nodes[1].fail()
    nodes[0].send(1, "ping")
    sim.run()
    assert nodes[1].pings == []
    assert network.messages_dropped == 1


def test_dead_at_delivery_time_drops():
    """A node that dies while the message is in flight never receives it."""
    sim, __, nodes = make_network()
    nodes[0].send(1, "ping")       # delivery at t=100
    sim.schedule(50.0, nodes[1].fail)
    sim.run()
    assert nodes[1].pings == []


def test_missing_handler_raises():
    sim, __, nodes = make_network()
    nodes[0].send(1, "no.such.kind")
    with pytest.raises(TransportError):
        sim.run()


def test_rpc_round_trip_timing():
    sim, __, nodes = make_network()
    replies = []
    nodes[0].rpc(1, "ping", {"value": 3}, on_reply=lambda p: replies.append((sim.now, p)))
    sim.run()
    assert len(replies) == 1
    when, payload = replies[0]
    assert when == 200.0                       # 100 ms out + 100 ms back
    assert payload["echo"] == 3
    assert payload["at"] == 100.0              # handler ran at delivery time


def test_rpc_timeout_fires_when_destination_dead():
    sim, __, nodes = make_network()
    outcomes = []
    nodes[1].fail()
    nodes[0].rpc(
        1,
        "ping",
        on_reply=lambda p: outcomes.append("reply"),
        on_timeout=lambda: outcomes.append(("timeout", sim.now)),
    )
    sim.run()
    assert outcomes == [("timeout", 1000.0)]


def test_rpc_timeout_not_fired_after_reply():
    sim, __, nodes = make_network()
    outcomes = []
    nodes[0].rpc(
        1,
        "ping",
        on_reply=lambda p: outcomes.append("reply"),
        on_timeout=lambda: outcomes.append("timeout"),
    )
    sim.run()
    assert outcomes == ["reply"]


def test_rpc_custom_timeout():
    sim, __, nodes = make_network()
    outcomes = []
    nodes[1].fail()
    nodes[0].rpc(1, "ping", on_timeout=lambda: outcomes.append(sim.now), timeout_ms=300.0)
    sim.run()
    assert outcomes == [300.0]


def test_rpc_callbacks_suppressed_when_source_dies():
    sim, __, nodes = make_network()
    outcomes = []
    nodes[0].rpc(
        1,
        "ping",
        on_reply=lambda p: outcomes.append("reply"),
        on_timeout=lambda: outcomes.append("timeout"),
    )
    sim.schedule(150.0, nodes[0].fail)  # die before the reply lands at 200
    sim.run()
    assert outcomes == []


def test_rpc_reply_wins_even_if_timeout_shorter_than_round_trip():
    """If the timeout fires first, the late reply must be ignored."""
    sim, __, nodes = make_network()
    outcomes = []
    nodes[0].rpc(
        2,  # 250 ms each way -> reply at 500
        "ping",
        on_reply=lambda p: outcomes.append("reply"),
        on_timeout=lambda: outcomes.append("timeout"),
        timeout_ms=400.0,
    )
    sim.run()
    assert outcomes == ["timeout"]


def test_revive_restores_delivery():
    sim, __, nodes = make_network()
    nodes[1].fail()
    nodes[1].revive()
    nodes[0].send(1, "ping", value=1)
    sim.run()
    assert len(nodes[1].pings) == 1


def test_message_counters():
    sim, network, nodes = make_network()
    nodes[0].send(1, "ping")
    nodes[0].rpc(1, "ping", on_reply=lambda p: None)
    sim.run()
    # one one-way + one request + one reply
    assert network.messages_sent == 3


def test_message_repr_and_dataclass():
    msg = Message(src=1, dst=2, kind="ping", payload={"a": 1}, sent_at=5.0)
    assert msg.request_id is None
    assert "ping" in repr(msg)
