"""Unit and property tests for the latency topologies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.net.topology import ClusteredTopology, ExplicitTopology, UniformRandomTopology


def make_clustered(seed=1, **kwargs):
    return ClusteredTopology(random.Random(seed), **kwargs)


class TestClusteredTopology:
    def test_requires_valid_parameters(self):
        with pytest.raises(TopologyError):
            make_clustered(num_clusters=0)
        with pytest.raises(TopologyError):
            make_clustered(latency_min_ms=0.0)
        with pytest.raises(TopologyError):
            make_clustered(latency_min_ms=500.0, latency_max_ms=10.0)

    def test_register_and_knows(self):
        topo = make_clustered()
        assert not topo.knows(0)
        topo.register(0)
        assert topo.knows(0)

    def test_double_register_rejected(self):
        topo = make_clustered()
        topo.register(0)
        with pytest.raises(TopologyError):
            topo.register(0)

    def test_unknown_address_rejected(self):
        topo = make_clustered()
        with pytest.raises(TopologyError):
            topo.position(5)
        with pytest.raises(TopologyError):
            topo.cluster_of(5)

    def test_self_latency_is_zero(self):
        topo = make_clustered()
        topo.register(0)
        assert topo.latency(0, 0) == 0.0

    def test_latency_symmetric_and_in_range(self):
        topo = make_clustered()
        for address in range(50):
            topo.register(address)
        for a in range(0, 50, 7):
            for b in range(1, 50, 11):
                if a == b:
                    continue
                lat = topo.latency(a, b)
                assert lat == topo.latency(b, a)
                assert 10.0 <= lat <= 500.0

    def test_intra_cluster_latency_below_inter_cluster(self):
        topo = make_clustered(seed=3)
        for address in range(300):
            topo.register(address)
        intra, inter = [], []
        for a in range(100):
            for b in range(a + 1, 100):
                lat = topo.latency(a, b)
                if topo.cluster_of(a) == topo.cluster_of(b):
                    intra.append(lat)
                else:
                    inter.append(lat)
        assert intra and inter
        mean_intra = sum(intra) / len(intra)
        mean_inter = sum(inter) / len(inter)
        # clusters must create a strong locality signal (several-fold gap)
        assert mean_intra * 3 < mean_inter

    def test_positions_inside_unit_square(self):
        topo = make_clustered(seed=9)
        for address in range(200):
            topo.register(address)
            x, y = topo.position(address)
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_all_clusters_populated(self):
        topo = make_clustered(seed=2, num_clusters=6)
        for address in range(600):
            topo.register(address)
        used = {topo.cluster_of(a) for a in range(600)}
        assert used == set(range(6))

    def test_deterministic_given_seed(self):
        topo_a = make_clustered(seed=42)
        topo_b = make_clustered(seed=42)
        for address in range(20):
            topo_a.register(address)
            topo_b.register(address)
        assert all(
            topo_a.latency(a, b) == topo_b.latency(a, b)
            for a in range(20)
            for b in range(20)
        )


class TestUniformRandomTopology:
    def test_parameters_validated(self):
        with pytest.raises(TopologyError):
            UniformRandomTopology(seed=1, latency_min_ms=500, latency_max_ms=10)

    def test_requires_registration(self):
        topo = UniformRandomTopology(seed=1)
        topo.register(0)
        with pytest.raises(TopologyError):
            topo.latency(0, 1)

    def test_double_register_rejected(self):
        topo = UniformRandomTopology(seed=1)
        topo.register(3)
        with pytest.raises(TopologyError):
            topo.register(3)

    @given(a=st.integers(0, 500), b=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_symmetric_stable_in_range(self, a, b):
        topo = UniformRandomTopology(seed=7)
        topo.register(a)
        if b != a:
            topo.register(b)
        lat = topo.latency(a, b)
        assert lat == topo.latency(b, a)
        assert lat == topo.latency(a, b)  # stable across calls
        if a == b:
            assert lat == 0.0
        else:
            assert 10.0 <= lat <= 500.0

    def test_no_locality_structure(self):
        """Mean latency should sit near the middle of the range."""
        topo = UniformRandomTopology(seed=11)
        for address in range(80):
            topo.register(address)
        lats = [topo.latency(a, b) for a in range(80) for b in range(a + 1, 80)]
        mean = sum(lats) / len(lats)
        assert 220.0 < mean < 290.0  # uniform(10, 500) has mean 255


class TestExplicitTopology:
    MATRIX = [
        [0.0, 10.0, 20.0],
        [10.0, 0.0, 30.0],
        [20.0, 30.0, 0.0],
    ]

    def test_exact_latencies(self):
        topo = ExplicitTopology(self.MATRIX)
        for address in range(3):
            topo.register(address)
        assert topo.latency(0, 1) == 10.0
        assert topo.latency(1, 2) == 30.0
        assert topo.latency(2, 0) == 20.0

    def test_rejects_asymmetric(self):
        with pytest.raises(TopologyError):
            ExplicitTopology([[0.0, 1.0], [2.0, 0.0]])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(TopologyError):
            ExplicitTopology([[1.0, 2.0], [2.0, 0.0]])

    def test_rejects_non_square(self):
        with pytest.raises(TopologyError):
            ExplicitTopology([[0.0, 1.0]])

    def test_rejects_negative(self):
        with pytest.raises(TopologyError):
            ExplicitTopology([[0.0, -1.0], [-1.0, 0.0]])

    def test_rejects_address_outside_matrix(self):
        topo = ExplicitTopology(self.MATRIX)
        with pytest.raises(TopologyError):
            topo.register(3)
