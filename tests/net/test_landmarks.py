"""Unit tests for landmark-based locality binning."""

import random

import pytest

from repro.errors import TopologyError
from repro.net.landmarks import LandmarkBinner
from repro.net.topology import ClusteredTopology, UniformRandomTopology


def test_requires_at_least_one_locality():
    with pytest.raises(TopologyError):
        LandmarkBinner(0, lambda a, i: 0.0)


def test_locality_is_nearest_landmark():
    probes = {0: [5.0, 1.0, 9.0], 1: [2.0, 8.0, 3.0]}
    binner = LandmarkBinner(3, lambda addr, i: probes[addr][i])
    assert binner.locality_of(0) == 1
    assert binner.locality_of(1) == 0


def test_locality_is_cached():
    calls = []

    def probe(addr, i):
        calls.append((addr, i))
        return float(i)

    binner = LandmarkBinner(2, probe)
    binner.locality_of(7)
    first_calls = len(calls)
    binner.locality_of(7)
    assert len(calls) == first_calls  # no new probes


def test_forget_clears_cache():
    count = {"n": 0}

    def probe(addr, i):
        count["n"] += 1
        return float(i)

    binner = LandmarkBinner(2, probe)
    binner.locality_of(1)
    binner.forget(1)
    binner.locality_of(1)
    assert count["n"] == 4  # probed twice (2 landmarks each)


def test_landmark_vector_length():
    binner = LandmarkBinner(4, lambda a, i: float(i))
    assert binner.landmark_vector(0) == [0.0, 1.0, 2.0, 3.0]


def test_clustered_binning_recovers_ground_truth():
    """With landmarks at the cluster centres, binning should recover the
    topology's ground-truth clusters for nearly every peer."""
    topo = ClusteredTopology(random.Random(5), num_clusters=6)
    for address in range(400):
        topo.register(address)
    binner = LandmarkBinner.for_clustered(topo)
    matches = sum(
        1 for a in range(400) if binner.locality_of(a) == topo.cluster_of(a)
    )
    assert matches >= 390  # > 97 % agreement


def test_for_addresses_on_uniform_topology():
    topo = UniformRandomTopology(seed=9)
    for address in range(50):
        topo.register(address)
    binner = LandmarkBinner.for_addresses(topo, [0, 1, 2])
    assert binner.num_localities == 3
    localities = {binner.locality_of(a) for a in range(3, 50)}
    assert localities <= {0, 1, 2}
    # consistent partition: calling twice agrees
    assert [binner.locality_of(a) for a in range(50)] == [
        binner.locality_of(a) for a in range(50)
    ]


def test_for_addresses_validates_landmarks():
    topo = UniformRandomTopology(seed=9)
    topo.register(0)
    with pytest.raises(TopologyError):
        LandmarkBinner.for_addresses(topo, [])
    with pytest.raises(TopologyError):
        LandmarkBinner.for_addresses(topo, [99])
