"""Tests for per-kind message accounting (overhead analysis raw data)."""

from repro.net.topology import ExplicitTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.engine import Simulator


class Responder(NetworkNode):
    def handle_ping(self, message):
        return {"ok": True}

    def handle_note(self, message):
        return None


def make_pair():
    sim = Simulator(seed=1)
    network = Network(sim, ExplicitTopology([[0.0, 10.0], [10.0, 0.0]]))
    return sim, network, Responder(network), Responder(network)


def test_kind_counts_track_sends_and_rpcs():
    sim, network, a, b = make_pair()
    a.send(b.address, "note")
    a.send(b.address, "note")
    a.rpc(b.address, "ping", {}, on_reply=lambda p: None)
    sim.run()
    assert network.kind_counts["note"] == 2
    assert network.kind_counts["ping"] == 1


def test_dead_sender_not_counted():
    sim, network, a, b = make_pair()
    a.fail()
    a.send(b.address, "note")
    sim.run()
    assert "note" not in network.kind_counts


def test_replies_not_double_counted_by_kind():
    """The RPC reply increments messages_sent but not the request's kind
    (replies are not independent protocol messages)."""
    sim, network, a, b = make_pair()
    a.rpc(b.address, "ping", {}, on_reply=lambda p: None)
    sim.run()
    assert network.kind_counts["ping"] == 1
    assert network.messages_sent == 2  # request + reply


def test_counts_survive_many_kinds():
    sim, network, a, b = make_pair()
    for kind in ("ping", "note", "ping", "note", "ping"):
        a.send(b.address, kind)
    sim.run()
    assert network.kind_counts == {"ping": 3, "note": 2}
