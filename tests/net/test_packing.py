"""Pins for the 32-bit packed latency-cache key (shard-cap lift).

The transport memoizes link latencies under single-int keys
``(src << ADDR_SHIFT) | dst``.  ADDR_SHIFT used to be 20 bits, which
capped the sharded address space (16-bit blocks) at 16 shards; these
tests pin the widened 32-bit layout: no aliasing for addresses past the
old boundary, an explicit overflow guard at registration, and ShardMap
accepting shard counts the old packing rejected.
"""

import pytest

from repro.errors import ConfigError, TransportError
from repro.net.shardnet import BLOCK_BITS, MAX_SHARDS, ShardMap
from repro.net.topology import Topology
from repro.net.transport import (
    ADDR_SHIFT,
    MAX_PACKED_ADDRESS,
    Network,
    NetworkNode,
)
from repro.sim.engine import Simulator


def test_packing_constants():
    assert ADDR_SHIFT == 32
    assert MAX_PACKED_ADDRESS == 1 << 32
    # 16-bit shard blocks inside a 32-bit space -> 65536 shards, up from
    # the 16 the old 20-bit key allowed.
    assert MAX_SHARDS == 1 << (ADDR_SHIFT - BLOCK_BITS)
    assert MAX_SHARDS == 65536


class SpyTopology(Topology):
    """Accepts any address; latency encodes the (src, dst) pair."""

    def register(self, address, cluster_hint=None):
        return

    def latency(self, a, b):
        return float(a) * 1e9 + float(b)

    def knows(self, address):
        return True


def test_no_aliasing_past_the_old_20_bit_boundary():
    # Under the old 20-bit shift, (src=0, dst=2**20+5) and (src=1, dst=5)
    # packed to the SAME key (2**20 + 5): the second lookup would have
    # returned the first pair's cached latency.
    network = Network(Simulator(seed=1), SpyTopology())
    pair_a = (0, 2**20 + 5)
    pair_b = (1, 5)
    assert (pair_a[0] << 20) | pair_a[1] == (pair_b[0] << 20) | pair_b[1]
    latency_a = network._link_latency(*pair_a)
    latency_b = network._link_latency(*pair_b)
    assert latency_a != latency_b
    assert len(network._latency_cache) == 2
    # Cache hits return the right entry too.
    assert network._link_latency(*pair_b) == latency_b


class _Full(list):
    """A node list that claims the packed address space is exhausted."""

    def __len__(self):
        return MAX_PACKED_ADDRESS


def test_register_rejects_addresses_beyond_the_key_space():
    network = Network(Simulator(seed=1), SpyTopology())
    # register() assigns address = len(nodes) and must refuse before
    # appending; fake exhaustion instead of allocating 2**32 nodes.
    network._nodes = _Full()
    with pytest.raises(TransportError, match="packed"):
        NetworkNode(network)  # auto-registers in __init__
    assert list(network._nodes) == []  # nothing was appended


def test_shard_map_accepts_32_shards():
    # 32 > the old 16-shard cap; must now construct cleanly.
    smap = ShardMap(num_shards=32, num_localities=32, num_websites=3)
    for shard in (0, 17, 31):
        address = smap.peer_address(shard, shard, 5)
        assert smap.shard_of_address(address) == shard
        assert smap.locality_of_address(address) == shard
        assert address < MAX_PACKED_ADDRESS


def test_shard_map_cap_is_the_packed_space():
    with pytest.raises(ConfigError):
        ShardMap(
            num_shards=MAX_SHARDS + 1,
            num_localities=MAX_SHARDS + 1,
            num_websites=1,
        )
