"""Unit tests for the fair-share bandwidth model.

Rates are in kbps == bits per millisecond, so a 1 MB payload at
8000 kbps takes exactly 1000 ms — every timing assertion below is exact
arithmetic, no tolerance fudging needed beyond float epsilon.
"""

import pytest

from repro.errors import ConfigError
from repro.net.bandwidth import BandwidthModel, BandwidthParams
from repro.sim.engine import Simulator

MB = 1_000_000


def make_model(**kwargs):
    sim = Simulator(seed=1)
    params = BandwidthParams(**kwargs)
    return sim, BandwidthModel(sim, params)


class Recorder:
    """Collects (event, flow, time) callback firings."""

    def __init__(self, sim):
        self.sim = sim
        self.events = []

    def on_done(self, flow):
        self.events.append(("done", flow, self.sim.now))

    def on_abort(self, flow):
        self.events.append(("abort", flow, self.sim.now))


# ---------------------------------------------------------------- params


@pytest.mark.parametrize(
    "bad",
    [
        {"upload_kbps": 0.0},
        {"upload_kbps": -10.0},
        {"link_kbps": -1.0},
        {"slow_fraction": -0.1},
        {"slow_fraction": 1.5},
        {"slow_factor": 0.5},
    ],
)
def test_params_validation(bad):
    with pytest.raises(ConfigError):
        BandwidthParams(**bad)


def test_zero_size_flow_rejected():
    sim, model = make_model()
    with pytest.raises(ConfigError):
        model.start(1, 2, 0, on_done=lambda flow: None)


# ---------------------------------------------------------------- timing


def test_single_flow_timing():
    sim, model = make_model(upload_kbps=8000.0)
    rec = Recorder(sim)
    model.start(1, 2, MB, on_done=rec.on_done)
    sim.run()
    # 1 MB = 8e6 bits at 8000 bits/ms -> 1000 ms.
    assert [(kind, t) for kind, _, t in rec.events] == [("done", 1000.0)]
    assert model.flows_completed == 1
    assert model.bytes_completed == MB
    assert model.active_flows(1) == 0


def test_fair_share_two_concurrent_flows():
    sim, model = make_model(upload_kbps=8000.0)
    rec = Recorder(sim)
    model.start(1, 2, MB, on_done=rec.on_done)
    model.start(1, 3, MB, on_done=rec.on_done)
    assert model.active_flows(1) == 2
    sim.run()
    # Each flow gets 4000 kbps, so both finish at 2000 ms.
    assert sorted(t for _, _, t in rec.events) == [2000.0, 2000.0]
    assert model.peak_concurrent == 2


def test_settle_then_reschedule_mid_flow_join():
    sim, model = make_model(upload_kbps=8000.0)
    rec = Recorder(sim)
    model.start(1, 2, MB, on_done=rec.on_done)
    sim.schedule(500.0, model.start, 1, 3, MB, rec.on_done)
    sim.run()
    # A runs alone for 500 ms (4e6 bits done), then shares: remaining
    # 4e6 bits at 4000 kbps -> done at 1500 ms.  B then runs alone from
    # 1500 ms with 4e6 bits left of 8e6 -> done at 2000 ms.
    times = {flow.dst: t for _, flow, t in rec.events}
    assert times == {2: 1500.0, 3: 2000.0}


def test_link_cap_limits_a_lone_flow():
    sim, model = make_model(upload_kbps=8000.0, link_kbps=2000.0)
    rec = Recorder(sim)
    model.start(1, 2, MB, on_done=rec.on_done)
    sim.run()
    # The link cap binds: 8e6 bits at 2000 bits/ms -> 4000 ms.
    assert [t for _, _, t in rec.events] == [4000.0]


def test_flows_at_distinct_senders_do_not_share():
    sim, model = make_model(upload_kbps=8000.0)
    rec = Recorder(sim)
    model.start(1, 9, MB, on_done=rec.on_done)
    model.start(2, 9, MB, on_done=rec.on_done)
    sim.run()
    # Capacity is per-sender; neither flow slows the other down.
    assert [t for _, _, t in rec.events] == [1000.0, 1000.0]


# ---------------------------------------------------------------- abort


def test_abort_uploads_of_fires_on_abort_and_counts():
    sim, model = make_model(upload_kbps=8000.0)
    rec = Recorder(sim)
    model.start(1, 2, MB, on_done=rec.on_done, on_abort=rec.on_abort)
    model.start(1, 3, MB, on_done=rec.on_done, on_abort=rec.on_abort)
    model.start(4, 5, MB, on_done=rec.on_done, on_abort=rec.on_abort)

    def strike():
        assert model.abort_uploads_of(1) == 2

    sim.schedule(300.0, strike)
    sim.run()
    kinds = sorted((kind, flow.src) for kind, flow, _ in rec.events)
    # Both of peer 1's uploads abort at the strike; peer 4's completes.
    assert kinds == [("abort", 1), ("abort", 1), ("done", 4)]
    abort_times = [t for kind, _, t in rec.events if kind == "abort"]
    assert abort_times == [300.0, 300.0]
    assert model.flows_aborted == 2
    assert model.bytes_aborted == 2 * MB
    assert model.flows_completed == 1
    assert model.active_flows(1) == 0


def test_abort_uploads_of_idle_sender_is_zero():
    sim, model = make_model()
    assert model.abort_uploads_of(42) == 0


def test_cancel_is_silent_and_idempotent():
    sim, model = make_model(upload_kbps=8000.0)
    rec = Recorder(sim)
    flow = model.start(1, 2, MB, on_done=rec.on_done, on_abort=rec.on_abort)
    peer = model.start(1, 3, MB, on_done=rec.on_done, on_abort=rec.on_abort)

    def drop():
        model.cancel(flow)
        model.cancel(flow)  # second cancel is a no-op

    sim.schedule(500.0, drop)
    sim.run()
    # The cancelled flow fires neither callback; the survivor speeds
    # back up to full capacity: 500 ms shared (2e6 bits) then 6e6 bits
    # at 8000 kbps -> done at 1250 ms.
    assert [(kind, f.dst, t) for kind, f, t in rec.events] == [
        ("done", peer.dst, 1250.0)
    ]
    assert model.flows_aborted == 0


# ---------------------------------------------------------------- slow uplinks


def test_slow_fraction_one_degrades_everyone():
    sim, model = make_model(
        upload_kbps=8000.0, slow_fraction=1.0, slow_factor=8.0
    )
    rec = Recorder(sim)
    model.start(1, 2, MB, on_done=rec.on_done)
    sim.run()
    # 8e6 bits at 1000 bits/ms -> 8000 ms.
    assert [t for _, _, t in rec.events] == [8000.0]
    assert model.is_slow(1)
    assert model.slow_peers == 1


def test_slow_membership_is_deterministic_and_stable():
    _, a = make_model(slow_fraction=0.3, seed=7)
    _, b = make_model(slow_fraction=0.3, seed=7)
    verdicts_a = [a.is_slow(address) for address in range(200)]
    verdicts_b = [b.is_slow(address) for address in range(200)]
    assert verdicts_a == verdicts_b
    # Membership is per-address, not a shared stream: querying in a
    # different order must not change anyone's verdict.
    _, c = make_model(slow_fraction=0.3, seed=7)
    verdicts_c = [c.is_slow(address) for address in reversed(range(200))]
    assert verdicts_c == list(reversed(verdicts_a))
    # And the fraction is roughly honoured.
    assert 0.15 < sum(verdicts_a) / 200 < 0.45


def test_stats_shape():
    sim, model = make_model(upload_kbps=8000.0)
    model.start(1, 2, MB, on_done=lambda flow: None)
    sim.run()
    assert model.stats() == {
        "flows_started": 1,
        "flows_completed": 1,
        "flows_aborted": 0,
        "bytes_completed": MB,
        "bytes_aborted": 0,
        "peak_concurrent": 1,
        "slow_peers": 0,
    }
