"""Tests for the fault-injection subsystem (partitions, bursty loss,
latency spikes, mass failures, determinism)."""

import pytest

from repro.errors import TransportError
from repro.net.faults import (
    BurstyLossSpec,
    FaultController,
    LatencySpikeSpec,
    MassFailureSpec,
    PartitionSpec,
)
from repro.net.topology import ExplicitTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.engine import Simulator


class Recorder(NetworkNode):
    def __init__(self, network):
        super().__init__(network)
        self.received = []
        self.received_at = {}

    def handle_ping(self, message):
        seq = message.payload.get("seq")
        self.received.append(seq)
        self.received_at[seq] = self.sim.now
        return {"ok": True}


def make_world(num_nodes=2, latency=10.0, seed=1):
    sim = Simulator(seed=seed)
    matrix = [
        [0.0 if i == j else latency for j in range(num_nodes)]
        for i in range(num_nodes)
    ]
    network = Network(sim, ExplicitTopology(matrix), default_timeout_ms=100.0)
    nodes = [Recorder(network) for __ in range(num_nodes)]
    return sim, network, nodes


def send_at(sim, time, src, dst, seq):
    sim.schedule_at(time, lambda: src.send(dst.address, "ping", seq=seq))


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(TransportError):
        BurstyLossSpec(p_good_to_bad=1.5, p_bad_to_good=0.5)
    with pytest.raises(TransportError):
        BurstyLossSpec(p_good_to_bad=0.1, p_bad_to_good=0.0)
    with pytest.raises(TransportError):
        PartitionSpec(locality=0, start_ms=100.0, heal_ms=100.0)
    with pytest.raises(TransportError):
        LatencySpikeSpec(start_ms=0.0, end_ms=10.0, multiplier=0.5)
    with pytest.raises(TransportError):
        MassFailureSpec(at_ms=0.0, fraction=0.0)


def test_specs_are_hashable():
    """Specs ride inside frozen ExperimentConfig tuples used as dict keys."""
    schedule = (
        BurstyLossSpec(p_good_to_bad=0.05, p_bad_to_good=0.5),
        PartitionSpec(locality=1, start_ms=1.0, heal_ms=2.0),
        LatencySpikeSpec(start_ms=0.0, end_ms=1.0, multiplier=2.0),
        MassFailureSpec(at_ms=5.0),
    )
    assert len({schedule: "ok"}) == 1


def test_apply_rejects_unknown_spec():
    sim, network, __ = make_world()
    controller = FaultController(sim, network)
    with pytest.raises(TransportError):
        controller.apply(["not a spec"])


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------

def test_partition_cuts_both_directions_and_heals():
    sim, network, (a, b) = make_world()
    controller = FaultController(sim, network)
    controller.schedule_partition(
        start_ms=0.0, heal_ms=1000.0, group=frozenset({a.address})
    )

    a.send(b.address, "ping", seq="a->b cut")
    b.send(a.address, "ping", seq="b->a cut")
    sim.run(until=500.0)
    assert a.received == [] and b.received == []
    assert network.dropped_partition == 2
    assert controller.partition_active()

    # After the heal, the same links deliver again.
    send_at(sim, 1500.0, a, b, "a->b ok")
    send_at(sim, 1500.0, b, a, "b->a ok")
    sim.run(until=2000.0)
    assert b.received == ["a->b ok"]
    assert a.received == ["b->a ok"]
    assert network.dropped_partition == 2
    assert not controller.partition_active()
    assert sim.trace.count("fault.partition_start") == 1
    assert sim.trace.count("fault.partition_heal") == 1


def test_locality_partition_spares_intra_side_traffic():
    sim, network, (a, b, c) = make_world(num_nodes=3)
    side = {a.address: 0, b.address: 1, c.address: 1}
    controller = FaultController(sim, network, locality_of=side.get)
    controller.apply([PartitionSpec(locality=0, start_ms=0.0, heal_ms=10_000.0)])

    b.send(c.address, "ping", seq="same side")
    a.send(b.address, "ping", seq="cross")
    sim.run(until=100.0)
    assert c.received == ["same side"]
    assert b.received == []
    assert network.dropped_partition == 1
    assert controller.partition_active()


def test_partition_requires_exactly_one_side_selector():
    sim, network, (a, __) = make_world()
    controller = FaultController(sim, network, locality_of=lambda addr: 0)
    with pytest.raises(TransportError):
        controller.schedule_partition(0.0, 1.0)
    with pytest.raises(TransportError):
        controller.schedule_partition(
            0.0, 1.0, locality=0, group=frozenset({a.address})
        )


def test_partition_cuts_rpc_replies_in_flight():
    """A partition starting between request delivery and reply arrival cuts
    the reply: the handler ran but the caller times out."""
    sim, network, (a, b) = make_world(latency=10.0)
    controller = FaultController(sim, network)
    # Request arrives at t=10 (before the cut); reply would arrive at t=20.
    controller.schedule_partition(
        start_ms=15.0, heal_ms=1000.0, group=frozenset({a.address})
    )
    outcomes = []
    a.rpc(
        b.address,
        "ping",
        {"seq": 1},
        on_reply=lambda p: outcomes.append("reply"),
        on_timeout=lambda: outcomes.append("timeout"),
    )
    sim.run(until=500.0)
    assert b.received == [1]
    assert outcomes == ["timeout"]
    assert network.dropped_partition == 1


# ---------------------------------------------------------------------------
# Gilbert-Elliott bursty loss
# ---------------------------------------------------------------------------

def test_gilbert_elliott_stationary_loss_rate():
    spec = BurstyLossSpec(p_good_to_bad=0.05, p_bad_to_good=0.5)
    assert spec.stationary_loss_rate == pytest.approx(0.05 / 0.55, abs=1e-9)

    sim, network, (a, b) = make_world(seed=7)
    controller = FaultController(sim, network)
    controller.set_bursty_loss(spec)
    total = 4000
    for seq in range(total):
        send_at(sim, float(seq), a, b, seq)
    sim.run()
    observed = 1.0 - len(b.received) / total
    assert observed == pytest.approx(spec.stationary_loss_rate, abs=0.03)
    assert network.dropped_loss == total - len(b.received)
    assert controller.stats["burst_drops"] == network.dropped_loss


def test_gilbert_elliott_losses_are_bursty():
    """Drops cluster: the mean run of consecutive drops approaches
    1 / p_bad_to_good, well above the ~1.1 of i.i.d. loss at the same rate."""
    spec = BurstyLossSpec(p_good_to_bad=0.05, p_bad_to_good=0.4)
    sim, network, (a, b) = make_world(seed=11)
    FaultController(sim, network).set_bursty_loss(spec)
    # One shared link, strictly ordered sends -> the delivery sequence is
    # the chain's trajectory.
    total = 6000
    for seq in range(total):
        send_at(sim, float(seq), a, b, seq)
    sim.run()
    delivered = set(b.received)
    runs = []
    run = 0
    for seq in range(total):
        if seq in delivered:
            if run:
                runs.append(run)
            run = 0
        else:
            run += 1
    if run:
        runs.append(run)
    assert runs, "expected at least one drop burst"
    mean_burst = sum(runs) / len(runs)
    # 1/p_bad_to_good = 2.5 deliveries; i.i.d. loss at the same stationary
    # rate (~0.11) would give ~1.12.
    assert mean_burst > 1.6
    assert mean_burst == pytest.approx(1.0 / spec.p_bad_to_good, rel=0.35)


def test_bursty_loss_respects_window():
    spec = BurstyLossSpec(
        p_good_to_bad=0.0,
        p_bad_to_good=0.0,
        loss_good=1.0,
        loss_bad=1.0,
        start_ms=100.0,
        end_ms=200.0,
    )
    sim, network, (a, b) = make_world()
    FaultController(sim, network).set_bursty_loss(spec)
    send_at(sim, 10.0, a, b, "before")
    send_at(sim, 140.0, a, b, "inside")
    send_at(sim, 300.0, a, b, "after")
    sim.run()
    assert b.received == ["before", "after"]


# ---------------------------------------------------------------------------
# Latency spikes
# ---------------------------------------------------------------------------

def test_latency_spike_window_delays_delivery():
    sim, network, (a, b) = make_world(latency=10.0)
    FaultController(sim, network).schedule_latency_spike(
        LatencySpikeSpec(start_ms=100.0, end_ms=200.0, multiplier=3.0, additive_ms=5.0)
    )
    send_at(sim, 0.0, a, b, "normal")
    send_at(sim, 150.0, a, b, "spiked")
    sim.run()
    assert b.received_at["normal"] == pytest.approx(10.0)
    assert b.received_at["spiked"] == pytest.approx(150.0 + 10.0 * 3.0 + 5.0)
    assert network.messages_dropped == 0


def test_latency_spike_adjusts_link_latency():
    sim, network, (a, b) = make_world(latency=10.0)
    controller = FaultController(sim, network)
    controller.schedule_latency_spike(
        LatencySpikeSpec(start_ms=0.0, end_ms=100.0, multiplier=3.0, additive_ms=5.0)
    )
    assert network._link_latency(a.address, b.address) == pytest.approx(35.0)
    sim.run(until=150.0)  # run() advances the clock past the window
    assert network._link_latency(a.address, b.address) == pytest.approx(10.0)
    assert controller.latency_adjust(a.address, b.address, 10.0) == pytest.approx(10.0)


# ---------------------------------------------------------------------------
# Mass-failure campaigns
# ---------------------------------------------------------------------------

def test_mass_failure_crashes_requested_fraction():
    sim, network, nodes = make_world(num_nodes=10, seed=3)
    controller = FaultController(sim, network)
    controller.schedule_mass_failure(at_ms=100.0, fraction=0.5)
    sim.run(until=200.0)
    dead = [n for n in nodes if not n.alive]
    assert len(dead) == 5
    assert controller.stats["mass_failures"] == 5
    assert sim.trace.count("fault.mass_failure") == 1


def test_mass_failure_locality_scoped():
    sim, network, nodes = make_world(num_nodes=8, seed=3)
    locality = {n.address: n.address % 2 for n in nodes}
    controller = FaultController(sim, network, locality_of=locality.get)
    controller.apply([MassFailureSpec(at_ms=50.0, fraction=1.0, locality=0)])
    sim.run(until=100.0)
    for node in nodes:
        assert node.alive == (locality[node.address] == 1)


def test_mass_failure_directories_only():
    sim, network, nodes = make_world(num_nodes=6, seed=3)
    for node in nodes[:2]:
        node.is_directory = True
    controller = FaultController(sim, network)
    controller.schedule_mass_failure(at_ms=10.0, fraction=1.0, directories_only=True)
    sim.run(until=50.0)
    assert all(not n.alive for n in nodes[:2])
    assert all(n.alive for n in nodes[2:])


def test_mass_failure_uses_crash_hook_when_available():
    sim, network, nodes = make_world(num_nodes=4, seed=3)
    crashed = []
    nodes[0].crash = lambda: (crashed.append(True), nodes[0].fail())
    controller = FaultController(sim, network)
    controller.schedule_mass_failure(at_ms=10.0, fraction=1.0)
    sim.run(until=50.0)
    assert crashed == [True]
    assert all(not n.alive for n in nodes)


def test_past_due_fault_reschedules_loudly():
    """A fault scheduled in the past fires now -- but says so: a trace
    event plus a stats counter, instead of the old silent ``max()``."""
    sim, network, nodes = make_world(num_nodes=4, seed=5)
    warnings = []
    sim.trace.subscribe(
        "fault.past_due_reschedule", lambda e: warnings.append(e.payload)
    )
    controller = FaultController(sim, network)
    sim.run(until=100.0)
    controller.schedule_mass_failure(at_ms=40.0, fraction=1.0)  # 60 ms late
    controller.schedule_partition(
        start_ms=10.0, heal_ms=200.0, group=frozenset({nodes[0].address})
    )
    sim.run(until=300.0)
    assert controller.stats["past_due_reschedules"] == 2
    whats = sorted(w["what"] for w in warnings)
    assert whats == ["mass_failure", "partition_start"]
    assert all(w["requested_ms"] < w["now_ms"] for w in warnings)
    assert all(not n.alive for n in nodes)  # the failure still fired


def test_on_time_fault_does_not_warn():
    sim, network, _nodes = make_world(num_nodes=2, seed=6)
    controller = FaultController(sim, network)
    controller.schedule_mass_failure(at_ms=50.0, fraction=1.0)
    sim.run(until=100.0)
    assert "past_due_reschedules" not in controller.stats


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def _fault_trajectory(seed):
    sim, network, nodes = make_world(num_nodes=6, seed=seed)
    a, b = nodes[0], nodes[1]
    controller = FaultController(sim, network)
    controller.apply(
        (
            BurstyLossSpec(p_good_to_bad=0.08, p_bad_to_good=0.4),
            MassFailureSpec(at_ms=2500.0, fraction=0.5),
        )
    )
    for seq in range(3000):
        send_at(sim, float(seq), a, b, seq)
    sim.run()
    return (
        tuple(b.received),
        dict(network.drop_counts),
        dict(controller.stats),
        tuple(n.alive for n in nodes),
    )


def test_identical_seeds_identical_fault_trajectories():
    assert _fault_trajectory(42) == _fault_trajectory(42)
    assert _fault_trajectory(42) != _fault_trajectory(43)


def test_controller_defaults_to_dedicated_rng_stream():
    sim, network, __ = make_world()
    controller = FaultController(sim, network)
    assert controller.rng is sim.rng("faults")
    assert controller.rng is not sim.rng("churn")
