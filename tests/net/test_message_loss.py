"""Tests for the message-loss fault model."""

import pytest

from repro.errors import TransportError
from repro.net.topology import ExplicitTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.engine import Simulator


class Responder(NetworkNode):
    def __init__(self, network):
        super().__init__(network)
        self.received = 0

    def handle_ping(self, message):
        self.received += 1
        return {"ok": True}


def make_pair(loss=0.0, seed=1):
    sim = Simulator(seed=seed)
    network = Network(
        sim, ExplicitTopology([[0.0, 10.0], [10.0, 0.0]]), default_timeout_ms=100.0
    )
    if loss:
        network.configure_loss(loss, sim.rng("loss"))
    return sim, network, Responder(network), Responder(network)


def test_loss_rate_validated():
    sim, network, __, __ = make_pair()
    with pytest.raises(TransportError):
        network.configure_loss(1.5, sim.rng("loss"))
    with pytest.raises(TransportError):
        network.configure_loss(-0.1, sim.rng("loss"))


def test_total_loss_drops_everything():
    sim, network, a, b = make_pair(loss=0.999999999)
    outcomes = []
    for __ in range(20):
        a.rpc(b.address, "ping", {}, on_reply=lambda p: outcomes.append("reply"),
              on_timeout=lambda: outcomes.append("timeout"))
    sim.run()
    assert outcomes == ["timeout"] * 20
    assert b.received == 0
    assert network.messages_dropped == 20


def test_zero_loss_drops_nothing():
    sim, network, a, b = make_pair(loss=0.0)
    for __ in range(20):
        a.send(b.address, "ping")
    sim.run()
    assert b.received == 20
    assert network.messages_dropped == 0


def test_partial_loss_statistics():
    sim, network, a, b = make_pair(loss=0.5, seed=9)
    for __ in range(400):
        a.send(b.address, "ping")
    sim.run()
    assert 140 < b.received < 260  # ~200 expected


def test_replies_can_be_lost_too():
    """With loss only striking after the request got through, the handler
    runs but the caller still times out."""
    sim, network, a, b = make_pair(loss=0.35, seed=4)
    outcomes = []
    for __ in range(200):
        a.rpc(b.address, "ping", {}, on_reply=lambda p: outcomes.append("reply"),
              on_timeout=lambda: outcomes.append("timeout"))
    sim.run()
    assert outcomes.count("timeout") > 50
    # some handlers ran even though the caller saw a timeout
    assert b.received > outcomes.count("reply")


def test_flower_functions_under_lossy_network():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig.scaled(
        population=80,
        duration_hours=2.0,
        num_websites=4,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=25,
        message_loss_rate=0.05,
    )
    result = run_experiment("flower", config, seed=19)
    assert result.queries > 50
    assert result.hit_ratio > 0.0  # degraded, but alive


def test_loss_rate_config_validated():
    from repro.errors import ConfigError
    from repro.experiments.config import ExperimentConfig

    with pytest.raises(ConfigError):
        ExperimentConfig.scaled(message_loss_rate=1.0)


# ---------------------------------------------------------------------------
# retrying_rpc edge cases under injected faults
# ---------------------------------------------------------------------------

class ScriptedRng:
    """Plays back a fixed sequence of uniform draws, then never drops."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0) if self.values else 1.0


def test_retry_survives_lost_request():
    """First request dropped mid-flight; the retry gets through."""
    sim, network, a, b = make_pair()
    network.configure_loss(0.5, ScriptedRng([0.1]))  # drop only attempt 1
    outcomes = []
    a.retrying_rpc(
        b.address,
        "ping",
        {},
        on_reply=lambda p: outcomes.append("reply"),
        on_give_up=lambda: outcomes.append("give_up"),
        retries=2,
        backoff_ms=20.0,
    )
    sim.run()
    assert outcomes == ["reply"]
    assert b.received == 1  # attempt 1 never reached the handler
    assert network.dropped_loss == 1
    assert sim.trace.count("net.rpc_retry") == 1


def test_retry_survives_lost_reply():
    """Reply (not request) lost mid-flight: the handler runs twice but the
    caller still ends with exactly one reply."""
    sim, network, a, b = make_pair()
    # Draw 1: request 1 delivered.  Draw 2: reply 1 dropped.  Then clean.
    network.configure_loss(0.5, ScriptedRng([0.9, 0.1]))
    outcomes = []
    a.retrying_rpc(
        b.address,
        "ping",
        {},
        on_reply=lambda p: outcomes.append("reply"),
        on_give_up=lambda: outcomes.append("give_up"),
        retries=2,
        backoff_ms=20.0,
    )
    sim.run()
    assert outcomes == ["reply"]
    assert b.received == 2  # both requests reached the handler
    assert network.dropped_loss == 1


def test_retry_budget_exhaustion_fires_give_up_once():
    """Destination crashed while requests were in flight: every attempt
    hits a dead destination, and only after the whole budget is spent does
    on_give_up fire (the moment protocol code falls back to the origin)."""
    sim, network, a, b = make_pair()
    b.fail()
    outcomes = []
    a.retrying_rpc(
        b.address,
        "ping",
        {},
        on_reply=lambda p: outcomes.append("reply"),
        on_give_up=lambda: outcomes.append("give_up"),
        retries=2,
        backoff_ms=20.0,
    )
    sim.run()
    assert outcomes == ["give_up"]
    assert b.received == 0
    assert network.dropped_dead_dst == 3  # 1 try + 2 retries
    assert sim.trace.count("net.rpc_retry") == 2


def test_destination_crash_between_request_and_reply():
    """The destination dies after handling the request but before the reply
    lands: the reply was already in flight, so it still arrives (the
    handler's last words), exactly like a real socket."""
    class DyingResponder(Responder):
        def handle_ping(self, message):
            reply = super().handle_ping(message)
            self.fail()  # crash immediately after replying
            return reply

    sim = Simulator(seed=2)
    network = Network(
        sim, ExplicitTopology([[0.0, 10.0], [10.0, 0.0]]), default_timeout_ms=100.0
    )
    caller = Responder(network)
    dying = DyingResponder(network)
    outcomes = []
    caller.retrying_rpc(
        dying.address,
        "ping",
        {},
        on_reply=lambda p: outcomes.append("reply"),
        on_give_up=lambda: outcomes.append("give_up"),
        retries=1,
    )
    sim.run()
    assert outcomes == ["reply"]
    assert dying.received == 1
    assert not dying.alive


def test_zero_retries_matches_single_shot_semantics():
    """retries=0 restores the seed's behaviour: one lost message condemns
    the call."""
    sim, network, a, b = make_pair()
    network.configure_loss(0.5, ScriptedRng([0.1]))
    outcomes = []
    a.retrying_rpc(
        b.address,
        "ping",
        {},
        on_reply=lambda p: outcomes.append("reply"),
        on_give_up=lambda: outcomes.append("give_up"),
        retries=0,
    )
    sim.run()
    assert outcomes == ["give_up"]
    with pytest.raises(TransportError):
        a.retrying_rpc(b.address, "ping", {}, retries=-1)


def test_flower_retries_beat_single_shot_under_loss():
    """With retries enabled Flower's hit ratio under uniform loss is no
    worse than the single-shot (rpc_retries=0, probe_retries=0) behaviour
    at the same loss rate."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    base = ExperimentConfig.scaled(
        population=80,
        duration_hours=2.0,
        num_websites=4,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=25,
        message_loss_rate=0.10,
    )
    with_retries = run_experiment("flower", base, seed=19)
    single_shot = run_experiment("flower", base.replace(rpc_retries=0), seed=19)
    assert with_retries.hit_ratio >= single_shot.hit_ratio
