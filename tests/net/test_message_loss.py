"""Tests for the message-loss fault model."""

import pytest

from repro.errors import TransportError
from repro.net.topology import ExplicitTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.engine import Simulator


class Responder(NetworkNode):
    def __init__(self, network):
        super().__init__(network)
        self.received = 0

    def handle_ping(self, message):
        self.received += 1
        return {"ok": True}


def make_pair(loss=0.0, seed=1):
    sim = Simulator(seed=seed)
    network = Network(
        sim, ExplicitTopology([[0.0, 10.0], [10.0, 0.0]]), default_timeout_ms=100.0
    )
    if loss:
        network.configure_loss(loss, sim.rng("loss"))
    return sim, network, Responder(network), Responder(network)


def test_loss_rate_validated():
    sim, network, __, __ = make_pair()
    with pytest.raises(TransportError):
        network.configure_loss(1.5, sim.rng("loss"))
    with pytest.raises(TransportError):
        network.configure_loss(-0.1, sim.rng("loss"))


def test_total_loss_drops_everything():
    sim, network, a, b = make_pair(loss=0.999999999)
    outcomes = []
    for __ in range(20):
        a.rpc(b.address, "ping", {}, on_reply=lambda p: outcomes.append("reply"),
              on_timeout=lambda: outcomes.append("timeout"))
    sim.run()
    assert outcomes == ["timeout"] * 20
    assert b.received == 0
    assert network.messages_dropped == 20


def test_zero_loss_drops_nothing():
    sim, network, a, b = make_pair(loss=0.0)
    for __ in range(20):
        a.send(b.address, "ping")
    sim.run()
    assert b.received == 20
    assert network.messages_dropped == 0


def test_partial_loss_statistics():
    sim, network, a, b = make_pair(loss=0.5, seed=9)
    for __ in range(400):
        a.send(b.address, "ping")
    sim.run()
    assert 140 < b.received < 260  # ~200 expected


def test_replies_can_be_lost_too():
    """With loss only striking after the request got through, the handler
    runs but the caller still times out."""
    sim, network, a, b = make_pair(loss=0.35, seed=4)
    outcomes = []
    for __ in range(200):
        a.rpc(b.address, "ping", {}, on_reply=lambda p: outcomes.append("reply"),
              on_timeout=lambda: outcomes.append("timeout"))
    sim.run()
    assert outcomes.count("timeout") > 50
    # some handlers ran even though the caller saw a timeout
    assert b.received > outcomes.count("reply")


def test_flower_functions_under_lossy_network():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig.scaled(
        population=80,
        duration_hours=2.0,
        num_websites=4,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=25,
        message_loss_rate=0.05,
    )
    result = run_experiment("flower", config, seed=19)
    assert result.queries > 50
    assert result.hit_ratio > 0.0  # degraded, but alive


def test_loss_rate_config_validated():
    from repro.errors import ConfigError
    from repro.experiments.config import ExperimentConfig

    with pytest.raises(ConfigError):
        ExperimentConfig.scaled(message_loss_rate=1.0)
