"""Unit tests for comparison reports and shape checks."""

import pytest

from repro.analysis.compare import ComparisonReport, shape_checks
from repro.experiments.results import ExperimentResult


def fake_result(protocol, hit, lookup, transfer, curve, lookup_cdf, transfer_cdf,
                population=240):
    return ExperimentResult(
        protocol=protocol,
        seed=1,
        population=population,
        duration_hours=12.0,
        queries=1000,
        hit_ratio=hit,
        mean_lookup_latency_ms=lookup,
        mean_transfer_ms=transfer,
        outcome_counts={},
        hit_ratio_curve=curve,
        lookup_cdf=lookup_cdf,
        transfer_cdf=transfer_cdf,
    )


def paperlike_pair():
    flower = fake_result(
        "flower", 0.68, 152.0, 92.0,
        curve=[(1, 0.1), (6, 0.4), (12, 0.55), (24, 0.68)],
        lookup_cdf=[(100.0, 0.5), (150.0, 0.66), (2000.0, 1.0)],
        transfer_cdf=[(50.0, 0.4), (100.0, 0.62), (400.0, 1.0)],
    )
    squirrel = fake_result(
        "squirrel", 0.41, 1544.0, 166.0,
        curve=[(1, 0.2), (6, 0.38), (12, 0.40), (24, 0.41)],
        lookup_cdf=[(150.0, 0.05), (1200.0, 0.25), (4000.0, 1.0)],
        transfer_cdf=[(100.0, 0.22), (400.0, 1.0)],
    )
    return flower, squirrel


def test_all_paper_claims_pass_on_paper_numbers():
    flower, squirrel = paperlike_pair()
    checks = shape_checks(flower, squirrel)
    assert len(checks) == 7
    assert all(check.passed for check in checks), [
        (c.name, c.detail) for c in checks if not c.passed
    ]


def test_failed_claim_detected():
    flower, squirrel = paperlike_pair()
    weak_flower = fake_result(
        "flower", 0.30, 152.0, 92.0,  # loses on hit ratio
        curve=flower.hit_ratio_curve,
        lookup_cdf=flower.lookup_cdf,
        transfer_cdf=flower.transfer_cdf,
    )
    report = ComparisonReport(weak_flower, squirrel)
    assert not report.all_passed
    assert any(c.name == "fig3_flower_wins_finally" for c in report.failed())


def test_report_renders_tables():
    flower, squirrel = paperlike_pair()
    report = ComparisonReport(flower, squirrel)
    text = report.render()
    assert "hit ratio" in text
    assert "paper shape checks" in text
    assert "PASS" in text
    assert "10.2x" in text or "10.1x" in text  # 1544/152 lookup factor


def test_population_mismatch_rejected():
    flower, squirrel = paperlike_pair()
    other = fake_result(
        "squirrel", 0.41, 1544.0, 166.0,
        curve=squirrel.hit_ratio_curve,
        lookup_cdf=squirrel.lookup_cdf,
        transfer_cdf=squirrel.transfer_cdf,
        population=999,
    )
    with pytest.raises(ValueError):
        ComparisonReport(flower, other)


def test_check_details_contain_measurements():
    flower, squirrel = paperlike_pair()
    for check in shape_checks(flower, squirrel):
        assert check.detail
        assert check.claim
