"""Unit tests for result exporters."""

import csv
import io

import pytest

from repro.analysis.export import (
    RESULT_COLUMNS,
    curve_to_csv,
    markdown_table,
    results_to_csv,
    results_to_markdown,
)
from repro.errors import ReproError
from repro.experiments.results import ExperimentResult


def fake_result(protocol="flower", population=240):
    return ExperimentResult(
        protocol=protocol,
        seed=1,
        population=population,
        duration_hours=12.0,
        queries=1000,
        hit_ratio=0.625,
        mean_lookup_latency_ms=450.0,
        mean_transfer_ms=90.0,
        outcome_counts={"hit_directory": 625, "miss_server": 375},
        hit_ratio_curve=[(1.0, 0.2), (2.0, 0.4)],
        lookup_cdf=[(100.0, 1.0)],
        transfer_cdf=[(100.0, 1.0)],
        arrivals=500,
        departures=480,
        messages_sent=10_000,
        events_executed=50_000,
    )


def test_results_to_csv_roundtrip():
    text = results_to_csv([fake_result(), fake_result("squirrel")])
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == list(RESULT_COLUMNS)
    assert len(rows) == 3
    assert rows[1][0] == "flower"
    assert rows[2][0] == "squirrel"
    assert float(rows[1][rows[0].index("hit_ratio")]) == 0.625


def test_results_to_csv_empty_rejected():
    with pytest.raises(ReproError):
        results_to_csv([])


def test_curve_to_csv():
    text = curve_to_csv(fake_result())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["hour", "cumulative_hit_ratio"]
    assert rows[1] == ["1.0", "0.2"]
    assert len(rows) == 3


def test_curve_to_csv_requires_curve():
    result = fake_result()
    object.__setattr__  # (dataclass is not frozen; direct assign works)
    result.hit_ratio_curve = []
    with pytest.raises(ReproError):
        curve_to_csv(result)


def test_markdown_table_shape():
    text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2 |"
    assert len(lines) == 4


def test_markdown_table_validation():
    with pytest.raises(ReproError):
        markdown_table([], [])
    with pytest.raises(ReproError):
        markdown_table(["a"], [[1, 2]])


def test_results_to_markdown():
    text = results_to_markdown([fake_result()])
    assert "| flower | 240 | 0.625 | 450 ms | 90 ms | 1000 |" in text
