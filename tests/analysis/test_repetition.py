"""Unit tests for multi-seed aggregation."""

import math

import pytest

from repro.analysis.repetition import (
    aggregate,
    aggregate_metric,
    repeat_experiment,
    t_quantile_95,
)
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig


def test_t_quantiles():
    assert t_quantile_95(1) == pytest.approx(12.706)
    assert t_quantile_95(10) == pytest.approx(2.228)
    assert t_quantile_95(100) == pytest.approx(1.960)
    with pytest.raises(ReproError):
        t_quantile_95(0)


def test_aggregate_empty_rejected():
    with pytest.raises(ReproError):
        aggregate("x", [])


def test_aggregate_single_sample():
    result = aggregate("hit", [0.5])
    assert result.mean == 0.5
    assert result.std == 0.0
    assert result.ci95 == 0.0
    assert result.n == 1


def test_aggregate_known_values():
    result = aggregate("x", [2.0, 4.0, 6.0])
    assert result.mean == 4.0
    assert result.std == pytest.approx(2.0)
    expected_ci = 4.303 * 2.0 / math.sqrt(3)
    assert result.ci95 == pytest.approx(expected_ci)
    assert result.low == pytest.approx(4.0 - expected_ci)
    assert result.high == pytest.approx(4.0 + expected_ci)


def test_aggregate_str():
    text = str(aggregate("hit_ratio", [0.4, 0.6]))
    assert "hit_ratio" in text and "n=2" in text


def test_repeat_experiment_and_metric_aggregation():
    config = ExperimentConfig.scaled(
        population=60,
        duration_hours=1.0,
        num_websites=4,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=20,
    )
    results = repeat_experiment("flower", config, seeds=[1, 2, 3])
    assert len(results) == 3
    assert len({r.seed for r in results}) == 3
    agg = aggregate_metric(results, "hit_ratio")
    assert 0.0 <= agg.mean <= 1.0
    assert agg.n == 3
    custom = aggregate_metric(
        results, "queries", extract=lambda r: float(r.queries)
    )
    assert custom.mean > 0


def test_repeat_requires_seeds():
    config = ExperimentConfig.scaled(population=60, num_websites=4,
                                     num_localities=2, num_active_websites=2)
    with pytest.raises(ReproError):
        repeat_experiment("flower", config, seeds=[])
