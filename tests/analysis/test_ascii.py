"""Unit tests for terminal charts."""

import pytest

from repro.analysis.ascii import bar_chart, line_chart
from repro.errors import ReproError


class TestLineChart:
    def test_requires_data(self):
        with pytest.raises(ReproError):
            line_chart({})
        with pytest.raises(ReproError):
            line_chart({"a": []})

    def test_requires_reasonable_size(self):
        with pytest.raises(ReproError):
            line_chart({"a": [(0, 0)]}, width=2)
        with pytest.raises(ReproError):
            line_chart({"a": [(0, 0)]}, height=2)

    def test_renders_title_axis_and_legend(self):
        chart = line_chart(
            {"flower": [(0, 0.1), (12, 0.7)], "squirrel": [(0, 0.3), (12, 0.5)]},
            title="Figure 3",
            x_label="hours",
        )
        assert "Figure 3" in chart
        assert "hours" in chart
        assert "* flower" in chart
        assert "o squirrel" in chart
        assert "0.700" in chart  # y max label

    def test_extremes_are_plotted(self):
        chart = line_chart({"s": [(0, 0.0), (10, 1.0)]}, width=20, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        body = [row.split("|", 1)[1] for row in rows]
        assert "*" in body[0]      # maximum in the top row
        assert "*" in body[-1]     # minimum in the bottom row

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"s": [(0, 0.5), (5, 0.5)]})
        assert "*" in chart

    def test_many_series_cycle_glyphs(self):
        series = {f"s{i}": [(0, i), (1, i + 1)] for i in range(8)}
        chart = line_chart(series)
        assert "* s0" in chart and "* s6" in chart  # glyphs wrap around


class TestBarChart:
    def test_requires_data(self):
        with pytest.raises(ReproError):
            bar_chart({})

    def test_bars_scale_to_peak(self):
        chart = bar_chart({"big": 1.0, "half": 0.5}, width=10)
        lines = chart.splitlines()
        big = next(line for line in lines if "big" in line)
        half = next(line for line in lines if "half" in line)
        assert big.count("#") == 10
        assert half.count("#") == 5

    def test_percent_formatting(self):
        chart = bar_chart({"a": 0.623})
        assert "62.3%" in chart

    def test_raw_formatting(self):
        chart = bar_chart({"a": 42.0}, as_percent=False)
        assert "42" in chart

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.0%" in chart
