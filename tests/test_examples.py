"""Smoke tests: every example script must run to completion.

Each example's ``main()`` is imported and executed in-process (no
subprocess: same interpreter, same installed package).  The slowest
example (churn_resilience, ~6 experiments) is exercised with a marker so
it can be deselected; the rest run in seconds.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main(*args)
    finally:
        sys.modules.pop(spec.name, None)


def test_quickstart_runs(capsys):
    run_example("quickstart")
    out = capsys.readouterr().out
    assert "hit ratio" in out
    assert "hit ratio over time" in out


def test_petalup_scaling_runs(capsys):
    run_example("petalup_scaling")
    out = capsys.readouterr().out
    assert "directory instances" in out


def test_keyword_search_runs(capsys):
    run_example("keyword_search")
    out = capsys.readouterr().out
    assert "petal search results" in out
    assert "matches" in out


def test_flash_crowd_runs(capsys):
    run_example("flash_crowd")
    out = capsys.readouterr().out
    assert "origin-server relief" in out


def test_flash_crowd_surge_runs(capsys):
    run_example("flash_crowd_surge")
    out = capsys.readouterr().out
    assert "surge and its absorption" in out
    assert "surge arrivals" in out


@pytest.mark.slow
def test_churn_resilience_runs(capsys):
    # Empty argv: don't let the example's --seed parser see pytest's argv.
    run_example("churn_resilience", [])
    out = capsys.readouterr().out
    assert "shorter uptimes hurt Squirrel" in out


@pytest.mark.slow
def test_partition_recovery_runs(capsys):
    run_example("partition_recovery", ["--seed", "5"])
    out = capsys.readouterr().out
    assert "partition of locality 0" in out
    assert "availability" in out
    assert "(seed 5)" in out


def test_examples_are_deterministic_with_faults():
    """Identical seeds produce identical reports, fault injection included
    (the examples' --seed contract).  Scaled down so it stays fast."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_recovery_experiment
    from repro.net.faults import PartitionSpec
    from repro.sim.clock import minutes

    config = ExperimentConfig.scaled(
        population=60,
        duration_hours=1.5,
        num_websites=4,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=20,
        fault_schedule=(
            PartitionSpec(locality=0, start_ms=minutes(30), heal_ms=minutes(60)),
        ),
    )

    def snapshot(seed):
        result, recovery = run_recovery_experiment(
            "flower",
            config,
            fault_start_ms=minutes(30),
            fault_end_ms=minutes(60),
            seed=seed,
            window_ms=minutes(15),
        )
        return result.to_dict(), recovery.render()

    assert snapshot(11) == snapshot(11)
    assert snapshot(11) != snapshot(12)
