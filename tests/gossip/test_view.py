"""Unit and property tests for the partial view."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.view import Contact, PartialView


def test_empty_view():
    view = PartialView(owner=0)
    assert len(view) == 0
    assert view.oldest() is None
    assert view.random_address(random.Random(1)) is None
    assert view.addresses() == []


def test_add_and_contains():
    view = PartialView(owner=0)
    assert view.add(Contact(1, age=2))
    assert 1 in view
    assert view.get(1).age == 2


def test_never_stores_owner():
    view = PartialView(owner=0)
    assert not view.add(Contact(0))
    assert 0 not in view


def test_younger_age_wins():
    view = PartialView(owner=0)
    view.add(Contact(1, age=5))
    assert view.add(Contact(1, age=2))      # fresher: updates
    assert view.get(1).age == 2
    assert not view.add(Contact(1, age=9))  # staler: ignored
    assert view.get(1).age == 2


def test_merge_counts_changes():
    view = PartialView(owner=0)
    view.add(Contact(1, age=5))
    changed = view.merge([Contact(1, age=1), Contact(2), Contact(0)])
    assert changed == 2  # refreshed 1, added 2, skipped owner


def test_remove():
    view = PartialView(owner=0)
    view.add(Contact(1))
    assert view.remove(1)
    assert not view.remove(1)
    assert 1 not in view


def test_increase_ages_and_refresh():
    view = PartialView(owner=0)
    view.add(Contact(1, age=0))
    view.add(Contact(2, age=3))
    view.increase_ages()
    assert view.get(1).age == 1
    assert view.get(2).age == 4
    view.refresh(2)
    assert view.get(2).age == 0
    view.refresh(99)  # unknown: no-op


def test_oldest():
    view = PartialView(owner=0)
    view.add(Contact(1, age=1))
    view.add(Contact(2, age=7))
    view.add(Contact(3, age=4))
    assert view.oldest().address == 2


def test_sample_excludes_and_bounds():
    view = PartialView(owner=0)
    for address in range(1, 11):
        view.add(Contact(address))
    rng = random.Random(3)
    sample = view.sample(rng, 4, exclude={1, 2})
    assert len(sample) == 4
    assert all(c.address not in (0, 1, 2) for c in sample)
    # asking for more than available returns everything eligible
    assert len(view.sample(rng, 50, exclude={1})) == 9


def test_capacity_displaces_only_older():
    view = PartialView(owner=0, capacity=2)
    view.add(Contact(1, age=5))
    view.add(Contact(2, age=1))
    assert view.full
    # newcomer fresher than the oldest entry displaces it
    assert view.add(Contact(3, age=0))
    assert 1 not in view and 3 in view
    # newcomer staler than everything is refused
    assert not view.add(Contact(4, age=9))
    assert 4 not in view
    assert len(view) == 2


def test_aged_contact_copy():
    contact = Contact(5, age=1)
    older = contact.aged(2)
    assert older.age == 3 and older.address == 5
    assert contact.age == 1  # original untouched


def test_clear():
    view = PartialView(owner=0)
    view.add(Contact(1))
    view.clear()
    assert len(view) == 0


@given(
    entries=st.lists(
        st.tuples(st.integers(1, 30), st.integers(0, 10)), max_size=60
    )
)
@settings(max_examples=100, deadline=None)
def test_property_view_keeps_min_age_per_address(entries):
    """After arbitrary merges, each address holds its minimum observed age."""
    view = PartialView(owner=0)
    best = {}
    for address, age in entries:
        view.add(Contact(address, age))
        best[address] = min(best.get(address, age), age)
    assert len(view) == len(best)
    for address, age in best.items():
        assert view.get(address).age == age


@given(
    capacity=st.integers(1, 8),
    entries=st.lists(st.tuples(st.integers(1, 40), st.integers(0, 10)), max_size=80),
)
@settings(max_examples=100, deadline=None)
def test_property_capacity_never_exceeded(capacity, entries):
    view = PartialView(owner=0, capacity=capacity)
    for address, age in entries:
        view.add(Contact(address, age))
    assert len(view) <= capacity
