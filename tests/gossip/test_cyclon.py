"""Protocol tests for the Cyclon shuffle over the simulated network."""

from repro.gossip.cyclon import CyclonProtocol
from repro.gossip.view import Contact, PartialView
from repro.net.topology import UniformRandomTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.clock import minutes, seconds
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class GossipPeer(NetworkNode):
    """Test peer: a view + a Cyclon protocol + optional piggyback data."""

    def __init__(self, network, label=None):
        super().__init__(network)
        self.label = label
        self.view = PartialView(owner=self.address)
        self.received_data = []
        self.dead_seen = []
        self.protocol = CyclonProtocol(
            self,
            self.view,
            network.sim.rng(f"cyclon-{self.address}"),
            shuffle_size=4,
            local_data=lambda: {"label": self.label},
            on_peer_data=lambda src, data: self.received_data.append((src, data)),
            on_contact_dead=self.dead_seen.append,
        )

    def handle_gossip_shuffle(self, message):
        return self.protocol.handle_shuffle(message)


def make_world(n_peers, seed=1):
    sim = Simulator(seed=seed)
    network = Network(sim, UniformRandomTopology(seed=seed, latency_max_ms=100.0))
    peers = [GossipPeer(network, label=f"p{i}") for i in range(n_peers)]
    return sim, network, peers


def connect_line(peers):
    """Bootstrap: each peer initially knows only the previous one."""
    for previous, peer in zip(peers, peers[1:]):
        peer.view.add(Contact(previous.address))


def run_rounds(sim, peers, rounds, period=seconds(10)):
    for peer in peers:
        PeriodicProcess(
            sim,
            period,
            peer.protocol.gossip_round,
            initial_delay=sim.rng("phase").uniform(0, period),
        )
    sim.run(until=rounds * period + 1)


def test_single_exchange_merges_views():
    sim, __, peers = make_world(2)
    a, b = peers
    a.view.add(Contact(b.address, age=3))
    a.protocol.gossip_round()
    sim.run(until=seconds(5))
    assert a.protocol.exchanges_completed == 1
    assert a.view.get(b.address).age == 0          # refreshed on reply
    assert a.address in b.view                     # b learnt about a
    assert b.view.get(a.address).age == 0


def test_piggybacked_data_flows_both_ways():
    sim, __, peers = make_world(2)
    a, b = peers
    a.view.add(Contact(b.address))
    a.protocol.gossip_round()
    sim.run(until=seconds(5))
    assert (b.address, {"label": "p1"}) in a.received_data
    assert (a.address, {"label": "p0"}) in b.received_data


def test_gossip_round_with_empty_view_is_noop():
    sim, network, peers = make_world(1)
    peers[0].protocol.gossip_round()
    sim.run(until=seconds(5))
    assert network.messages_sent == 0
    assert peers[0].protocol.rounds_started == 1


def test_dead_target_evicted_and_reported():
    sim, __, peers = make_world(2)
    a, b = peers
    a.view.add(Contact(b.address))
    b.fail()
    a.protocol.gossip_round()
    sim.run(until=seconds(10))
    assert b.address not in a.view
    assert a.dead_seen == [b.address]
    assert a.protocol.evictions == 1


def test_membership_converges_from_line_bootstrap():
    """Starting from a line, every view should fill with petal members."""
    sim, __, peers = make_world(12, seed=5)
    connect_line(peers)
    run_rounds(sim, peers, rounds=25)
    addresses = {p.address for p in peers}
    for peer in peers:
        known = set(peer.view.addresses())
        assert len(known) >= 6                 # views grew well beyond the line
        assert known <= addresses - {peer.address}


def test_views_self_heal_after_mass_failure():
    sim, __, peers = make_world(14, seed=7)
    connect_line(peers)
    run_rounds(sim, peers, rounds=15)
    dead = peers[:4]
    for peer in dead:
        peer.fail()
    # keep gossiping; processes of dead peers no-op because host is dead
    sim.run(until=sim.now + minutes(10))
    dead_addresses = {p.address for p in dead}
    for peer in peers[4:]:
        assert not dead_addresses & set(peer.view.addresses())


def test_dead_initiator_does_not_gossip():
    sim, network, peers = make_world(2)
    a, b = peers
    a.view.add(Contact(b.address))
    a.fail()
    a.protocol.gossip_round()
    sim.run(until=seconds(5))
    assert network.messages_sent == 0
