"""Unit and property tests for content summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CDNError
from repro.gossip.summaries import BloomSummary, ExactSummary, make_summary

keys = st.tuples(st.integers(0, 99), st.integers(0, 499))


class TestExactSummary:
    def test_add_and_contains(self):
        summary = ExactSummary()
        summary.add((1, 2))
        assert summary.contains((1, 2))
        assert not summary.contains((1, 3))
        assert len(summary) == 1

    def test_snapshot_is_independent(self):
        summary = ExactSummary([(1, 1)])
        snap = summary.snapshot()
        summary.add((2, 2))
        assert not snap.contains((2, 2))
        assert snap.contains((1, 1))

    def test_keys_returns_copy(self):
        summary = ExactSummary([(1, 1)])
        ks = summary.keys()
        ks.add((9, 9))
        assert not summary.contains((9, 9))


class TestBloomSummary:
    def test_parameter_validation(self):
        with pytest.raises(CDNError):
            BloomSummary(num_bits=4)
        with pytest.raises(CDNError):
            BloomSummary(num_hashes=0)

    def test_no_false_negatives(self):
        summary = BloomSummary(num_bits=4096, num_hashes=4)
        inserted = [(w, o) for w in range(5) for o in range(40)]
        for key in inserted:
            summary.add(key)
        assert all(summary.contains(key) for key in inserted)

    def test_false_positive_rate_reasonable(self):
        summary = BloomSummary(num_bits=4096, num_hashes=4)
        for o in range(100):
            summary.add((0, o))
        false_positives = sum(
            1 for o in range(10_000) if summary.contains((7, o))
        )
        # theoretical fpr at n=100, m=4096, k=4 is ~0.00008; allow slack
        assert false_positives < 100

    def test_expected_fpr_monotone(self):
        summary = BloomSummary(num_bits=1024, num_hashes=3)
        assert summary.expected_fpr(10) < summary.expected_fpr(100) < 1.0

    def test_snapshot_is_independent(self):
        summary = BloomSummary()
        summary.add((1, 1))
        snap = summary.snapshot()
        summary.add((2, 2))
        assert snap.contains((1, 1))
        assert not snap.contains((2, 2))
        assert len(snap) == 1

    @given(inserted=st.sets(keys, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_membership_superset(self, inserted):
        """Bloom `contains` must be a superset of the true set."""
        summary = BloomSummary(num_bits=2048, num_hashes=4)
        for key in inserted:
            summary.add(key)
        assert all(summary.contains(key) for key in inserted)


def test_make_summary_factory():
    assert isinstance(make_summary("exact"), ExactSummary)
    assert isinstance(make_summary("bloom"), BloomSummary)
    with pytest.raises(CDNError):
        make_summary("magic")
