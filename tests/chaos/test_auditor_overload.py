"""Unit tests for the auditor's shed-accounting invariant (I8).

Every ``flower.query_shed`` event that names an object key must
reference a query its client actually opened (or one that *just*
closed -- a retried request can be delivered after its client timed out
and failed over).  A shed for a query that never existed is fabricated
work and must trip ``shed_unaccounted``.

The auditor is driven synthetically here: events are emitted straight
into the trace, no simulation runs, so each case isolates exactly one
ledger interaction.
"""

from repro.chaos.auditor import InvariantAuditor
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world


def make_audited_world():
    config = ExperimentConfig.scaled(
        population=20,
        duration_hours=1.0,
        num_websites=2,
        num_active_websites=1,
        num_localities=1,
        objects_per_website=10,
    )
    world = build_world("flower", config, seed=2)
    auditor = InvariantAuditor(world, results_dir=None)
    return world, auditor


def shed_violations(auditor):
    return [v for v in auditor.violations if v.kind == "shed_unaccounted"]


def test_shed_of_an_open_query_is_accounted():
    world, auditor = make_audited_world()
    world.sim.emit("cdn.query", peer=7, key=(0, 3))
    world.sim.emit(
        "flower.query_shed", directory=1, client=7, key=(0, 3), position=9, depth=4
    )
    assert auditor.stats["queries_shed"] == 1
    assert not shed_violations(auditor)


def test_shed_of_a_recently_closed_query_is_tolerated():
    # The retried-RPC race: the client gave up (closing the ledger entry)
    # before the directory's answer -- a shed -- was delivered.
    world, auditor = make_audited_world()
    world.sim.emit("cdn.query", peer=7, key=(0, 3))
    world.sim.emit(
        "cdn.query_done", peer=7, key=(0, 3), outcome="miss_failed", hops=0
    )
    world.sim.emit(
        "flower.query_shed", directory=1, client=7, key=(0, 3), position=9, depth=4
    )
    assert not shed_violations(auditor)


def test_shed_of_a_never_issued_query_is_a_violation():
    world, auditor = make_audited_world()
    world.sim.emit(
        "flower.query_shed", directory=1, client=7, key=(0, 3), position=9, depth=4
    )
    (violation,) = shed_violations(auditor)
    assert violation.details["directory"] == 1
    assert violation.details["depth"] == 4


def test_register_only_shed_owes_no_ledger_entry():
    world, auditor = make_audited_world()
    world.sim.emit(
        "flower.query_shed", directory=1, client=7, key=None, position=9, depth=4
    )
    assert auditor.stats["queries_shed"] == 1
    assert not shed_violations(auditor)


def test_members_shed_events_are_tallied():
    world, auditor = make_audited_world()
    world.sim.emit("flower.members_shed", directory=1, successor=2, count=5)
    world.sim.emit("flower.members_shed", directory=3, successor=4, count=2)
    assert auditor.stats["members_shed"] == 7
