"""Unit tests for the auditor's transfer-ledger invariant (I9).

Every chunked transfer must open exactly once, count each chunk's bytes
exactly once per generation, and close with a terminal ``swarm.done``
whose byte report matches the per-chunk ledger -- for completed and
degraded closes, matches the declared object size with every chunk
present.  Like the I8 tests, the auditor is driven synthetically: events
go straight into the trace, so each case isolates one ledger rule.
"""

from repro.chaos.auditor import InvariantAuditor
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.sim.clock import minutes

KEY = (0, 3)
PEER = 7


def make_audited_world():
    config = ExperimentConfig.scaled(
        population=20,
        duration_hours=1.0,
        num_websites=2,
        num_active_websites=1,
        num_localities=1,
        objects_per_website=10,
    )
    world = build_world("flower", config, seed=2)
    auditor = InvariantAuditor(world, results_dir=None)
    return world, auditor


def transfer_violations(auditor):
    return [v for v in auditor.violations if v.kind.startswith(("transfer", "chunk"))]


def open_transfer(world, chunks=2, size=100):
    world.sim.emit("swarm.start", peer=PEER, key=KEY, chunks=chunks, size=size)


def chunk_done(world, chunk, size, source=11):
    world.sim.emit(
        "swarm.chunk_done", peer=PEER, key=KEY, chunk=chunk, source=source, bytes=size
    )


def close_transfer(world, outcome, bytes=0, origin_bytes=0, size=100):
    world.sim.emit(
        "swarm.done",
        peer=PEER,
        key=KEY,
        outcome=outcome,
        bytes=bytes,
        origin_bytes=origin_bytes,
        size=size,
        elapsed_ms=50.0,
    )


def test_clean_completed_transfer_accounts_fully():
    world, auditor = make_audited_world()
    open_transfer(world, chunks=2, size=100)
    chunk_done(world, 0, 60)
    chunk_done(world, 1, 40)
    close_transfer(world, "completed", bytes=100)
    assert not transfer_violations(auditor)
    assert auditor.stats["transfers_opened"] == 1
    assert auditor.stats["transfers_closed"] == 1
    assert auditor.stats["transfers_degraded"] == 0


def test_degraded_close_counts_origin_chunks_too():
    world, auditor = make_audited_world()
    open_transfer(world, chunks=2, size=100)
    chunk_done(world, 0, 60)            # from a peer
    chunk_done(world, 1, 40, source=0)  # failed over to the origin
    close_transfer(world, "degraded", bytes=60, origin_bytes=40)
    assert not transfer_violations(auditor)
    assert auditor.stats["transfers_degraded"] == 1


def test_successful_close_with_a_missing_chunk_is_inconsistent():
    world, auditor = make_audited_world()
    open_transfer(world, chunks=2, size=100)
    chunk_done(world, 0, 60)
    close_transfer(world, "completed", bytes=100)
    (violation,) = transfer_violations(auditor)
    assert violation.kind == "transfer_bytes_inconsistent"
    assert violation.details["chunks_done"] == 1


def test_double_counted_chunk_is_a_violation():
    world, auditor = make_audited_world()
    open_transfer(world, chunks=2, size=100)
    chunk_done(world, 0, 60)
    chunk_done(world, 0, 60)
    (violation,) = transfer_violations(auditor)
    assert violation.kind == "chunk_double_counted"


def test_chunk_without_an_open_transfer_is_a_violation():
    world, auditor = make_audited_world()
    chunk_done(world, 0, 60)
    (violation,) = transfer_violations(auditor)
    assert violation.kind == "chunk_without_transfer"


def test_close_without_an_open_transfer_is_a_violation():
    world, auditor = make_audited_world()
    close_transfer(world, "completed", bytes=100)
    (violation,) = transfer_violations(auditor)
    assert violation.kind == "transfer_double_closed"


def test_reopen_without_a_close_is_a_violation():
    world, auditor = make_audited_world()
    open_transfer(world)
    open_transfer(world)
    (violation,) = transfer_violations(auditor)
    assert violation.kind == "transfer_reopened"


def test_restart_resets_the_generation_accounting():
    world, auditor = make_audited_world()
    open_transfer(world, chunks=2, size=100)
    chunk_done(world, 0, 60)
    world.sim.emit("swarm.restart", peer=PEER, key=KEY)
    # The same chunk landing again after a restart is NOT double-counted:
    # the restart discarded the first generation's progress.
    chunk_done(world, 0, 60, source=0)
    chunk_done(world, 1, 40, source=0)
    close_transfer(world, "degraded", bytes=0, origin_bytes=100)
    assert not transfer_violations(auditor)
    assert auditor.stats["transfer_restarts"] == 1


def test_failed_close_may_be_partial_but_must_match_the_ledger():
    world, auditor = make_audited_world()
    open_transfer(world, chunks=2, size=100)
    chunk_done(world, 0, 60)
    close_transfer(world, "failed", bytes=60)
    assert not transfer_violations(auditor)
    assert auditor.stats["transfers_failed"] == 1

    open_transfer(world, chunks=2, size=100)
    close_transfer(world, "failed", bytes=60)  # reported > ledger: lie
    (violation,) = transfer_violations(auditor)
    assert violation.kind == "transfer_bytes_inconsistent"


def test_unknown_outcome_is_a_violation():
    world, auditor = make_audited_world()
    open_transfer(world, chunks=1, size=100)
    chunk_done(world, 0, 100)
    close_transfer(world, "teleported", bytes=100)
    (violation,) = transfer_violations(auditor)
    assert violation.kind == "transfer_bad_outcome"


def test_transfer_open_past_the_grace_bound_leaks():
    world, auditor = make_audited_world()
    open_transfer(world)
    world.sim.run(until=minutes(6.0))  # grace is 5 minutes
    auditor.finalize()
    assert any(v.kind == "transfer_leaked" for v in auditor.violations)


def test_chunk_retries_are_tallied():
    world, auditor = make_audited_world()
    open_transfer(world)
    world.sim.emit(
        "swarm.chunk_retry", peer=PEER, key=KEY, chunk=0, source=11, reason="timeout"
    )
    assert auditor.stats["chunk_retries"] == 1
