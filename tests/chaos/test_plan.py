"""Chaos plan generation: determinism, structure, serialization."""

import pytest

from repro.chaos.plan import (
    ChaosPhase,
    ChaosPlan,
    ChurnSurgeSpec,
    SeederDeathSpec,
    generate_plan,
    spec_from_dict,
    spec_to_dict,
)
from repro.errors import ConfigError
from repro.net.faults import BurstyLossSpec, MassFailureSpec, PartitionSpec
from repro.sim.clock import hours


def make_plan(chaos_seed=7, horizon_h=6.0, intensity=1.0, **kwargs):
    return generate_plan(
        chaos_seed,
        horizon_ms=hours(horizon_h),
        num_localities=3,
        num_websites=12,
        intensity=intensity,
        population=120,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

def test_same_inputs_same_plan():
    assert make_plan() == make_plan()


def test_different_seed_different_plan():
    assert make_plan(chaos_seed=7) != make_plan(chaos_seed=8)


def test_plan_is_decoupled_from_master_seed():
    """The plan depends only on its own arguments; it never touches the
    global random module or any simulator stream."""
    import random

    random.seed(123)
    first = make_plan()
    random.seed(456)
    assert make_plan() == first


def test_plan_brackets_chaos_with_calm_phases():
    plan = make_plan()
    assert plan.phases[0].kind == "calm"
    assert plan.phases[0].start_ms == 0.0
    assert plan.phases[-1].kind == "calm"
    assert plan.phases[-1].end_ms == plan.horizon_ms


def test_partitions_heal_before_horizon():
    for seed in range(10):
        plan = make_plan(chaos_seed=seed, intensity=2.0)
        for fault in plan.faults:
            if isinstance(fault, PartitionSpec):
                assert fault.heal_ms < plan.horizon_ms


def test_at_most_one_bursty_loss_window():
    for seed in range(10):
        plan = make_plan(chaos_seed=seed, intensity=3.0)
        bursty = [f for f in plan.faults if isinstance(f, BurstyLossSpec)]
        assert len(bursty) <= 1


def test_intensity_scales_damage():
    mild = make_plan(intensity=0.5)
    harsh = make_plan(intensity=3.0)

    def mass_fraction(plan):
        fractions = [
            f.fraction for f in plan.faults if isinstance(f, MassFailureSpec)
        ]
        return max(fractions) if fractions else 0.0

    # same seed, same phase sequence: the harsher plan fails more mass
    if mass_fraction(mild) and mass_fraction(harsh):
        assert mass_fraction(harsh) > mass_fraction(mild)


def test_split_brain_phase_wipes_directories_inside_the_cut():
    """Every ``split_brain`` phase pairs one locality partition with a
    directories-only mass failure *inside* the cut window, in the *same*
    locality -- the warm-failover torture scenario of section 5.3."""
    found = 0
    for seed in range(30):
        plan = make_plan(chaos_seed=seed, horizon_h=8.0, intensity=2.0)
        for phase in plan.phases:
            if phase.kind != "split_brain":
                continue
            found += 1
            cuts = [
                f
                for f in plan.faults
                if isinstance(f, PartitionSpec) and f.start_ms == phase.start_ms
            ]
            assert len(cuts) == 1
            cut = cuts[0]
            assert cut.heal_ms < phase.end_ms  # heals while auditors watch
            wipes = [
                f
                for f in plan.faults
                if isinstance(f, MassFailureSpec)
                and f.directories_only
                and f.locality == cut.locality
                and cut.start_ms < f.at_ms < cut.heal_ms
            ]
            assert wipes, "the wipe must land inside the partition window"
            assert all(0.0 < w.fraction <= 1.0 for w in wipes)
    assert found > 0, "30 seeds at weight 1.0 must produce split_brain phases"


def test_seeder_death_is_opt_in_and_byte_compatible():
    """Without the kwarg the menu, RNG stream and serialized form are
    exactly the classic ones -- replay bundles stay valid."""
    for seed in range(12):
        classic = make_plan(chaos_seed=seed)
        assert classic == make_plan(chaos_seed=seed, seeder_death=False)
        assert classic.seeder_deaths == ()
        assert "seeder_deaths" not in classic.to_dict()


def test_seeder_death_phases_produce_bounded_strikes():
    found = 0
    for seed in range(12):
        plan = make_plan(chaos_seed=seed, intensity=2.0, seeder_death=True)
        for spec in plan.seeder_deaths:
            found += 1
            assert 0.0 <= spec.at_ms <= plan.horizon_ms
            assert spec.count >= 1
            assert spec.hot_website is None or 0 <= spec.hot_website < 12
        if plan.seeder_deaths:
            # The strike lands inside a declared seeder_death phase.
            windows = [
                (p.start_ms, p.end_ms)
                for p in plan.phases
                if p.kind == "seeder_death"
            ]
            for spec in plan.seeder_deaths:
                assert any(lo <= spec.at_ms <= hi for lo, hi in windows)
            # And the opted-in plan still round-trips.
            assert ChaosPlan.from_dict(plan.to_dict()) == plan
    assert found > 0, "12 seeds with the kwarg must produce seeder deaths"


def test_seeder_death_spec_validation():
    with pytest.raises(ConfigError):
        SeederDeathSpec(at_ms=-1.0, count=1)
    with pytest.raises(ConfigError):
        SeederDeathSpec(at_ms=0.0, count=0)


def test_generate_plan_validation():
    with pytest.raises(ConfigError):
        make_plan(horizon_h=-1.0)
    with pytest.raises(ConfigError):
        make_plan(intensity=0.0)
    with pytest.raises(ConfigError):
        make_plan(intensity=11.0)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def test_plan_round_trips_through_dict():
    plan = make_plan(intensity=2.0)
    assert ChaosPlan.from_dict(plan.to_dict()) == plan


def test_round_trip_is_json_compatible():
    import json

    plan = make_plan()
    assert ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan


def test_spec_registry_round_trips_every_type():
    specs = [
        PartitionSpec(locality=1, start_ms=10.0, heal_ms=20.0),
        MassFailureSpec(at_ms=5.0, fraction=0.25, directories_only=True),
        BurstyLossSpec(p_good_to_bad=0.1, p_bad_to_good=0.4),
        ChurnSurgeSpec(start_ms=0.0, duration_ms=100.0, arrivals=4, hot_website=2),
        SeederDeathSpec(at_ms=30.0, count=3, hot_website=1),
        SeederDeathSpec(at_ms=30.0, count=1),
        ChaosPhase("calm", 0.0, 50.0),
    ]
    for spec in specs:
        assert spec_from_dict(spec_to_dict(spec)) == spec


def test_unknown_spec_type_rejected():
    with pytest.raises(ConfigError):
        spec_from_dict({"type": "meteor_strike"})


def test_unknown_schema_rejected():
    data = make_plan().to_dict()
    data["schema"] = 99
    with pytest.raises(ConfigError):
        ChaosPlan.from_dict(data)


def test_surge_validation():
    with pytest.raises(ConfigError):
        ChurnSurgeSpec(start_ms=0.0, duration_ms=0.0, arrivals=1)
    with pytest.raises(ConfigError):
        ChurnSurgeSpec(start_ms=0.0, duration_ms=10.0, arrivals=0)
    with pytest.raises(ConfigError):
        ChurnSurgeSpec(
            start_ms=0.0, duration_ms=10.0, arrivals=1,
            hot_interest_probability=1.5,
        )
