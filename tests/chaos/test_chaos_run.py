"""End-to-end chaos runs: clean audits, deterministic replay, and the
auditor actually tripping on an intentionally broken build."""

import dataclasses
import glob
import json
import os

import pytest

from repro.cdn.base import BasePeer
from repro.chaos import generate_plan, load_bundle, replay_bundle, run_chaos
from repro.chaos.auditor import AuditorConfig
from repro.chaos.runner import config_from_dict, config_to_dict
from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_chaos_experiment
from repro.net.faults import MassFailureSpec, PartitionSpec
from repro.sim.clock import hours


def small_config(duration_hours=1.5):
    return ExperimentConfig.scaled(
        population=100,
        duration_hours=duration_hours,
        num_websites=6,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=30,
    )


def small_plan(chaos_seed, duration_hours=1.5, intensity=1.0):
    return generate_plan(
        chaos_seed,
        horizon_ms=hours(duration_hours),
        num_localities=2,
        num_websites=6,
        intensity=intensity,
        population=100,
    )


# ---------------------------------------------------------------------------
# Config serialization (reproducer bundles carry the full config)
# ---------------------------------------------------------------------------

def test_config_round_trips_with_fault_schedule():
    config = small_config().replace(
        fault_schedule=(
            PartitionSpec(locality=1, start_ms=100.0, heal_ms=200.0),
            MassFailureSpec(at_ms=300.0, fraction=0.5, directories_only=True),
        )
    )
    data = json.loads(json.dumps(config_to_dict(config)))
    assert config_from_dict(data) == config


def test_config_from_dict_rejects_unknown_fields():
    data = config_to_dict(small_config())
    data["warp_factor"] = 9
    with pytest.raises(ConfigError):
        config_from_dict(data)


# ---------------------------------------------------------------------------
# Clean runs
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_clean_run_has_no_violations_and_is_deterministic():
    """Same (config, plan, seed) => same trace fingerprint, no violations.

    This is the ChaosPlan analogue of the fault-trajectory determinism
    test: surges, phase markers and the auditor itself must not perturb
    reproducibility.
    """
    config = small_config()
    plan = small_plan(2)

    def once():
        return run_chaos(
            "flower", config, plan, seed=3,
            results_dir=None, collect_fingerprint=True,
        )

    first, second = once(), once()
    assert first.ok, [v.to_dict() for v in first.violations]
    assert first.stats["audits"] > 0
    assert first.stats["queries_opened"] > 0
    # every opened query was closed (or finalized at the horizon)
    assert first.fingerprint is not None
    assert first.fingerprint == second.fingerprint
    assert first.result.hit_ratio == second.result.hit_ratio


@pytest.mark.slow
def test_petalup_clean_run(tmp_path):
    report = run_chaos(
        "petalup",
        small_config(),
        small_plan(3),
        seed=1,
        results_dir=str(tmp_path),
    )
    assert report.ok, [v.to_dict() for v in report.violations]
    assert not list(tmp_path.iterdir())  # no bundles on a clean run


@pytest.mark.slow
def test_run_chaos_experiment_wrapper():
    report = run_chaos_experiment(
        "flower",
        small_config(duration_hours=1.0),
        chaos_seed=5,
        seed=2,
        results_dir=None,
    )
    assert report.plan.name == "chaos-5-i1"
    assert report.ok, [v.to_dict() for v in report.violations]


# ---------------------------------------------------------------------------
# Broken build: the auditor must trip, dump a bundle, and replay it
# ---------------------------------------------------------------------------

@pytest.fixture
def leaky_completions(monkeypatch):
    """Swallow every 7th query completion: queries leak, the ledger
    invariant ("every issued query terminates exactly once") is violated."""
    counter = {"n": 0}
    orig = BasePeer._finish_query

    def leaky(self, *args, **kwargs):
        counter["n"] += 1
        if counter["n"] % 7 == 0:
            return None
        return orig(self, *args, **kwargs)

    monkeypatch.setattr(BasePeer, "_finish_query", leaky)
    return counter


@pytest.mark.slow
def test_broken_build_trips_auditor_and_bundle_replays(
    tmp_path, leaky_completions
):
    auditor_config = dataclasses.replace(AuditorConfig(), max_violations=2)
    report = run_chaos(
        "flower",
        small_config(),
        small_plan(2),
        seed=2,
        results_dir=str(tmp_path),
        auditor_config=auditor_config,
    )
    assert not report.ok
    assert {v.kind for v in report.violations} == {"query_leaked"}
    bundles = sorted(glob.glob(os.path.join(str(tmp_path), "*.json")))
    assert bundles and bundles == sorted(report.bundle_paths)

    bundle = load_bundle(report.bundle_paths[0])
    assert bundle["protocol"] == "flower"
    assert bundle["seed"] == 2
    assert bundle["violation"]["kind"] == "query_leaked"
    assert bundle["plan"]["name"] == report.plan.name
    assert bundle["trace_window"]  # some context was captured
    assert bundle["state"]["open_queries"] > 0

    # With the build still broken, the replay re-triggers the very same
    # violation from nothing but the bundle.
    leaky_completions["n"] = 0
    replay = replay_bundle(
        report.bundle_paths[0],
        results_dir=None,
        auditor_config=auditor_config,
    )
    assert not replay.ok
    assert replay.violations[0].kind == report.violations[0].kind
    assert replay.violations[0].subject == report.violations[0].subject
    assert replay.violations[0].time == report.violations[0].time


def test_load_bundle_rejects_garbage(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ConfigError):
        load_bundle(str(path))


# ---------------------------------------------------------------------------
# I7: search availability & staleness (section 5.4)
# ---------------------------------------------------------------------------

def _search_world(replication_k):
    from repro.experiments.runner import build_world

    config = small_config().replace(
        directory_replication_k=replication_k,
        search_keywords=8,
        search_probe_period_s=60.0,
    )
    return build_world("flower", config, seed=5)


def _emit_search(world, source, staleness_ms=0.0, website=0, locality=0):
    world.sim.emit(
        "flower.search_done",
        peer=1,
        website=website,
        locality=locality,
        keyword="kw0",
        matches=0,
        source=source,
        staleness_ms=staleness_ms,
    )


def test_search_staleness_beyond_bound_is_a_violation():
    from repro.chaos.auditor import InvariantAuditor

    world = _search_world(replication_k=2)
    auditor = InvariantAuditor(world, results_dir=None)
    bound = auditor.search_staleness_bound_ms
    _emit_search(world, "replica", staleness_ms=bound)  # at the bound: fine
    assert auditor.violations == []
    _emit_search(world, "replica", staleness_ms=bound + 1.0)
    assert [v.kind for v in auditor.violations] == ["search_stale_beyond_bound"]
    assert auditor.stats["search_replica_served"] == 2
    assert auditor.stats["search_stale_max_ms"] == int(round(bound + 1.0))


def test_search_outage_streak_trips_i7_when_replicated():
    from repro.chaos.auditor import InvariantAuditor

    world = _search_world(replication_k=2)
    auditor = InvariantAuditor(world, results_dir=None)
    strikes = auditor.config.search_strikes
    # An answered search in between resets the streak.
    for _ in range(strikes - 1):
        _emit_search(world, "none")
    _emit_search(world, "directory")
    for _ in range(strikes - 1):
        _emit_search(world, "none")
    assert auditor.violations == []
    _emit_search(world, "none")
    assert [v.kind for v in auditor.violations] == ["search_unavailable"]
    # Unregistered completions never enter the availability ledger.
    before = auditor.stats["searches"]
    _emit_search(world, "unregistered")
    assert auditor.stats["searches"] == before


def test_search_outage_is_expected_baseline_at_k0():
    from repro.chaos.auditor import InvariantAuditor

    world = _search_world(replication_k=0)
    auditor = InvariantAuditor(world, results_dir=None)
    for _ in range(10):
        _emit_search(world, "none")
    assert auditor.violations == []
    assert auditor.stats["searches_unanswered"] == 10
