"""Determinism regression: same seed => bit-identical event stream.

The performance work rewrote the event queue, the dispatch loop and many
hot protocol paths.  All of it is only admissible because the simulated
*behaviour* is unchanged: the full ordered stream of trace events, and
every summary statistic derived from it, must be reproducible bit-for-bit
from the seed -- and must not depend on whether anyone is tracing.

The golden SHA-256 fingerprints below chain
``repr((round(time, 9), kind, sorted(payload.items())))`` over every event
seen by a :meth:`~repro.sim.trace.TraceRecorder.subscribe_all` firehose.
If a change moves one of these hashes, it reordered, added, dropped or
altered at least one event: that is a behaviour change and must be called
out (and the goldens re-derived) explicitly, never absorbed silently into
a "performance" commit.
"""

import hashlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world

#: protocol -> (stream SHA-256, hit ratio) for GOLDEN_CONFIG at seed 1.
#: Re-derived when the query-lifecycle ledger landed: ``cdn.query_done``
#: now carries the object key (the chaos auditor matches completions to
#: issues by it).  The hit ratios are bit-identical to the previous
#: goldens -- the ledger schedules no events and draws no randomness, so
#: only trace payloads moved, never behaviour.
GOLDEN = {
    "flower": (
        "907429cb81b248f8c0122c2620214dc7bf51dd4ad7f790b2e7eeca26f5700a14",
        0.7420758234928527,
    ),
    "squirrel": (
        "2e834d2f6f1be94f55110f8134efce6585e205f4f63fcdbae2b69fe537afd0d3",
        0.6013110846245531,
    ),
}

SEED = 1


def golden_config() -> ExperimentConfig:
    return ExperimentConfig.scaled(
        population=120,
        duration_hours=6.0,
        num_websites=6,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=40,
    )


def run_world(protocol: str, firehose: bool, config: ExperimentConfig = None):
    """Run the golden scenario; return (sha_or_None, hit_ratio, events)."""
    world = build_world(protocol, config or golden_config(), SEED)
    digest = None
    if firehose:
        h = hashlib.sha256()

        def on_event(event, _h=h):
            _h.update(
                repr(
                    (round(event.time, 9), event.kind, sorted(event.payload.items()))
                ).encode()
            )

        world.sim.trace.subscribe_all(on_event)
    world.run()
    if firehose:
        digest = h.hexdigest()
    return digest, world.system.metrics.hit_ratio(), world.sim.events_executed


@pytest.mark.slow
@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_golden_stream_fingerprint(protocol):
    """The full ordered event stream matches the pinned golden hash."""
    sha, hit_ratio, _ = run_world(protocol, firehose=True)
    golden_sha, golden_hit = GOLDEN[protocol]
    assert sha == golden_sha
    assert hit_ratio == golden_hit  # exact: same floats in the same order


@pytest.mark.slow
def test_replication_off_matches_the_golden_stream():
    """``directory_replication_k = 0`` is the golden build, bit for bit.

    The warm-failover subsystem (section 5.3) keeps a version journal on
    every directory role unconditionally -- that is pure state and may
    never perturb the stream -- while all of its network traffic, RNG
    draws and processes are gated behind ``k > 0``.  Varying the *other*
    replication knob with ``k = 0`` must therefore reproduce the exact
    pinned fingerprint; if this test moves, some replication code leaked
    outside its gate.
    """
    config = golden_config().replace(directory_replication_anti_entropy=7)
    sha, hit_ratio, _ = run_world("flower", firehose=True, config=config)
    golden_sha, golden_hit = GOLDEN["flower"]
    assert sha == golden_sha
    assert hit_ratio == golden_hit


@pytest.mark.slow
def test_overload_off_matches_the_golden_stream():
    """Overload machinery disabled is the golden build, bit for bit.

    The overload extension (open-loop arrivals, bounded admission
    queues, replica-aware shedding) keeps per-role counters
    unconditionally -- pure state -- while every event it schedules,
    every RNG draw and every wire-format change is gated: the open-loop
    process is not even constructed at rate 0, the admission queue only
    engages at ``directory_queue_limit > 0``, and shed/partition traffic
    needs ``overload_shedding``.  Varying the harmless service-time knob
    with everything else off must reproduce the exact pinned
    fingerprint; if this test moves, some overload code leaked outside
    its gate.
    """
    config = golden_config().replace(
        openloop_rate_qps=0.0,
        directory_queue_limit=0,
        directory_service_ms=55.0,
        overload_shedding=False,
    )
    sha, hit_ratio, _ = run_world("flower", firehose=True, config=config)
    golden_sha, golden_hit = GOLDEN["flower"]
    assert sha == golden_sha
    assert hit_ratio == golden_hit


@pytest.mark.slow
def test_hints_and_rebalance_off_matches_the_golden_stream():
    """Redirect hints and content rebalancing disabled is the golden build.

    The reactive overload plane (queue-depth hints piggybacked on
    directory replies, load vectors on replica syncs, hot-key fetch
    counters and rebalance spills) is gated on ``redirect_hints`` /
    ``rebalance``: with both off no reply grows a ``load_hint`` field, no
    fetch is counted, and no spill or adoption is ever scheduled.
    Varying every harmless knob of the plane with the gates closed must
    reproduce the exact pinned fingerprint; if this test moves, some
    hint/rebalance code leaked outside its gate.
    """
    config = golden_config().replace(
        redirect_hints=False,
        hint_ttl_ms=7_500.0,
        rebalance=False,
        rebalance_cooldown_rounds=0,
        rebalance_budget_kb=64.0,
        rebalance_max_keys=9,
    )
    sha, hit_ratio, _ = run_world("flower", firehose=True, config=config)
    golden_sha, golden_hit = GOLDEN["flower"]
    assert sha == golden_sha
    assert hit_ratio == golden_hit


@pytest.mark.slow
def test_swarming_off_matches_the_golden_stream():
    """Swarming and bandwidth disabled is the golden build, bit for bit.

    The swarming extension (object sizes, chunked multi-source
    transfers, the fair-share bandwidth model) is gated on ``swarming``
    and ``bandwidth_kbps > 0``: with both off no size model is
    installed, no bandwidth model attaches to the network, no flow or
    swarm event is ever scheduled, and provider replies carry no extra
    hints.  Varying every harmless swarm knob with the gates closed must
    reproduce the exact pinned fingerprint; if this test moves, some
    swarming code leaked outside its gate.
    """
    config = golden_config().replace(
        swarming=False,
        swarm_parallel=8,
        swarm_sources=2,
        swarm_resume=False,
        swarm_replicate=3,
        swarm_stall_ms=123.0,
        swarm_retry_ms=45.0,
        swarm_chunk_kb=16,
        object_mean_kb=512.0,
        object_alpha=2.5,
        bandwidth_kbps=0.0,
        bandwidth_link_kbps=999.0,
        bandwidth_slow_fraction=0.9,
        bandwidth_slow_factor=4.0,
    )
    sha, hit_ratio, _ = run_world("flower", firehose=True, config=config)
    golden_sha, golden_hit = GOLDEN["flower"]
    assert sha == golden_sha
    assert hit_ratio == golden_hit


@pytest.mark.slow
def test_same_seed_reruns_are_bit_identical():
    """Two fresh worlds from the same seed produce the same stream."""
    first = run_world("flower", firehose=True)
    second = run_world("flower", firehose=True)
    assert first == second


#: Pinned goldens of the sharded engine (its own model: exact binning,
#: per-shard origin servers, bus-floored cross-shard arrivals -- see
#: docs/PROTOCOLS.md section 10).  Derived at workers=1 for SHARDED_CONFIG
#: below, seed 1, 4 shards; the invariance tests require workers=2 and 4 to
#: reproduce these exact hashes, which is what makes the worker count
#: unobservable in the results.
SHARDED_GOLDEN_HIT = 0.28780487804878047
SHARDED_GOLDEN_FINGERPRINTS = {
    "0": "a39f505a28a99ab7d26344661eb39c20d7ea8515b782e0efe91cd48aae7d78ce",
    "1": "6046684ccee1a6b17585c7cf0ca2302ed68fd3d3f105bab25975fefe8b52b91c",
    "2": "ca641471705ab089b9cef83f77813b977efa609dfc1381127c6dbd9d5f62babd",
    "3": "1d83023183373833450f9c1e85fbc1f8af8b20ee44ae0a5ddd3c498c40bc032d",
}


def sharded_config() -> ExperimentConfig:
    return ExperimentConfig.scaled(
        population=96,
        duration_hours=1.0,
        num_websites=4,
        num_active_websites=2,
        num_localities=4,
        objects_per_website=30,
    )


def run_sharded(workers: int):
    from repro.experiments.sharded import run_sharded_experiment

    return run_sharded_experiment(
        "flower", sharded_config(), seed=SEED, workers=workers, fingerprint=True
    )


@pytest.fixture(scope="module")
def sharded_reference():
    """The workers=1 sharded run, shared by the invariance tests."""
    return run_sharded(workers=1)


@pytest.mark.slow
def test_sharded_golden_fingerprints(sharded_reference):
    """The sharded engine's per-shard streams match their pinned goldens."""
    sharded = sharded_reference.extra["sharded"]
    assert sharded["fingerprints"] == SHARDED_GOLDEN_FINGERPRINTS
    assert sharded_reference.hit_ratio == SHARDED_GOLDEN_HIT


@pytest.mark.slow
@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_worker_count_invariance(sharded_reference, workers):
    """workers=2/4 reproduce the workers=1 streams and merged metrics exactly.

    Worker count decides which *process* hosts a shard, nothing else: the
    same canonical bus merge runs in-process and in the parent hub, so every
    shard sees the identical injected sequence.  Any drift here means the
    bus ordering (or something upstream of it) leaked host state into the
    simulation.
    """
    result = run_sharded(workers=workers)
    reference = sharded_reference
    assert (
        result.extra["sharded"]["fingerprints"]
        == reference.extra["sharded"]["fingerprints"]
    )
    assert result.hit_ratio == reference.hit_ratio
    assert result.queries == reference.queries
    assert result.mean_lookup_latency_ms == reference.mean_lookup_latency_ms
    assert result.events_executed == reference.events_executed
    assert result.extra["message_counts"] == reference.extra["message_counts"]
    assert result.extra["drop_counts"] == reference.extra["drop_counts"]


@pytest.mark.slow
@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_tracing_does_not_change_results(protocol):
    """Zero-cost tracing really is observation-only.

    The subscriber-gated emit path skips event construction when nobody
    listens; a bug there (e.g. a payload expression with a side effect
    hidden behind the gate) would make traced and untraced runs diverge.
    """
    _, traced_hit, traced_events = run_world(protocol, firehose=True)
    _, quiet_hit, quiet_events = run_world(protocol, firehose=False)
    assert traced_events == quiet_events
    assert traced_hit == quiet_hit
