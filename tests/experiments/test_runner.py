"""Tests for world construction and end-to-end experiment runs."""

import pytest

from repro.cdn.flower.system import FlowerSystem
from repro.cdn.petalup.system import PetalUpSystem
from repro.cdn.squirrel.system import SquirrelSystem
from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world, run_experiment

TINY = ExperimentConfig.scaled(
    population=60,
    duration_hours=1.5,
    num_websites=4,
    num_active_websites=2,
    num_localities=2,
    objects_per_website=30,
)


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigError):
        build_world("gnutella", TINY)


def test_build_world_flower():
    world = build_world("flower", TINY, seed=3)
    assert isinstance(world.system, FlowerSystem)
    assert len(world.system.seed_identities) == 8  # 4 websites x 2 localities
    assert world.churn.online_count == 8
    assert len(world.system.ring.members()) == 8


def test_build_world_squirrel():
    world = build_world("squirrel", TINY, seed=3)
    assert isinstance(world.system, SquirrelSystem)
    assert len(world.system.ring.members()) == 8


def test_build_world_petalup_fills_defaults():
    world = build_world("petalup", TINY, seed=3)
    assert isinstance(world.system, PetalUpSystem)
    assert world.config.directory_load_limit is not None
    assert world.config.max_instances >= 2


def test_uniform_topology_ablation_builds():
    config = TINY.replace(topology="uniform")
    world = build_world("flower", config, seed=3)
    world.run(until_ms=60_000.0)
    assert world.system.online_peers > 0


def test_run_experiment_produces_result():
    result = run_experiment("flower", TINY, seed=5)
    assert result.protocol == "flower"
    assert result.queries > 0
    assert 0.0 <= result.hit_ratio <= 1.0
    assert result.mean_lookup_latency_ms >= 0.0
    assert result.mean_transfer_ms >= 0.0
    assert result.arrivals > 0
    assert result.events_executed > 0
    assert sum(result.outcome_counts.values()) == result.queries
    assert result.extra["directories"] >= 0


def test_run_experiment_is_deterministic():
    a = run_experiment("flower", TINY, seed=11)
    b = run_experiment("flower", TINY, seed=11)
    assert a.queries == b.queries
    assert a.hit_ratio == b.hit_ratio
    assert a.mean_lookup_latency_ms == b.mean_lookup_latency_ms
    assert a.outcome_counts == b.outcome_counts
    assert a.events_executed == b.events_executed


def test_different_seeds_differ():
    a = run_experiment("flower", TINY, seed=1)
    b = run_experiment("flower", TINY, seed=2)
    assert (a.queries, a.hit_ratio) != (b.queries, b.hit_ratio)


def test_result_serialization_roundtrip():
    import json

    result = run_experiment("squirrel", TINY, seed=5)
    payload = json.loads(result.to_json())
    assert payload["protocol"] == "squirrel"
    assert payload["queries"] == result.queries
    assert payload["extra"]["ring_size"] >= 0
    assert isinstance(payload["hit_ratio_curve"], list)


def test_summary_line_contains_metrics():
    result = run_experiment("flower", TINY, seed=5)
    line = result.summary_line()
    assert "flower" in line
    assert "hit=" in line and "lookup=" in line
