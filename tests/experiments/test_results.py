"""Unit tests for experiment result records."""

import json

from repro.experiments.results import ExperimentResult
from repro.metrics.collector import MetricsCollector, QueryRecord


def record(time, outcome, lookup=100.0, transfer=50.0):
    return QueryRecord(
        time=time,
        website=0,
        object_key=(0, 1),
        locality=0,
        outcome=outcome,
        lookup_latency_ms=lookup,
        transfer_ms=transfer,
        hops=2,
    )


def filled_metrics():
    metrics = MetricsCollector()
    hour = 3_600_000.0
    metrics.record(record(0.5 * hour, "miss_server", lookup=900.0))
    metrics.record(record(1.5 * hour, "hit_directory", lookup=120.0))
    metrics.record(record(2.5 * hour, "hit_summary", lookup=40.0, transfer=20.0))
    return metrics


def test_from_metrics_summary_fields():
    result = ExperimentResult.from_metrics(
        protocol="flower",
        seed=9,
        population=100,
        duration_hours=3.0,
        metrics=filled_metrics(),
    )
    assert result.queries == 3
    assert result.hit_ratio == 2 / 3
    assert result.mean_lookup_latency_ms == (900 + 120 + 40) / 3
    assert result.outcome_counts == {
        "miss_server": 1,
        "hit_directory": 1,
        "hit_summary": 1,
    }


def test_hit_ratio_curve_is_hourly_cumulative():
    result = ExperimentResult.from_metrics(
        protocol="flower",
        seed=9,
        population=100,
        duration_hours=3.0,
        metrics=filled_metrics(),
    )
    assert [h for h, __ in result.hit_ratio_curve] == [1.0, 2.0, 3.0]
    ratios = [r for __, r in result.hit_ratio_curve]
    assert ratios[0] == 0.0          # only the miss in hour 1
    assert ratios[1] == 0.5          # one hit of two
    assert ratios[2] == 2 / 3


def test_empty_metrics():
    result = ExperimentResult.from_metrics(
        protocol="flower",
        seed=9,
        population=100,
        duration_hours=2.0,
        metrics=MetricsCollector(),
    )
    assert result.queries == 0
    assert result.hit_ratio == 0.0
    assert result.lookup_cdf == []
    assert [r for __, r in result.hit_ratio_curve] == [0.0, 0.0]


def test_sub_window_duration_gives_empty_curve():
    result = ExperimentResult.from_metrics(
        protocol="flower",
        seed=9,
        population=100,
        duration_hours=0.25,
        metrics=MetricsCollector(),
    )
    assert result.hit_ratio_curve == []


def test_json_roundtrip_preserves_everything():
    result = ExperimentResult.from_metrics(
        protocol="squirrel",
        seed=9,
        population=100,
        duration_hours=3.0,
        metrics=filled_metrics(),
        extra={"ring_size": 42},
    )
    payload = json.loads(result.to_json())
    assert payload["extra"]["ring_size"] == 42
    assert payload["hit_ratio"] == result.hit_ratio
    assert payload["outcome_counts"]["hit_summary"] == 1
    assert payload["lookup_cdf"][-1][1] == 1.0
