"""Unit tests for the experiment configuration."""

import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig


def test_paper_defaults_match_table_1():
    config = ExperimentConfig.paper()
    assert config.population == 3000
    assert config.peer_pool_factor == 1.3
    assert config.mean_uptime_min == 60.0
    assert config.duration_hours == 24.0
    assert config.num_websites == 100
    assert config.objects_per_website == 500
    assert config.num_active_websites == 6
    assert config.num_localities == 6
    assert (config.latency_min_ms, config.latency_max_ms) == (10.0, 500.0)
    assert config.query_interval_min == 6.0
    assert config.gossip_period_min == 60.0
    assert config.push_threshold == 0.5


def test_num_identities_is_pool_factor_times_population():
    config = ExperimentConfig.paper(population=3000)
    assert config.num_identities == 3900


def test_duration_ms():
    assert ExperimentConfig.paper().duration_ms == 24 * 3_600_000


def test_validation():
    with pytest.raises(ConfigError):
        ExperimentConfig(population=0)
    with pytest.raises(ConfigError):
        ExperimentConfig(peer_pool_factor=0.5)
    with pytest.raises(ConfigError):
        ExperimentConfig(duration_hours=0)
    with pytest.raises(ConfigError):
        ExperimentConfig(topology="mesh")
    with pytest.raises(ConfigError):
        ExperimentConfig(num_websites=5, num_active_websites=6)


def test_seed_population_must_fit_pool():
    with pytest.raises(ConfigError):
        # 100 websites x 6 localities = 600 seeds > 130 identities
        ExperimentConfig(population=100)


def test_scaled_preserves_protocol_periods():
    config = ExperimentConfig.scaled()
    assert config.query_interval_min == 6.0
    assert config.gossip_period_min == 60.0
    assert config.push_threshold == 0.5
    assert config.num_websites < 100  # but the world is smaller


def test_scaled_overrides():
    config = ExperimentConfig.scaled(population=100, num_websites=5)
    assert config.population == 100
    assert config.num_websites == 5


def test_replace():
    config = ExperimentConfig.paper()
    changed = config.replace(population=2000)
    assert changed.population == 2000
    assert config.population == 3000  # frozen original untouched


def test_protocol_params_derivation():
    config = ExperimentConfig.paper()
    params = config.protocol_params()
    assert params.query_interval_ms == 6 * 60_000
    assert params.gossip_period_ms == 60 * 60_000
    assert params.keepalive_period_ms == params.gossip_period_ms
    assert params.dring.bits == config.chord_bits
    assert params.dring.rpc_timeout_ms > 2 * config.latency_max_ms


# ------------------------------------------------------- typed sub-configs
def test_subconfig_construction_equals_flat_kwargs():
    from repro.experiments.config import (
        OverloadConfig,
        ReplicationConfig,
        SearchConfig,
        SwarmConfig,
    )

    flat = ExperimentConfig(
        directory_replication_k=2,
        directory_replication_anti_entropy=7,
        openloop_rate_qps=9.0,
        directory_queue_limit=8,
        overload_shedding=True,
        redirect_hints=True,
        rebalance=True,
        search_keywords=24,
        search_probe_period_s=45.0,
        swarming=True,
        swarm_replicate=2,
    )
    grouped = ExperimentConfig(
        replication=ReplicationConfig(k=2, anti_entropy=7),
        overload=OverloadConfig(
            rate_qps=9.0,
            queue_limit=8,
            shedding=True,
            redirect_hints=True,
            rebalance=True,
        ),
        search=SearchConfig(keywords=24, probe_period_s=45.0),
        swarm=SwarmConfig(enabled=True, replicate=2),
    )
    assert flat == grouped  # same frozen dataclass, same flat fields


def test_subconfig_views_round_trip():
    config = ExperimentConfig(
        directory_replication_k=3,
        openloop_rate_qps=4.0,
        directory_queue_limit=6,
        redirect_hints=True,
        search_keywords=12,
        swarming=True,
    )
    rebuilt = ExperimentConfig(
        replication=config.replication,
        overload=config.overload,
        search=config.search,
        swarm=config.swarm,
    )
    assert rebuilt.directory_replication_k == 3
    assert rebuilt.openloop_rate_qps == 4.0
    assert rebuilt.redirect_hints is True
    assert rebuilt.search_keywords == 12
    assert rebuilt.swarming is True


def test_conflicting_flat_and_subconfig_values_raise():
    from repro.experiments.config import ReplicationConfig

    with pytest.raises(ConfigError):
        ExperimentConfig(
            directory_replication_k=1, replication=ReplicationConfig(k=2)
        )


def test_matching_flat_and_subconfig_values_are_fine():
    from repro.experiments.config import ReplicationConfig

    config = ExperimentConfig(
        directory_replication_k=2, replication=ReplicationConfig(k=2)
    )
    assert config.directory_replication_k == 2


def test_unknown_kwargs_still_rejected():
    with pytest.raises(TypeError):
        ExperimentConfig(not_a_field=1)


def test_json_shape_is_still_flat():
    """The chaos-bundle JSON shape is the flat field list -- grouping is
    construction/view sugar only, so pre-PR bundles replay unchanged."""
    import dataclasses as dc

    from repro.chaos.runner import config_from_dict, config_to_dict

    config = ExperimentConfig(
        directory_replication_k=2,
        redirect_hints=True,
        directory_queue_limit=4,
        rebalance=True,
    )
    data = config_to_dict(config)
    assert set(data) == {f.name for f in dc.fields(ExperimentConfig)}
    assert "replication" not in data and "overload" not in data
    assert config_from_dict(data) == config


def test_reactive_plane_validation():
    with pytest.raises(ConfigError):
        ExperimentConfig(redirect_hints=True)  # needs a queue limit
    with pytest.raises(ConfigError):
        ExperimentConfig(hint_ttl_ms=0.0)
    with pytest.raises(ConfigError):
        ExperimentConfig(rebalance_max_keys=0)
    with pytest.raises(ConfigError):
        ExperimentConfig(rebalance_budget_kb=0.0)
    with pytest.raises(ConfigError):
        ExperimentConfig(rebalance_cooldown_rounds=-1)
