"""Unit tests for the experiment configuration."""

import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig


def test_paper_defaults_match_table_1():
    config = ExperimentConfig.paper()
    assert config.population == 3000
    assert config.peer_pool_factor == 1.3
    assert config.mean_uptime_min == 60.0
    assert config.duration_hours == 24.0
    assert config.num_websites == 100
    assert config.objects_per_website == 500
    assert config.num_active_websites == 6
    assert config.num_localities == 6
    assert (config.latency_min_ms, config.latency_max_ms) == (10.0, 500.0)
    assert config.query_interval_min == 6.0
    assert config.gossip_period_min == 60.0
    assert config.push_threshold == 0.5


def test_num_identities_is_pool_factor_times_population():
    config = ExperimentConfig.paper(population=3000)
    assert config.num_identities == 3900


def test_duration_ms():
    assert ExperimentConfig.paper().duration_ms == 24 * 3_600_000


def test_validation():
    with pytest.raises(ConfigError):
        ExperimentConfig(population=0)
    with pytest.raises(ConfigError):
        ExperimentConfig(peer_pool_factor=0.5)
    with pytest.raises(ConfigError):
        ExperimentConfig(duration_hours=0)
    with pytest.raises(ConfigError):
        ExperimentConfig(topology="mesh")
    with pytest.raises(ConfigError):
        ExperimentConfig(num_websites=5, num_active_websites=6)


def test_seed_population_must_fit_pool():
    with pytest.raises(ConfigError):
        # 100 websites x 6 localities = 600 seeds > 130 identities
        ExperimentConfig(population=100)


def test_scaled_preserves_protocol_periods():
    config = ExperimentConfig.scaled()
    assert config.query_interval_min == 6.0
    assert config.gossip_period_min == 60.0
    assert config.push_threshold == 0.5
    assert config.num_websites < 100  # but the world is smaller


def test_scaled_overrides():
    config = ExperimentConfig.scaled(population=100, num_websites=5)
    assert config.population == 100
    assert config.num_websites == 5


def test_replace():
    config = ExperimentConfig.paper()
    changed = config.replace(population=2000)
    assert changed.population == 2000
    assert config.population == 3000  # frozen original untouched


def test_protocol_params_derivation():
    config = ExperimentConfig.paper()
    params = config.protocol_params()
    assert params.query_interval_ms == 6 * 60_000
    assert params.gossip_period_ms == 60 * 60_000
    assert params.keepalive_period_ms == params.gossip_period_ms
    assert params.dring.bits == config.chord_bits
    assert params.dring.rpc_timeout_ms > 2 * config.latency_max_ms
