"""Tests for the programmatic figure/table builders."""

import json

import pytest

from repro.experiments import scenarios
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig.scaled(
    population=80,
    duration_hours=3.0,
    num_websites=4,
    num_active_websites=2,
    num_localities=2,
    objects_per_website=25,
)


@pytest.fixture(scope="module")
def fig3():
    return scenarios.fig3_hit_ratio(TINY, seed=13)


def test_fig3_structure(fig3):
    assert len(fig3["flower"]) == 3   # one point per hour
    assert len(fig3["squirrel"]) == 3
    assert set(fig3["final"]) == {"flower", "squirrel"}
    assert fig3["crossover_hour"] is None or 1.0 <= fig3["crossover_hour"] <= 3.0
    names = [name for name, __ in fig3["shape_checks"]]
    assert "fig3_flower_wins_finally" in names


def test_fig3_serializable(fig3):
    json.dumps(fig3)  # must not raise


def test_fig4_buckets_partition():
    data = scenarios.fig4_lookup_latency(TINY, seed=13)
    for protocol in ("flower", "squirrel"):
        total = sum(data[protocol].values())
        assert total == pytest.approx(1.0, abs=1e-6)
        assert "<=150" in data[protocol]
        assert ">1200" in data[protocol]
    assert data["means_ms"]["flower"] < data["means_ms"]["squirrel"]


def test_fig5_buckets_partition():
    data = scenarios.fig5_transfer_distance(TINY, seed=13)
    for protocol in ("flower", "squirrel"):
        assert sum(data[protocol].values()) == pytest.approx(1.0, abs=1e-6)
    assert data["means_ms"]["flower"] < data["means_ms"]["squirrel"]


def test_table2_rows_and_factors():
    data = scenarios.table2_scalability(
        [60, 80],
        seed=13,
        config_factory=lambda population: TINY.replace(
            population=population, duration_hours=2.0
        ),
    )
    assert len(data["rows"]) == 4
    assert {row["approach"] for row in data["rows"]} == {"flower", "squirrel"}
    assert data["lookup_factor_at_max_p"] > 1.0
    assert len(data["flower_hit_trend"]) == 2
    json.dumps(data)
