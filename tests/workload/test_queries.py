"""Unit tests for per-peer query streams."""

import random

from repro.workload.queries import QueryStream
from repro.workload.zipf import ZipfSampler


def make_stream(n=20, website=3, held=None, seed=1):
    return QueryStream(
        website, ZipfSampler(n, 0.8), random.Random(seed), already_held=held
    )


def test_queries_target_own_website():
    stream = make_stream(website=7)
    key = stream.next_object()
    assert key[0] == 7


def test_never_repeats_an_object():
    stream = make_stream(n=20)
    seen = set()
    while True:
        key = stream.next_object()
        if key is None:
            break
        assert key not in seen
        seen.add(key)
    assert len(seen) == 20
    assert stream.exhausted


def test_already_held_objects_are_skipped():
    held = {0, 1, 2}
    stream = make_stream(n=10, held=held)
    drawn = set()
    while not stream.exhausted:
        key = stream.next_object()
        if key is None:
            break
        drawn.add(key[1])
    assert not drawn & held
    assert drawn == set(range(10)) - held


def test_exhausted_returns_none():
    stream = make_stream(n=3)
    for __ in range(3):
        assert stream.next_object() is not None
    assert stream.exhausted
    assert stream.next_object() is None


def test_issued_counter():
    stream = make_stream(n=5)
    stream.next_object()
    stream.next_object()
    assert stream.issued == 2


def test_popular_objects_requested_earlier_on_average():
    """Zipf bias: across many peers, rank 0 should be drawn before rank n-1."""
    first_positions = {0: [], 19: []}
    for seed in range(200):
        stream = make_stream(n=20, seed=seed)
        order = []
        while not stream.exhausted:
            key = stream.next_object()
            if key is None:
                break
            order.append(key[1])
        for rank in first_positions:
            first_positions[rank].append(order.index(rank))
    mean_pos_popular = sum(first_positions[0]) / 200
    mean_pos_rare = sum(first_positions[19]) / 200
    assert mean_pos_popular < mean_pos_rare


def test_rejection_fallback_covers_tail():
    """Even with nearly everything held, the stream finds the leftovers."""
    stream = make_stream(n=50, held=set(range(49)))
    key = stream.next_object()
    assert key == (3, 49)
    assert stream.exhausted


def test_forget_revives_an_exhausted_stream():
    """Eviction (``forget``) reopens objects, even after the stream had
    drained through the uniform fallback and reported exhaustion."""
    stream = make_stream(n=3)
    drained = {index for __, index in iter(stream.next_object, None)}
    assert drained == {0, 1, 2}
    assert stream.exhausted and stream.next_object() is None
    stream.forget({1})
    assert not stream.exhausted
    assert stream.next_object() == (3, 1)
    assert stream.exhausted


def test_forget_of_a_never_requested_object_is_harmless():
    stream = make_stream(n=5)
    stream.forget({4})  # nothing requested yet
    seen = {index for __, index in iter(stream.next_object, None)}
    assert seen == set(range(5))


def test_exhaustion_boundary_counts_held_objects():
    """``already_held`` objects count toward exhaustion exactly like
    requested ones: n-1 held leaves one draw, n held leaves none."""
    one_left = make_stream(n=4, held={0, 1, 2})
    assert not one_left.exhausted
    assert one_left.next_object() == (3, 3)
    assert one_left.exhausted

    none_left = make_stream(n=4, held={0, 1, 2, 3})
    assert none_left.exhausted
    assert none_left.next_object() is None
    assert none_left.issued == 0


def test_mark_held_mid_stream_excludes_from_rejection_sampling():
    """Objects fetched outside the stream are never drawn afterwards,
    whether the draw came from Zipf rejection sampling or the dense
    fallback."""
    stream = make_stream(n=20)
    first = stream.next_object()
    outside = set(range(10)) - stream.requested
    stream.mark_held(outside)
    rest = [index for __, index in iter(stream.next_object, None)]
    assert not outside & set(rest)
    assert first[1] not in rest
    # The stream still covers everything it did not hold.
    assert set(rest) == set(range(20)) - outside - {first[1]}
    assert stream.exhausted
