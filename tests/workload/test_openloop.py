"""Unit and integration tests for the open-loop arrival process."""

import math

import pytest

from repro.errors import WorkloadError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.sim.clock import hours, minutes
from repro.workload.openloop import ArrivalProfile, OpenLoopWorkload, RegionalSurge


def make_surge(**overrides):
    defaults = dict(
        start_ms=hours(1),
        ramp_ms=minutes(10),
        peak_multiplier=3.0,
        decay_ms=minutes(30),
    )
    defaults.update(overrides)
    return RegionalSurge(**defaults)


class TestRegionalSurge:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_surge(peak_multiplier=0.5)
        with pytest.raises(WorkloadError):
            make_surge(ramp_ms=0)
        with pytest.raises(WorkloadError):
            make_surge(decay_ms=0)
        with pytest.raises(WorkloadError):
            make_surge(hot_probability=1.5)

    def test_intensity_shape(self):
        surge = make_surge()
        # Quiet before the start, linear ramp, exponential decay.
        assert surge.intensity(0.0) == 1.0
        assert surge.intensity(hours(1) - 1) == 1.0
        assert surge.intensity(hours(1) + minutes(5)) == pytest.approx(2.0)
        peak_time = hours(1) + minutes(10)
        assert surge.intensity(peak_time) == pytest.approx(3.0)
        assert surge.intensity(
            peak_time + minutes(30)
        ) == pytest.approx(3.0 * math.exp(-1.0))

    def test_intensity_floors_at_one(self):
        surge = make_surge()
        assert surge.intensity(hours(100)) == 1.0
        assert surge.excess(hours(100)) == 0.0

    def test_tuple_round_trip(self):
        surge = make_surge(locality=1, hot_website=4, hot_probability=0.5)
        assert RegionalSurge.from_tuple(surge.as_tuple()) == surge


class TestArrivalProfile:
    def test_from_config_is_none_at_rate_zero(self):
        config = ExperimentConfig.scaled(population=40)
        assert config.openloop_rate_qps == 0.0
        assert ArrivalProfile.from_config(config) is None

    def test_from_config_parses_surge_tuples(self):
        config = ExperimentConfig.scaled(
            population=40,
            openloop_rate_qps=5.0,
            openloop_surges=(
                (hours(1), minutes(10), 3.0, minutes(30), 0, 2, 0.8),
            ),
        )
        profile = ArrivalProfile.from_config(config)
        assert profile.rate_qps == 5.0
        (surge,) = profile.surges
        assert surge.locality == 0
        assert surge.hot_website == 2
        assert surge.hot_probability == 0.8

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ArrivalProfile(rate_qps=0.0)
        with pytest.raises(WorkloadError):
            ArrivalProfile(rate_qps=1.0, diurnal_amplitude=1.0)
        with pytest.raises(WorkloadError):
            ArrivalProfile(rate_qps=1.0, diurnal_period_ms=0.0)

    def test_multiplier_composes_diurnal_and_surge_excess(self):
        surge = make_surge()
        profile = ArrivalProfile(
            rate_qps=10.0,
            diurnal_amplitude=0.5,
            diurnal_period_ms=hours(24),
            surges=(surge,),
        )
        # Quarter period: diurnal at its crest, surge at its peak --
        # the surge *adds* its excess on top of the diurnal factor.
        t = hours(6)
        assert profile.diurnal(t) == pytest.approx(1.5)
        expected = 1.5 + (surge.intensity(t) - 1.0)
        assert profile.multiplier(t) == pytest.approx(expected)
        assert profile.rate_per_ms(t) == pytest.approx(
            10.0 / 1000.0 * expected
        )

    def test_flat_profile_multiplier_is_one(self):
        profile = ArrivalProfile(rate_qps=2.0)
        assert profile.multiplier(hours(3)) == 1.0


OPENLOOP_CONFIG = ExperimentConfig.scaled(
    population=60,
    duration_hours=1.0,
    num_websites=4,
    num_active_websites=2,
    num_localities=2,
    objects_per_website=30,
    openloop_rate_qps=5.0,
)


class TestOpenLoopWorkload:
    def test_not_constructed_at_rate_zero(self):
        world = build_world(
            "flower", OPENLOOP_CONFIG.replace(openloop_rate_qps=0.0), seed=3
        )
        assert world.openloop is None

    def test_issues_queries_through_the_ledger(self):
        world = build_world("flower", OPENLOOP_CONFIG, seed=3)
        assert isinstance(world.openloop, OpenLoopWorkload)
        world.run()
        stats = world.openloop.stats
        assert stats["issued"] > 0
        assert stats["arrivals"] >= stats["issued"]
        # Every open-loop query terminated through the normal outcome
        # taxonomy; none is still open at the horizon.
        assert len(world.system.metrics) >= stats["issued"]
        leftover = sum(
            len(peer._open_queries) for peer in world.system.peers.values()
        )
        assert leftover == 0

    def test_add_surge_raises_the_thinning_peak(self):
        world = build_world("flower", OPENLOOP_CONFIG, seed=3)
        workload = world.openloop
        before = workload._peak
        workload.add_surge(make_surge(peak_multiplier=4.0))
        assert workload._peak == pytest.approx(before + 3.0)

    def test_deterministic_across_reruns(self):
        def stats_of():
            world = build_world("flower", OPENLOOP_CONFIG, seed=9)
            world.run()
            return dict(world.openloop.stats), world.system.metrics.hit_ratio()

        assert stats_of() == stats_of()
