"""Unit and statistical tests for the Zipf sampler."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.zipf import ZipfSampler


def test_validation():
    with pytest.raises(WorkloadError):
        ZipfSampler(0)
    with pytest.raises(WorkloadError):
        ZipfSampler(10, exponent=-0.1)


def test_probabilities_sum_to_one():
    sampler = ZipfSampler(100, 0.8)
    total = sum(sampler.probability(rank) for rank in range(100))
    assert abs(total - 1.0) < 1e-9


def test_probability_rank_bounds():
    sampler = ZipfSampler(10)
    with pytest.raises(WorkloadError):
        sampler.probability(10)
    with pytest.raises(WorkloadError):
        sampler.probability(-1)


def test_probability_monotone_decreasing():
    sampler = ZipfSampler(50, 0.8)
    probs = [sampler.probability(rank) for rank in range(50)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))


def test_zipf_ratio_between_ranks():
    """P(0)/P(k-1) must equal k^alpha exactly."""
    sampler = ZipfSampler(100, 1.0)
    assert abs(sampler.probability(0) / sampler.probability(9) - 10.0) < 1e-9


def test_exponent_zero_is_uniform():
    sampler = ZipfSampler(20, 0.0)
    for rank in range(20):
        assert abs(sampler.probability(rank) - 0.05) < 1e-12


def test_samples_in_range_and_skewed():
    sampler = ZipfSampler(500, 0.8)
    rng = random.Random(7)
    counts = Counter(sampler.sample(rng) for _ in range(20_000))
    assert all(0 <= rank < 500 for rank in counts)
    top_10_share = sum(counts[rank] for rank in range(10)) / 20_000
    expected = sum(sampler.probability(rank) for rank in range(10))
    assert abs(top_10_share - expected) < 0.02
    assert top_10_share > 0.15  # heavy head, unlike uniform (0.02)


def test_sample_many():
    sampler = ZipfSampler(10)
    rng = random.Random(1)
    samples = sampler.sample_many(rng, 50)
    assert len(samples) == 50


def test_deterministic_given_rng_seed():
    sampler = ZipfSampler(100, 0.8)
    a = sampler.sample_many(random.Random(3), 20)
    b = sampler.sample_many(random.Random(3), 20)
    assert a == b


@given(n=st.integers(1, 300), exponent=st.floats(0.0, 2.0))
@settings(max_examples=50, deadline=None)
def test_property_sampler_well_formed(n, exponent):
    sampler = ZipfSampler(n, exponent)
    rng = random.Random(11)
    for __ in range(20):
        assert 0 <= sampler.sample(rng) < n
