"""Unit and statistical tests for the flash-crowd arrival process."""

import pytest

from repro.errors import WorkloadError
from repro.sim.clock import hours, minutes
from repro.sim.engine import Simulator
from repro.workload.flashcrowd import FlashCrowdChurnModel, FlashCrowdProfile


def make_profile(**overrides):
    defaults = dict(
        start_ms=hours(1),
        ramp_ms=minutes(10),
        peak_multiplier=5.0,
        decay_ms=minutes(30),
        hot_website=0,
    )
    defaults.update(overrides)
    return FlashCrowdProfile(**defaults)


class TestProfile:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_profile(peak_multiplier=0.5)
        with pytest.raises(WorkloadError):
            make_profile(ramp_ms=0)
        with pytest.raises(WorkloadError):
            make_profile(decay_ms=0)
        with pytest.raises(WorkloadError):
            make_profile(hot_interest_probability=1.5)

    def test_intensity_before_surge_is_one(self):
        profile = make_profile()
        assert profile.intensity(0.0) == 1.0
        assert profile.intensity(hours(1) - 1) == 1.0

    def test_intensity_ramps_linearly_to_peak(self):
        profile = make_profile()
        peak_time = hours(1) + minutes(10)
        assert profile.intensity(hours(1)) == pytest.approx(1.0)
        assert profile.intensity(hours(1) + minutes(5)) == pytest.approx(3.0)
        assert profile.intensity(peak_time) == pytest.approx(5.0)

    def test_intensity_decays_back_to_one(self):
        profile = make_profile()
        peak_time = hours(1) + minutes(10)
        later = profile.intensity(peak_time + minutes(30))
        assert 1.0 < later < 5.0
        assert profile.intensity(peak_time + hours(10)) == 1.0

    def test_in_surge_windows(self):
        profile = make_profile()
        assert not profile.in_surge(0.0)
        assert profile.in_surge(hours(1) + minutes(10))
        assert not profile.in_surge(hours(20))


class TestFlashCrowdChurn:
    def make_model(self, sim, profile, on_surge=None, population=60, pool_factor=1.5):
        return FlashCrowdChurnModel(
            sim,
            sim.rng("churn"),
            num_identities=int(population * pool_factor),
            mean_uptime_ms=minutes(60),
            target_population=population,
            on_arrival=lambda identity: None,
            on_departure=lambda identity: None,
            profile=profile,
            on_surge_interest=on_surge,
        )

    def test_arrival_rate_spikes_during_surge(self):
        sim = Simulator(seed=5)
        profile = make_profile(start_ms=hours(2), peak_multiplier=6.0,
                               decay_ms=hours(1))
        # a deep identity pool so the surge is not capped by pool exhaustion
        model = self.make_model(sim, profile, population=80, pool_factor=8.0)
        model.start()
        sim.run(until=hours(2))
        baseline = model.arrivals  # arrivals in 2 pre-surge hours
        sim.run(until=hours(4))
        surge_window = model.arrivals - baseline
        # the 2 surge hours must see clearly more arrivals than the 2
        # baseline hours (peak 6x with decay over an hour)
        assert surge_window > 1.5 * baseline

    def test_surge_interest_callback_fires(self):
        sim = Simulator(seed=7)
        hot = []
        profile = make_profile(start_ms=minutes(30), peak_multiplier=8.0,
                               decay_ms=hours(2), hot_interest_probability=1.0)
        model = self.make_model(sim, profile, on_surge=hot.append)
        model.start()
        sim.run(until=hours(3))
        assert model.surge_arrivals > 0
        assert len(hot) > 0
        assert len(hot) <= model.arrivals

    def test_no_surge_interest_before_start(self):
        sim = Simulator(seed=9)
        hot = []
        profile = make_profile(start_ms=hours(50))
        model = self.make_model(sim, profile, on_surge=hot.append)
        model.start()
        sim.run(until=hours(3))
        assert hot == []
        assert model.surge_arrivals == 0

    def test_population_still_bounded_by_pool(self):
        sim = Simulator(seed=11)
        profile = make_profile(start_ms=minutes(5), peak_multiplier=20.0,
                               decay_ms=hours(5))
        model = self.make_model(sim, profile, population=40)
        model.start()
        sim.run(until=hours(2))
        assert model.online_count <= model.num_identities
