"""Unit and statistical tests for the churn model."""

import pytest

from repro.errors import WorkloadError
from repro.sim.clock import hours, minutes
from repro.sim.engine import Simulator
from repro.workload.churn import ChurnModel


def make_model(sim, population=50, pool_factor=1.3, mean_uptime_min=60,
               on_arrival=None, on_departure=None):
    return ChurnModel(
        sim,
        sim.rng("churn"),
        num_identities=int(population * pool_factor),
        mean_uptime_ms=minutes(mean_uptime_min),
        target_population=population,
        on_arrival=on_arrival or (lambda identity: None),
        on_departure=on_departure or (lambda identity: None),
    )


def test_validation():
    sim = Simulator()
    noop = lambda identity: None
    with pytest.raises(WorkloadError):
        ChurnModel(sim, sim.rng("c"), 0, 1000.0, 1, noop, noop)
    with pytest.raises(WorkloadError):
        ChurnModel(sim, sim.rng("c"), 10, 0.0, 1, noop, noop)
    with pytest.raises(WorkloadError):
        ChurnModel(sim, sim.rng("c"), 10, 1000.0, 0, noop, noop)
    with pytest.raises(WorkloadError):
        ChurnModel(sim, sim.rng("c"), 10, 1000.0, 11, noop, noop)


def test_mean_interarrival_is_m_over_p():
    sim = Simulator()
    model = make_model(sim, population=100, mean_uptime_min=60)
    assert model.mean_interarrival_ms == minutes(60) / 100


def test_seed_online():
    sim = Simulator(seed=1)
    model = make_model(sim)
    model.seed_online(3, schedule_departure=False)
    assert model.is_online(3)
    assert model.online_count == 1


def test_seed_online_twice_rejected():
    sim = Simulator(seed=1)
    model = make_model(sim)
    model.seed_online(3, schedule_departure=False)
    with pytest.raises(WorkloadError):
        model.seed_online(3)


def test_seed_unknown_identity_rejected():
    sim = Simulator(seed=1)
    model = make_model(sim, population=10, pool_factor=1.0)
    with pytest.raises(WorkloadError):
        model.seed_online(99)


def test_seeded_identity_eventually_departs():
    sim = Simulator(seed=2)
    departures = []
    model = make_model(sim, on_departure=departures.append)
    model.seed_online(0)
    sim.run(until=hours(24))
    assert departures and departures[0] == 0 or 0 in departures


def test_arrivals_and_departures_fire_callbacks():
    sim = Simulator(seed=3)
    arrived, departed = [], []
    model = make_model(
        sim, population=20, on_arrival=arrived.append, on_departure=departed.append
    )
    model.start()
    sim.run(until=hours(6))
    assert len(arrived) > 20           # plenty of sessions in 6 h at m=1 h
    assert len(departed) > 10
    assert model.arrivals == len(arrived)
    assert model.departures == len(departed)


def test_start_idempotent():
    sim = Simulator(seed=3)
    model = make_model(sim, population=5)
    model.start()
    model.start()
    sim.run(until=hours(1))
    # only one arrival process: arrival count is plausible for rate P/m
    assert model.arrivals < 30


def test_population_converges_to_target():
    """Mean online population over the steady state must approach P."""
    sim = Simulator(seed=5)
    population = 80
    model = make_model(sim, population=population)
    model.start()
    sim.run(until=hours(6))  # warm up
    samples = []
    for __ in range(48):
        sim.run(until=sim.now + minutes(15))
        samples.append(model.online_count)
    mean_online = sum(samples) / len(samples)
    assert 0.75 * population <= mean_online <= 1.25 * population


def test_identities_rejoin_with_new_sessions():
    sim = Simulator(seed=7)
    sessions = {}
    model = make_model(
        sim,
        population=10,
        on_arrival=lambda identity: sessions.setdefault(identity, 0),
    )

    def count_arrival(identity):
        sessions[identity] = sessions.get(identity, 0) + 1

    model.on_arrival = count_arrival
    model.start()
    sim.run(until=hours(24))
    assert any(count >= 2 for count in sessions.values())


def test_uptime_draws_are_exponential_mean():
    sim = Simulator(seed=9)
    model = make_model(sim, mean_uptime_min=60)
    draws = [model.draw_uptime_ms() for __ in range(4000)]
    mean = sum(draws) / len(draws)
    assert 0.9 * minutes(60) < mean < 1.1 * minutes(60)


def test_departed_identity_goes_back_to_pool():
    sim = Simulator(seed=11)
    model = make_model(sim, population=5, pool_factor=1.0)
    model.seed_online(0)
    sim.run(until=hours(24))
    if not model.is_online(0):
        assert model.online_count <= 5
