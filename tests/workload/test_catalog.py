"""Unit tests for the content catalog."""

import pytest

from repro.errors import WorkloadError
from repro.workload.catalog import Catalog


def test_paper_defaults():
    catalog = Catalog()
    assert catalog.num_websites == 100
    assert catalog.objects_per_website == 500
    assert catalog.num_active_websites == 6
    assert catalog.total_objects == 50_000


def test_validation():
    with pytest.raises(WorkloadError):
        Catalog(num_websites=0)
    with pytest.raises(WorkloadError):
        Catalog(objects_per_website=0)
    with pytest.raises(WorkloadError):
        Catalog(num_websites=5, num_active_websites=6)
    with pytest.raises(WorkloadError):
        Catalog(num_active_websites=0)


def test_websites_and_active():
    catalog = Catalog(num_websites=10, num_active_websites=3)
    assert list(catalog.websites()) == list(range(10))
    assert list(catalog.active_websites()) == [0, 1, 2]
    assert catalog.is_active(2)
    assert not catalog.is_active(3)


def test_object_key_validation():
    catalog = Catalog(num_websites=2, objects_per_website=5)
    assert catalog.object_key(1, 4) == (1, 4)
    with pytest.raises(WorkloadError):
        catalog.object_key(2, 0)
    with pytest.raises(WorkloadError):
        catalog.object_key(0, 5)
    with pytest.raises(WorkloadError):
        catalog.object_key(0, -1)


def test_objects_of():
    catalog = Catalog(num_websites=2, objects_per_website=3)
    assert list(catalog.objects_of(1)) == [(1, 0), (1, 1), (1, 2)]
    with pytest.raises(WorkloadError):
        list(catalog.objects_of(9))


def test_url_distinct_per_object():
    catalog = Catalog(num_websites=2, objects_per_website=3)
    urls = {catalog.url(key) for ws in range(2) for key in catalog.objects_of(ws)}
    assert len(urls) == 6
