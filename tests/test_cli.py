"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST = ["--population", "60", "--hours", "1", "--seed", "3"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "gnutella"])


def test_run_command(capsys):
    assert main(["run", "flower", *FAST]) == 0
    out = capsys.readouterr().out
    assert "flower" in out
    assert "hit=" in out
    assert "outcome" in out


def test_run_with_plot(capsys):
    assert main(["run", "flower", "--plot", *FAST]) == 0
    out = capsys.readouterr().out
    assert "cumulative hit ratio" in out


def test_run_writes_json(tmp_path, capsys):
    path = tmp_path / "result.json"
    assert main(["run", "squirrel", *FAST, "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["protocol"] == "squirrel"
    assert "hit_ratio" in payload


def test_compare_command(capsys):
    code = main(["compare", *FAST])
    out = capsys.readouterr().out
    assert "paper shape checks" in out
    assert code in (0, 1)  # shape checks may fail legitimately at 1 sim-hour


def test_sweep_command(capsys):
    assert (
        main(
            [
                "sweep",
                "--populations",
                "60",
                "--protocols",
                "flower",
                "--hours",
                "1",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "scalability sweep" in out
    assert "flower" in out


def test_overhead_command(capsys):
    assert main(["overhead", "flower", *FAST]) == 0
    out = capsys.readouterr().out
    assert "message overhead" in out
    assert "maintenance messages per query" in out


# ----------------------------------------------- normalized option naming
def test_option_names_are_uniform_across_subcommands():
    """``--replication``, ``--workers``, ``--overload`` and
    ``--rebalance`` parse identically on run/compare/sweep/overhead/chaos."""
    parser = build_parser()
    for command, extra in (
        ("run", ["flower"]),
        ("compare", []),
        ("sweep", []),
        ("overhead", "flower".split()),
        ("chaos", ["flower"]),
    ):
        args = parser.parse_args(
            [command, *extra, "--replication", "2", "--workers", "1", "--overload"]
        )
        assert args.replication == 2
        assert args.workers == 1
        assert args.overload is True
        assert args.rebalance is False


def test_rebalance_flag_turns_on_the_reactive_plane():
    from repro.cli import _config_from

    args = build_parser().parse_args(["run", "flower", "--rebalance"])
    config = _config_from(args)
    assert config.redirect_hints is True
    assert config.rebalance is True
    # --rebalance implies the --overload recipe.
    assert config.openloop_rate_qps > 0
    assert config.directory_queue_limit > 0
    assert config.overload_shedding is True


def test_overload_without_rebalance_keeps_the_reactive_plane_off():
    from repro.cli import _config_from

    args = build_parser().parse_args(["run", "flower", "--overload"])
    config = _config_from(args)
    assert config.redirect_hints is False
    assert config.rebalance is False
    assert config.openloop_rate_qps > 0


def test_deprecated_aliases_warn_but_work(capsys):
    with pytest.deprecated_call():
        args = build_parser().parse_args(
            ["run", "flower", "--replication-k", "3"]
        )
    assert args.replication == 3
    assert "deprecated" in capsys.readouterr().err
    with pytest.deprecated_call():
        args = build_parser().parse_args(["run", "flower", "--num-workers", "1"])
    assert args.workers == 1


def test_rebalanced_run_end_to_end(capsys):
    assert main(["run", "flower", *FAST, "--rebalance"]) == 0
    out = capsys.readouterr().out
    assert "hit=" in out
