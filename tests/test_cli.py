"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST = ["--population", "60", "--hours", "1", "--seed", "3"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "gnutella"])


def test_run_command(capsys):
    assert main(["run", "flower", *FAST]) == 0
    out = capsys.readouterr().out
    assert "flower" in out
    assert "hit=" in out
    assert "outcome" in out


def test_run_with_plot(capsys):
    assert main(["run", "flower", "--plot", *FAST]) == 0
    out = capsys.readouterr().out
    assert "cumulative hit ratio" in out


def test_run_writes_json(tmp_path, capsys):
    path = tmp_path / "result.json"
    assert main(["run", "squirrel", *FAST, "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["protocol"] == "squirrel"
    assert "hit_ratio" in payload


def test_compare_command(capsys):
    code = main(["compare", *FAST])
    out = capsys.readouterr().out
    assert "paper shape checks" in out
    assert code in (0, 1)  # shape checks may fail legitimately at 1 sim-hour


def test_sweep_command(capsys):
    assert (
        main(
            [
                "sweep",
                "--populations",
                "60",
                "--protocols",
                "flower",
                "--hours",
                "1",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "scalability sweep" in out
    assert "flower" in out


def test_overhead_command(capsys):
    assert main(["overhead", "flower", *FAST]) == 0
    out = capsys.readouterr().out
    assert "message overhead" in out
    assert "maintenance messages per query" in out
