#!/usr/bin/env python
"""PetalUp-CDN: watching a petal split under load (paper section 4, Fig. 2).

A single petal is flooded with clients while the directory load limit is
set very low.  As each directory instance's member view fills up, it steers
new clients onward and finally promotes one of its content peers to join
D-ring as the next instance d_{i+1} -- at the very next identifier.

Runtime: a few seconds.
"""

from repro.cdn.petalup.system import PetalUpSystem
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.metrics.report import render_table
from repro.sim.clock import hours


def main() -> None:
    config = ExperimentConfig.scaled(
        population=160,
        duration_hours=6.0,
        num_websites=4,
        num_active_websites=1,
        num_localities=2,
        objects_per_website=60,
        directory_load_limit=8,    # split early so the example is vivid
        max_instances=8,
    )
    world = build_world("petalup", config, seed=19)
    system = world.system
    assert isinstance(system, PetalUpSystem)

    print(
        f"PetalUp-CDN: load limit {config.directory_load_limit} members per "
        f"directory instance, up to {config.max_instances} instances per petal"
    )
    print()

    rows = []
    for hour in range(1, int(config.duration_hours) + 1):
        world.run(until_ms=hours(hour))
        for locality in range(config.num_localities):
            instances = system.instance_count(0, locality)
            size = system.petal_size(0, locality)
            rows.append([hour, locality, size, instances])

    print(
        render_table(
            ["hour", "locality", "petal members", "directory instances"],
            rows,
            title="petal(website 0, loc) growth and directory splits",
        )
    )

    print()
    print("directory instances on D-ring at the end (successive identifiers):")
    for peer in system.peers.values():
        role = peer.directory
        if peer.alive and role is not None and role.website == 0:
            print(
                f"  d_{role.instance}(ws=0, loc={role.locality})  "
                f"id={role.position_id}  members={role.load}"
            )

    result_hit = system.metrics.hit_ratio()
    print()
    print(
        f"{len(system.metrics)} queries, hit ratio {result_hit:.3f} -- "
        "identical query semantics to Flower-CDN, but no directory peer "
        f"ever manages more than ~{config.directory_load_limit} content peers"
    )


if __name__ == "__main__":
    main()
