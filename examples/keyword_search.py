#!/usr/bin/env python
"""Keyword search within petals — the paper's future work, working.

Section 7: "In the future, we plan to explore sophisticated search
functionalities wrt. semantic and personalized search."  This example runs
a small Flower-CDN deployment for a few hours, then has a content peer
search its petal by keyword: the petal's directory peer answers from the
directory-index it already maintains, so search costs one round trip and
inherits the index's churn robustness.

Runtime: a few seconds.
"""

from collections import Counter

from repro.cdn.flower.search import KeywordSearchEngine, KeywordSpace
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.metrics.report import render_table
from repro.sim.clock import hours, seconds


def main() -> None:
    config = ExperimentConfig.scaled(
        population=150,
        duration_hours=4.0,
        num_websites=4,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=60,
    )
    world = build_world("flower", config, seed=29)
    engine = KeywordSearchEngine(KeywordSpace(num_keywords=12), max_results=10)
    world.system.search_engine = engine

    world.run(until_ms=hours(4))

    # Pick a well-connected content peer (registered, not a directory).
    peer = next(
        p
        for p in world.system.peers.values()
        if p.alive and p.dir_info is not None and len(p.store) > 0
    )
    print(
        f"peer {peer.address} (website {peer.website}, locality "
        f"{peer.locality}) searches its petal after 4 simulated hours"
    )
    print()

    rows = []
    hits = Counter()
    for keyword in engine.space.all_keywords():
        results = []
        peer.search(keyword, results.append)
        world.sim.run(until=world.sim.now + seconds(5))
        matches = results[0] if results else []
        hits[keyword] = len(matches)
        sample = ", ".join(f"obj{key[1]}@peer{addr}" for key, addr in matches[:3])
        rows.append([keyword, len(matches), sample or "-"])

    print(
        render_table(
            ["keyword", "matches", "sample (object@provider)"],
            rows,
            title=f"petal search results (max {engine.max_results} per keyword)",
        )
    )
    print()
    total = sum(hits.values())
    print(
        f"{total} matches across {len(hits)} keywords -- all served by one "
        "directory peer from the index it was already maintaining"
    )


if __name__ == "__main__":
    main()
