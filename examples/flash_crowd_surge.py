#!/usr/bin/env python
"""A true flash crowd: a non-homogeneous surge of arrivals on one website.

Unlike examples/flash_crowd.py (steady demand on a hot site), this builds
the world from the lower-level APIs and drives it with
:class:`~repro.workload.flashcrowd.FlashCrowdChurnModel`: at hour 2 the
arrival rate ramps to 8x within 15 minutes, newcomers overwhelmingly
interested in the hot website, then decays.  Watch the petals absorb the
wave: the origin server's load rises with the front of the crowd and falls
back as the community starts serving itself.

Runtime: ~15-30 seconds.
"""

from repro.cdn.flower.system import FlowerSystem
from repro.errors import CDNError
from repro.experiments.config import ExperimentConfig
from repro.net.landmarks import LandmarkBinner
from repro.net.topology import ClusteredTopology
from repro.net.transport import Network
from repro.metrics.report import render_table
from repro.sim.clock import hours, minutes
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog
from repro.workload.flashcrowd import FlashCrowdChurnModel, FlashCrowdProfile

HOT_WEBSITE = 0


def main() -> None:
    config = ExperimentConfig.scaled(
        population=150,
        duration_hours=8.0,
        num_websites=6,
        num_active_websites=1,
        num_localities=3,
        objects_per_website=60,
        peer_pool_factor=4.0,  # a deep pool: the crowd comes from outside
    )

    # ---- assemble the world by hand (what build_world does internally) ----
    sim = Simulator(seed=23)
    topology = ClusteredTopology(sim.rng("topology"), num_clusters=config.num_localities)
    network = Network(sim, topology, default_timeout_ms=3 * config.latency_max_ms)
    binner = LandmarkBinner.for_clustered(topology)
    catalog = Catalog(config.num_websites, config.objects_per_website,
                      config.num_active_websites)
    system = FlowerSystem(sim, network, binner, catalog, config.protocol_params())
    system.setup_initial_population()

    def pin_to_hot_site(identity: int) -> None:
        try:
            system.assign_website(identity, HOT_WEBSITE)
        except CDNError:
            pass  # a returning identity keeps its existing interest

    profile = FlashCrowdProfile(
        start_ms=hours(2),
        ramp_ms=minutes(15),
        peak_multiplier=8.0,
        decay_ms=hours(1),
        hot_website=HOT_WEBSITE,
        hot_interest_probability=0.9,
    )
    churn = FlashCrowdChurnModel(
        sim,
        sim.rng("churn"),
        num_identities=config.num_identities,
        mean_uptime_ms=minutes(config.mean_uptime_min),
        target_population=config.population,
        on_arrival=system.on_arrival,
        on_departure=system.on_departure,
        profile=profile,
        on_surge_interest=pin_to_hot_site,
    )
    for identity in system.seed_identities:
        churn.seed_online(identity)
    churn.start()

    # ------------------------------- run, sampling the world every hour ---
    print(
        f"flash crowd at hour 2: arrival rate x{profile.peak_multiplier:.0f} "
        f"for ~{(profile.ramp_ms + profile.decay_ms) / hours(1):.1f}h, "
        f"{profile.hot_interest_probability:.0%} of the crowd wants website 0"
    )
    print()
    rows = []
    hot_server = system.servers[HOT_WEBSITE]
    last_origin = last_queries = 0
    for hour in range(1, int(config.duration_hours) + 1):
        sim.run(until=hours(hour))
        queries = len(system.metrics)
        origin = hot_server.requests_served
        window_queries = queries - last_queries
        window_origin = origin - last_origin
        offload = 1 - window_origin / window_queries if window_queries else 0.0
        community = sum(
            system.petal_size(HOT_WEBSITE, loc) for loc in range(config.num_localities)
        )
        rows.append(
            [
                hour,
                f"x{profile.intensity(hours(hour)):.1f}",
                churn.online_count,
                window_queries,
                window_origin,
                f"{offload:.0%}",
                community,
            ]
        )
        last_origin, last_queries = origin, queries

    print(
        render_table(
            ["hour", "arrival rate", "online", "queries", "origin hits",
             "offloaded", "hot petals"],
            rows,
            title="the surge and its absorption",
        )
    )
    print()
    print(
        f"surge arrivals: {churn.surge_arrivals} of {churn.arrivals} total; "
        f"final hit ratio {system.metrics.hit_ratio():.3f}"
    )


if __name__ == "__main__":
    main()
