#!/usr/bin/env python
"""Quickstart: run a small Flower-CDN experiment and read the results.

The public API is three calls::

    config = ExperimentConfig.scaled(...)     # or .paper() for Table 1 scale
    result = run_experiment("flower", config, seed=7)
    print(result.summary_line())

Everything below is inspection of the returned ExperimentResult.
Runtime: a few seconds.
"""

from repro import ExperimentConfig, run_experiment
from repro.metrics.report import render_table


def main() -> None:
    # A reduced-scale world: same protocols and parameters as the paper's
    # Table 1, just fewer peers/websites so it runs in seconds.
    config = ExperimentConfig.scaled(population=150, duration_hours=6.0)
    print(
        f"Flower-CDN: P={config.population}, {config.num_websites} websites "
        f"({config.num_active_websites} active), k={config.num_localities} "
        f"localities, {config.duration_hours:.0f} simulated hours"
    )

    result = run_experiment("flower", config, seed=7)

    print()
    print("headline metrics (paper section 6):")
    print(f"  hit ratio        {result.hit_ratio:.3f}")
    print(f"  lookup latency   {result.mean_lookup_latency_ms:.0f} ms (mean)")
    print(f"  transfer distance {result.mean_transfer_ms:.0f} ms (mean)")

    print()
    print(
        render_table(
            ["outcome", "queries", "share"],
            [
                [outcome, count, f"{count / result.queries:.1%}"]
                for outcome, count in sorted(result.outcome_counts.items())
            ],
            title=f"how {result.queries} queries were served",
        )
    )

    print()
    print("hit ratio over time (Figure 3 style, cumulative):")
    for hour, ratio in result.hit_ratio_curve:
        bar = "#" * int(ratio * 40)
        print(f"  h{hour:>4.0f}  {ratio:5.3f}  {bar}")

    print()
    print(
        f"simulated {result.events_executed:,} events, "
        f"{result.messages_sent:,} messages, "
        f"{result.arrivals} arrivals / {result.departures} failures "
        f"(exponential uptimes, mean {config.mean_uptime_min:.0f} min)"
    )


if __name__ == "__main__":
    main()
