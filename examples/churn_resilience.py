#!/usr/bin/env python
"""Churn resilience: Flower-CDN vs Squirrel as peers get flakier.

Reproduces the *mechanism* behind Figure 3 at example scale: Squirrel's
per-object directories die with their home nodes, so its hit ratio
plateaus; Flower-CDN's petals rebuild their directory peers from gossip
and push messages, so it keeps climbing -- and the gap widens as uptimes
shrink.

Run with ``--seed N`` to re-roll every stochastic choice (churn, queries,
topology); identical seeds reproduce identical tables.

Runtime: ~1-2 minutes (six short experiments).
"""

import argparse
from typing import List, Optional

from repro import ExperimentConfig, run_experiment
from repro.metrics.report import render_table


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=17, help="master RNG seed")
    args = parser.parse_args(argv)

    base = ExperimentConfig.scaled(
        population=150,
        duration_hours=8.0,
        num_websites=8,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=60,
    )

    rows = []
    for uptime_min in (120.0, 60.0, 30.0):
        config = base.replace(mean_uptime_min=uptime_min)
        flower = run_experiment("flower", config, seed=args.seed)
        squirrel = run_experiment("squirrel", config, seed=args.seed)
        rows.append(
            [
                f"{uptime_min:.0f} min",
                f"{flower.hit_ratio:.3f}",
                f"{squirrel.hit_ratio:.3f}",
                f"{flower.hit_ratio / max(squirrel.hit_ratio, 1e-9):.2f}x",
                f"{flower.mean_lookup_latency_ms:.0f} ms",
                f"{squirrel.mean_lookup_latency_ms:.0f} ms",
            ]
        )
        print(f"mean uptime {uptime_min:.0f} min:")
        print("  hour :  flower  squirrel")
        for (hour, f_ratio), (__, s_ratio) in zip(
            flower.hit_ratio_curve, squirrel.hit_ratio_curve
        ):
            print(f"  {hour:>4.0f} :  {f_ratio:.3f}   {s_ratio:.3f}")
        print()

    print(
        render_table(
            [
                "mean uptime",
                "flower hit",
                "squirrel hit",
                "advantage",
                "flower lookup",
                "squirrel lookup",
            ],
            rows,
            title="shorter uptimes hurt Squirrel's directories most",
        )
    )


if __name__ == "__main__":
    main()
