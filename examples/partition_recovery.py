#!/usr/bin/env python
"""Partition and heal: Flower-CDN rides out a cut locality, Squirrel breaks.

A backbone cut isolates locality 0 for two simulated hours, then heals --
a scenario the paper's robustness argument implies but never measures.
Flower-CDN keeps each locality's directory *inside* the locality, so a
partitioned petal keeps serving its members from local caches, gossip
summaries and its directory peer; only cross-locality traffic (sibling
collaboration, D-ring joins from outside) is lost.  Squirrel's single
global ring straddles the cut: peers inside the partition can no longer
reach most home directories (or the origin servers), so availability and
hit ratio collapse until the heal.

``--wipe`` additionally kills every directory inside the cut mid-
partition -- the section 5.2 worst case -- and the Flower run then also
reports the *directory*-level recovery metrics: how long the member
index stays cold (time to full index), how many queries that cold
window pushed to the origin, and how stale the adopted replicas were.
``--replication K`` turns on the warm failover of section 5.3 (each
directory replicates its versioned index to K ring successors plus one
in-petal heir); compare ``--wipe`` against ``--wipe --replication 2`` to
see the cold window close.

Run with ``--seed N`` to check determinism: identical seeds produce
identical reports, fault injection included.

Runtime: ~1 minute (two short experiments).
"""

import argparse
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    run_directory_recovery_experiment,
    run_recovery_experiment,
)
from repro.metrics.report import render_table
from repro.net.faults import MassFailureSpec, PartitionSpec
from repro.sim.clock import hours, minutes


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=17, help="master RNG seed")
    parser.add_argument(
        "--replication",
        type=int,
        default=0,
        metavar="K",
        help="directory replication degree (0 = off; warm failover, section 5.3)",
    )
    parser.add_argument(
        "--wipe",
        action="store_true",
        help="also kill every directory inside the cut mid-partition",
    )
    args = parser.parse_args(argv)

    fault_start = hours(3.0)
    fault_heal = hours(5.0)
    schedule: tuple = (
        PartitionSpec(locality=0, start_ms=fault_start, heal_ms=fault_heal),
    )
    if args.wipe:
        schedule += (
            MassFailureSpec(
                at_ms=fault_start + 0.5 * (fault_heal - fault_start),
                fraction=1.0,
                locality=0,
                directories_only=True,
            ),
        )
    config = ExperimentConfig.scaled(
        population=150,
        duration_hours=9.0,
        num_websites=8,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=60,
        fault_schedule=schedule,
        directory_replication_k=args.replication,
    )

    rows = []
    for protocol in ("flower", "squirrel"):
        directory_recovery = None
        if protocol == "flower":
            result, recovery, directory_recovery = run_directory_recovery_experiment(
                protocol,
                config,
                fault_start_ms=fault_start,
                fault_end_ms=fault_heal,
                seed=args.seed,
                window_ms=minutes(30),
                localities=[0],
            )
        else:
            # Squirrel has no directory slots to track; replication is a
            # Flower-family knob, so the baseline run stays as before.
            result, recovery = run_recovery_experiment(
                protocol,
                config.replace(directory_replication_k=0),
                fault_start_ms=fault_start,
                fault_end_ms=fault_heal,
                seed=args.seed,
                window_ms=minutes(30),
            )
        print(f"=== {protocol} (seed {args.seed}) ===")
        print(recovery.render())
        drops = result.extra.get("drop_counts", {})
        print(
            f"drops: loss={drops.get('loss', 0)} "
            f"dead_dst={drops.get('dead_dst', 0)} "
            f"partition={drops.get('partition', 0)}"
        )
        if directory_recovery is not None:
            ttfi = directory_recovery["time_to_full_index_ms"]
            ttfi_text = (
                "never" if ttfi is None else f"{ttfi / 60_000.0:.0f} min"
            )
            staleness = directory_recovery["takeover_staleness_ms"]
            print(
                f"directory recovery (locality 0, k={args.replication}): "
                f"time to full index {ttfi_text}, "
                f"cold-window misses {directory_recovery['cold_window_misses']}, "
                f"replicas adopted {directory_recovery['replicas_adopted']} "
                f"(staleness mean {staleness['mean'] / 60_000.0:.1f} min, "
                f"max {staleness['max'] / 60_000.0:.1f} min)"
            )
        print()
        ttr = recovery.time_to_recover_ms()
        rows.append(
            [
                protocol,
                f"{recovery.pre.hit_ratio:.3f}",
                f"{recovery.during.hit_ratio:.3f}",
                f"{recovery.post.hit_ratio:.3f}",
                f"{recovery.availability:.1%}",
                "never" if ttr is None else f"{ttr / 60_000.0:.0f} min",
            ]
        )

    print(
        render_table(
            ["protocol", "pre hit", "fault hit", "post hit", "availability", "TTR"],
            rows,
            title=(
                "partition of locality 0 "
                f"({fault_start / 3_600_000.0:.0f}h-{fault_heal / 3_600_000.0:.0f}h), "
                f"P={config.population}"
                + (", directory wipe mid-cut" if args.wipe else "")
            ),
        )
    )


if __name__ == "__main__":
    main()
