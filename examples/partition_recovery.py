#!/usr/bin/env python
"""Partition and heal: Flower-CDN rides out a cut locality, Squirrel breaks.

A backbone cut isolates locality 0 for two simulated hours, then heals --
a scenario the paper's robustness argument implies but never measures.
Flower-CDN keeps each locality's directory *inside* the locality, so a
partitioned petal keeps serving its members from local caches, gossip
summaries and its directory peer; only cross-locality traffic (sibling
collaboration, D-ring joins from outside) is lost.  Squirrel's single
global ring straddles the cut: peers inside the partition can no longer
reach most home directories (or the origin servers), so availability and
hit ratio collapse until the heal.

Run with ``--seed N`` to check determinism: identical seeds produce
identical reports, fault injection included.

Runtime: ~1 minute (two short experiments).
"""

import argparse
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_recovery_experiment
from repro.metrics.report import render_table
from repro.net.faults import PartitionSpec
from repro.sim.clock import hours, minutes


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=17, help="master RNG seed")
    args = parser.parse_args(argv)

    fault_start = hours(3.0)
    fault_heal = hours(5.0)
    config = ExperimentConfig.scaled(
        population=150,
        duration_hours=9.0,
        num_websites=8,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=60,
        fault_schedule=(
            PartitionSpec(locality=0, start_ms=fault_start, heal_ms=fault_heal),
        ),
    )

    rows = []
    for protocol in ("flower", "squirrel"):
        result, recovery = run_recovery_experiment(
            protocol,
            config,
            fault_start_ms=fault_start,
            fault_end_ms=fault_heal,
            seed=args.seed,
            window_ms=minutes(30),
        )
        print(f"=== {protocol} (seed {args.seed}) ===")
        print(recovery.render())
        drops = result.extra.get("drop_counts", {})
        print(
            f"drops: loss={drops.get('loss', 0)} "
            f"dead_dst={drops.get('dead_dst', 0)} "
            f"partition={drops.get('partition', 0)}"
        )
        print()
        ttr = recovery.time_to_recover_ms()
        rows.append(
            [
                protocol,
                f"{recovery.pre.hit_ratio:.3f}",
                f"{recovery.during.hit_ratio:.3f}",
                f"{recovery.post.hit_ratio:.3f}",
                f"{recovery.availability:.1%}",
                "never" if ttr is None else f"{ttr / 60_000.0:.0f} min",
            ]
        )

    print(
        render_table(
            ["protocol", "pre hit", "fault hit", "post hit", "availability", "TTR"],
            rows,
            title=(
                "partition of locality 0 "
                f"({fault_start / 3_600_000.0:.0f}h-{fault_heal / 3_600_000.0:.0f}h), "
                f"P={config.population}"
            ),
        )
    )


if __name__ == "__main__":
    main()
