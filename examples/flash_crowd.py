#!/usr/bin/env python
"""Flash crowd: a P2P CDN relieving an under-provisioned website.

The paper's motivation (section 1): "peers collaborate to redistribute the
content of their favourite and under-provisioned websites for large
audiences ... and relieve them from their substantial query load."

This example measures exactly that relief.  One website's community keeps
growing (a flash crowd: every arriving peer is interested in the same
site), and we track how many requests the *origin server* has to serve per
hour as the petals warm up -- with the Flower-CDN community absorbing more
and more of the demand.

Runtime: ~10-20 seconds.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.metrics.report import render_table
from repro.sim.clock import hours


def main() -> None:
    # One hot website (plus a handful of cold ones so D-ring routing is
    # realistic), and a community that churns aggressively.
    config = ExperimentConfig.scaled(
        population=200,
        duration_hours=10.0,
        num_websites=6,
        num_active_websites=1,     # all query load lands on website 0
        num_localities=3,
        objects_per_website=80,
    )
    world = build_world("flower", config, seed=13)
    hot_site = world.system.servers[0]

    print(
        f"flash crowd on website 0: ~{config.population} peers, "
        f"{config.objects_per_website} objects, "
        f"{config.duration_hours:.0f} simulated hours"
    )
    print()

    rows = []
    served_before = 0
    queries_before = 0
    for hour in range(1, int(config.duration_hours) + 1):
        world.run(until_ms=hours(hour))
        metrics = world.system.metrics
        queries = len(metrics)
        origin_hits = hot_site.requests_served
        window_queries = queries - queries_before
        window_origin = origin_hits - served_before
        offload = 1.0 - (window_origin / window_queries) if window_queries else 0.0
        rows.append(
            [
                hour,
                window_queries,
                window_origin,
                f"{offload:.1%}",
                world.system.petal_size(0, 0)
                + world.system.petal_size(0, 1)
                + world.system.petal_size(0, 2),
            ]
        )
        served_before = origin_hits
        queries_before = queries

    print(
        render_table(
            ["hour", "queries", "served by origin", "offloaded", "community size"],
            rows,
            title="origin-server relief as the petals warm up",
        )
    )

    metrics = world.system.metrics
    print()
    print(
        f"totals: {len(metrics)} queries, origin served "
        f"{hot_site.requests_served} "
        f"({hot_site.requests_served / len(metrics):.1%}); the community "
        f"absorbed the rest (final hit ratio {metrics.hit_ratio():.3f})"
    )


if __name__ == "__main__":
    main()
