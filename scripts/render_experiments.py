#!/usr/bin/env python
"""Render EXPERIMENTS.md from the paper-scale results under results/.

Reads the ``full_<protocol>_<population>.json`` files written by
``scripts/run_full_scale.py`` and produces the paper-vs-measured record for
every figure and table.  Re-run after a new sweep::

    python scripts/run_full_scale.py
    python scripts/render_experiments.py > EXPERIMENTS.md
"""

import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

PAPER_TABLE2 = {
    2000: {"squirrel": (0.35, 1503, 163), "flower": (0.63, 167, 120)},
    3000: {"squirrel": (0.41, 1544, 166), "flower": (0.68, 152, 92)},
    4000: {"squirrel": (0.45, 1596, 169), "flower": (0.70, 138, 88)},
    5000: {"squirrel": (0.52, 1596, 165), "flower": (0.72, 127, 81)},
}


def load(protocol, population):
    path = RESULTS / f"full_{protocol}_{population}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def fraction_below(cdf, threshold):
    best = 0.0
    for value, fraction in cdf:
        if value <= threshold:
            best = fraction
    return best


def main() -> int:
    out = []
    w = out.append
    w("# EXPERIMENTS — paper vs. measured")
    w("")
    w("Every figure and table of the paper's evaluation (section 6), "
      "regenerated at the paper's full Table 1 scale (24 simulated hours, "
      "100 websites, 6 localities, mean uptime 60 min, crash-only churn). "
      "Absolute numbers differ — our substrate is a from-scratch simulator, "
      "not the authors' PeerSim setup — but the *shape* (who wins, by what "
      "factor, where curves cross) is the reproduction target, per DESIGN.md.")
    w("")
    w("Regenerate with `python scripts/run_full_scale.py && python "
      "scripts/render_experiments.py > EXPERIMENTS.md`. Reduced-scale "
      "versions of the same tables come from `pytest benchmarks/ "
      "--benchmark-only` (see `results/*.txt`).")
    w("")

    # ------------------------------------------------------------- Table 2
    w("## Table 2 — scalability (hit ratio / lookup / transfer)")
    w("")
    w("| P | approach | hit ratio (paper) | hit ratio (ours) | lookup (paper) | lookup (ours) | transfer (paper) | transfer (ours) |")
    w("|---|----------|------------------|------------------|----------------|---------------|------------------|-----------------|")
    for population in (2000, 3000, 4000, 5000):
        for protocol, label in (("squirrel", "Squirrel"), ("flower", "Flower-CDN")):
            paper = PAPER_TABLE2[population][protocol]
            data = load(protocol, population)
            if data is None:
                ours = ("—", "—", "—")
            else:
                ours = (
                    f"{data['hit_ratio']:.2f}",
                    f"{data['mean_lookup_latency_ms']:.0f} ms",
                    f"{data['mean_transfer_ms']:.0f} ms",
                )
            w(
                f"| {population} | {label} | {paper[0]:.2f} | {ours[0]} | "
                f"{paper[1]} ms | {ours[1]} | {paper[2]} ms | {ours[2]} |"
            )
    w("")
    squirrel5 = load("squirrel", 5000)
    flower5 = load("flower", 5000)
    if squirrel5 and flower5:
        lf = squirrel5["mean_lookup_latency_ms"] / flower5["mean_lookup_latency_ms"]
        tf = squirrel5["mean_transfer_ms"] / flower5["mean_transfer_ms"]
        w(
            f"Measured improvement factors at P=5000: lookup **{lf:.1f}x** "
            f"(paper: 12.6x), transfer **{tf:.1f}x** (paper: 2x). Shape holds: "
            "Flower-CDN wins every metric at every scale; its hit ratio and "
            "transfer distance improve monotonically with P; Squirrel's "
            "lookup latency grows with the ring size."
        )
    w("")

    # ------------------------------------------------------------- Figure 3
    w("## Figure 3 — hit ratio over time (P = 3000)")
    w("")
    flower3 = load("flower", 3000)
    squirrel3 = load("squirrel", 3000)
    if flower3 and squirrel3:
        w("| hour | Flower-CDN | Squirrel |")
        w("|------|------------|----------|")
        for (hour, f_ratio), (_, s_ratio) in list(
            zip(flower3["hit_ratio_curve"], squirrel3["hit_ratio_curve"])
        )[1::2]:
            w(f"| {hour:.0f} | {f_ratio:.3f} | {s_ratio:.3f} |")
        improvement = (
            (flower3["hit_ratio"] - squirrel3["hit_ratio"]) / squirrel3["hit_ratio"]
        )
        crossover = next(
            (
                f"hour {fh:.0f}"
                for (fh, fr), (_, sr) in zip(
                    flower3["hit_ratio_curve"], squirrel3["hit_ratio_curve"]
                )
                if fr > sr
            ),
            "not reached",
        )
        w("")
        w(
            f"Paper: Squirrel rises faster early, then stops improving under "
            f"churn; Flower-CDN overtakes it and the improvement \"reaches 40% "
            f"after 24 simulation hours\". Measured: same crossover shape "
            f"(crossover at {crossover}); final hit ratios "
            f"{flower3['hit_ratio']:.3f} vs {squirrel3['hit_ratio']:.3f} — a "
            f"**{improvement:.0%} relative improvement**."
        )
    w("")

    # ------------------------------------------------------------- Figure 4
    w("## Figure 4 — lookup latency distribution (P = 3000)")
    w("")
    if flower3 and squirrel3:
        hist_f = flower3.get("fig4_lookup_histogram", {})
        hist_s = squirrel3.get("fig4_lookup_histogram", {})
        if hist_f:
            w("| bucket | Flower-CDN | Squirrel |")
            w("|--------|------------|----------|")
            for bucket in hist_f:
                w(
                    f"| {bucket} ms | {hist_f[bucket]:.1%} | "
                    f"{hist_s.get(bucket, 0.0):.1%} |"
                )
        f150 = fraction_below(flower3["lookup_cdf"], 150.0)
        s1200 = 1 - fraction_below(squirrel3["lookup_cdf"], 1200.0)
        w("")
        w(
            f"Paper: \"66% of our queries are resolved within 150 ms while 75% "
            f"of Squirrel's queries take more than 1200 ms.\" Measured: "
            f"**{f150:.0%}** of Flower-CDN queries within 150 ms; "
            f"**{s1200:.0%}** of Squirrel queries beyond 1200 ms."
        )
    w("")

    # ------------------------------------------------------------- Figure 5
    w("## Figure 5 — transfer distance distribution (P = 3000)")
    w("")
    if flower3 and squirrel3:
        hist_f = flower3.get("fig5_transfer_histogram", {})
        hist_s = squirrel3.get("fig5_transfer_histogram", {})
        if hist_f:
            w("| bucket | Flower-CDN | Squirrel |")
            w("|--------|------------|----------|")
            for bucket in hist_f:
                w(
                    f"| {bucket} ms | {hist_f[bucket]:.1%} | "
                    f"{hist_s.get(bucket, 0.0):.1%} |"
                )
        f100 = fraction_below(flower3["transfer_cdf"], 100.0)
        s100 = fraction_below(squirrel3["transfer_cdf"], 100.0)
        w("")
        w(
            f"Paper: \"the percentage of queries served from a distance within "
            f"100 ms is 62% for Flower-CDN and 22% for Squirrel.\" Measured: "
            f"**{f100:.0%}** vs **{s100:.0%}** — locality awareness preserved "
            f"under the worst churn, as claimed."
        )
    w("")

    # ------------------------------------------------------------- the rest
    w("## Figures 1 & 2 — architecture (no measurements)")
    w("")
    w("Figure 1 (petals + D-ring) is exercised structurally by "
      "`tests/cdn/test_flower.py` and `examples/quickstart.py`; Figure 2 "
      "(PetalUp splitting petal(β,1) across d⁰ and d¹) by "
      "`tests/cdn/test_petalup.py` and `examples/petalup_scaling.py`.")
    w("")
    w("## Ablations (beyond the paper)")
    w("")
    w("`pytest benchmarks/bench_ablations.py --benchmark-only -s` regenerates: "
      "gossip-period trade-off, locality ablation (uniform topology), churn "
      "severity sweep (uptime 15–120 min), directory collaboration "
      "(section 3.2's optional feature), PetalUp load limits, and the "
      "Squirrel home-store strategy (`bench_baselines.py`). Tables land in "
      "`results/*.txt`.")
    w("")

    # ----------------------------------------------------------- provenance
    w("## Provenance")
    w("")
    w("| run | queries | arrivals | events | wall |")
    w("|-----|---------|----------|--------|------|")
    for population in (2000, 3000, 4000, 5000):
        for protocol in ("flower", "squirrel"):
            data = load(protocol, population)
            if data is None:
                continue
            w(
                f"| {protocol} P={population} | {data['queries']:,} | "
                f"{data['arrivals']:,} | {data['events_executed']:,} | "
                f"{data.get('wall_seconds', 0):.0f} s |"
            )
    w("")
    print("\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
