#!/usr/bin/env python
"""Run the paper-scale evaluation (Table 1 parameters, 24 simulated hours).

Produces one JSON file per (protocol, population) pair under ``results/``:
the Table 2 row metrics, the Figure 3 hit-ratio curve, and the Figure 4 / 5
latency and distance histograms at the paper's bucket edges.

Usage::

    python scripts/run_full_scale.py [--populations 3000,2000,4000,5000]
                                     [--seed 1] [--out results]

Expect tens of minutes of wall clock for the full sweep; populations are
processed in the given order so the P=3000 pair (which Figures 3-5 use)
lands first.
"""

import argparse
import json
import pathlib
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.experiments.results import ExperimentResult
from repro.metrics.distribution import (
    LOOKUP_LATENCY_EDGES,
    TRANSFER_DISTANCE_EDGES,
    Distribution,
)


def run_one(protocol: str, population: int, seed: int, out_dir: pathlib.Path) -> dict:
    config = ExperimentConfig.paper(population=population)
    started = time.time()
    world = build_world(protocol, config, seed=seed)
    world.run()
    metrics = world.system.metrics
    result = ExperimentResult.from_metrics(
        protocol=protocol,
        seed=seed,
        population=population,
        duration_hours=config.duration_hours,
        metrics=metrics,
        events_executed=world.sim.events_executed,
        messages_sent=world.network.messages_sent,
        arrivals=world.churn.arrivals,
        departures=world.churn.departures,
    )
    payload = result.to_dict()
    payload["wall_seconds"] = round(time.time() - started, 1)
    payload["fig4_lookup_histogram"] = Distribution(
        metrics.lookup_latencies()
    ).histogram(LOOKUP_LATENCY_EDGES)
    payload["fig5_transfer_histogram"] = Distribution(
        metrics.transfer_distances()
    ).histogram(TRANSFER_DISTANCE_EDGES)
    out_path = out_dir / f"full_{protocol}_{population}.json"
    out_path.write_text(json.dumps(payload, indent=2))
    print(
        f"[{time.strftime('%H:%M:%S')}] {protocol} P={population}: "
        f"hit={result.hit_ratio:.3f} lookup={result.mean_lookup_latency_ms:.0f}ms "
        f"transfer={result.mean_transfer_ms:.0f}ms "
        f"({payload['wall_seconds']}s wall) -> {out_path}",
        flush=True,
    )
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--populations", default="3000,2000,4000,5000")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="results")
    parser.add_argument("--protocols", default="flower,squirrel")
    args = parser.parse_args()
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    populations = [int(p) for p in args.populations.split(",")]
    protocols = args.protocols.split(",")
    for population in populations:
        for protocol in protocols:
            run_one(protocol, population, args.seed, out_dir)
    print("full-scale sweep complete", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
