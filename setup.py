"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so the package can be
installed in environments whose setuptools lacks PEP 660 editable-install
support (e.g. offline machines without the ``wheel`` package), via
``python setup.py develop`` or ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
