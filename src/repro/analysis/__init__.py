"""Result analysis: terminal plots, comparisons, multi-seed aggregation.

The paper reports line charts (Figure 3), bucketed bar charts (Figures 4
and 5) and a comparison table (Table 2).  This package renders all three
in plain text, codifies the paper's qualitative claims as checkable
*shape assertions*, and aggregates repeated runs across seeds:

- :mod:`repro.analysis.ascii` -- dependency-free terminal charts;
- :mod:`repro.analysis.compare` -- Flower-vs-Squirrel comparison reports
  and the shape checks the benchmark harness asserts;
- :mod:`repro.analysis.repetition` -- run-many-seeds helpers with
  mean / standard deviation / confidence intervals;
- :mod:`repro.analysis.export` -- CSV and Markdown exporters.
"""

from repro.analysis.ascii import bar_chart, line_chart
from repro.analysis.compare import ComparisonReport, ShapeCheck, shape_checks
from repro.analysis.export import (
    curve_to_csv,
    markdown_table,
    results_to_csv,
    results_to_markdown,
)
from repro.analysis.repetition import AggregateResult, aggregate, repeat_experiment

__all__ = [
    "line_chart",
    "bar_chart",
    "ComparisonReport",
    "ShapeCheck",
    "shape_checks",
    "AggregateResult",
    "aggregate",
    "repeat_experiment",
    "results_to_csv",
    "results_to_markdown",
    "curve_to_csv",
    "markdown_table",
]
