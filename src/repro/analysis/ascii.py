"""Dependency-free terminal charts.

Good enough to *read* the paper's figures in a terminal or a CI log:
multi-series line charts on a character grid (Figure 3) and labelled
horizontal bar charts (Figures 4 and 5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

#: Glyphs assigned to successive series of a line chart.
SERIES_GLYPHS = "*o+x@#"


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named (x, y) series on one character grid.

    Args:
        series: name -> [(x, y), ...]; all series share the axes.
        width/height: plot area size in characters.
        title / y_label / x_label: decorations.
    """
    if not series or all(not points for points in series.values()):
        raise ReproError("line_chart needs at least one non-empty series")
    if width < 10 or height < 4:
        raise ReproError("chart too small to draw")
    all_points = [p for points in series.values() for p in points]
    xs = [x for x, __ in all_points]
    ys = [y for __, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in points:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.3f} |"
        elif row_index == height - 1:
            label = f"{y_min:8.3f} |"
        else:
            label = " " * 9 + "|"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    left = f"{x_min:g}"
    right = f"{x_max:g}"
    padding = width - len(left) - len(right)
    lines.append(" " * 10 + left + " " * max(padding, 1) + right)
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def bar_chart(
    bars: Dict[str, float],
    width: int = 40,
    title: str = "",
    as_percent: bool = True,
) -> str:
    """Render a labelled horizontal bar chart.

    Args:
        bars: label -> value (fractions when *as_percent*).
        width: bar area width in characters.
        as_percent: format values as percentages.
    """
    if not bars:
        raise ReproError("bar_chart needs at least one bar")
    peak = max(bars.values()) or 1.0
    label_width = max(len(label) for label in bars)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in bars.items():
        length = int(round(value / peak * width)) if peak > 0 else 0
        rendered = f"{value:.1%}" if as_percent else f"{value:g}"
        lines.append(f"{label.rjust(label_width)}  {'#' * length} {rendered}")
    return "\n".join(lines)
