"""Result exporters: CSV and Markdown.

The JSON emitted by :class:`~repro.experiments.results.ExperimentResult`
is the machine format; these helpers produce the two formats humans paste
elsewhere -- CSV for spreadsheets/plotting tools and Markdown tables for
reports (EXPERIMENTS.md uses the same conventions).
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence

from repro.errors import ReproError
from repro.experiments.results import ExperimentResult

#: The scalar columns exported per run, in order.
RESULT_COLUMNS = (
    "protocol",
    "population",
    "seed",
    "duration_hours",
    "queries",
    "hit_ratio",
    "mean_lookup_latency_ms",
    "mean_transfer_ms",
    "arrivals",
    "departures",
    "messages_sent",
    "events_executed",
)


def results_to_csv(results: Iterable[ExperimentResult]) -> str:
    """One CSV row per run, columns per :data:`RESULT_COLUMNS`."""
    results = list(results)
    if not results:
        raise ReproError("nothing to export")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(RESULT_COLUMNS)
    for result in results:
        writer.writerow([getattr(result, column) for column in RESULT_COLUMNS])
    return buffer.getvalue()


def curve_to_csv(result: ExperimentResult) -> str:
    """The Figure-3-style hit-ratio curve of one run as CSV."""
    if not result.hit_ratio_curve:
        raise ReproError("run has no hit-ratio curve")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["hour", "cumulative_hit_ratio"])
    for hour, ratio in result.hit_ratio_curve:
        writer.writerow([hour, ratio])
    return buffer.getvalue()


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A GitHub-flavoured Markdown table."""
    if not headers:
        raise ReproError("markdown table needs headers")
    lines: List[str] = []
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for __ in headers) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def results_to_markdown(results: Iterable[ExperimentResult]) -> str:
    """A Markdown comparison table over several runs."""
    results = list(results)
    if not results:
        raise ReproError("nothing to export")
    rows = [
        [
            result.protocol,
            result.population,
            f"{result.hit_ratio:.3f}",
            f"{result.mean_lookup_latency_ms:.0f} ms",
            f"{result.mean_transfer_ms:.0f} ms",
            result.queries,
        ]
        for result in results
    ]
    return markdown_table(
        ["protocol", "P", "hit ratio", "lookup", "transfer", "queries"], rows
    )
