"""Flower-vs-baseline comparison reports and codified shape checks.

The paper's claims are *relative*: who wins, by what factor, where the
crossover falls.  :func:`shape_checks` turns each claim into a named,
machine-checkable predicate over a pair of results, so "does the
reproduction hold?" is one function call -- used by the benchmark harness
and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.results import ExperimentResult
from repro.metrics.report import render_table


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper, evaluated on measured data.

    Attributes:
        name: short identifier of the claim.
        claim: the paper's wording (paraphrased).
        passed: whether the measured pair of runs exhibits it.
        detail: the measured quantities behind the verdict.
    """

    name: str
    claim: str
    passed: bool
    detail: str


def _cdf_fraction_below(cdf: List[Tuple[float, float]], threshold: float) -> float:
    best = 0.0
    for value, fraction in cdf:
        if value <= threshold:
            best = fraction
    return best


def shape_checks(
    flower: ExperimentResult, squirrel: ExperimentResult
) -> List[ShapeCheck]:
    """Evaluate every figure/table claim on a (Flower, Squirrel) pair."""
    checks: List[ShapeCheck] = []

    early_f = flower.hit_ratio_curve[0][1] if flower.hit_ratio_curve else 0.0
    early_s = squirrel.hit_ratio_curve[0][1] if squirrel.hit_ratio_curve else 0.0
    checks.append(
        ShapeCheck(
            "fig3_squirrel_leads_early",
            "At the beginning, Squirrel surpasses Flower-CDN wrt. hit ratio",
            early_s > early_f,
            f"hour-1 hit ratio: squirrel={early_s:.3f}, flower={early_f:.3f}",
        )
    )
    checks.append(
        ShapeCheck(
            "fig3_flower_wins_finally",
            "Flower-CDN keeps improving and ends ahead of Squirrel",
            flower.hit_ratio > squirrel.hit_ratio,
            f"final hit ratio: flower={flower.hit_ratio:.3f}, "
            f"squirrel={squirrel.hit_ratio:.3f}",
        )
    )
    if len(flower.hit_ratio_curve) >= 4:
        mid = flower.hit_ratio_curve[len(flower.hit_ratio_curve) // 2][1]
        last = flower.hit_ratio_curve[-1][1]
        checks.append(
            ShapeCheck(
                "fig3_flower_keeps_climbing",
                "Flower-CDN keeps on improving despite failures",
                last >= mid,
                f"flower hit ratio mid-run={mid:.3f}, end={last:.3f}",
            )
        )

    f_fast = _cdf_fraction_below(flower.lookup_cdf, 150.0)
    s_slow = 1.0 - _cdf_fraction_below(squirrel.lookup_cdf, 1200.0)
    checks.append(
        ShapeCheck(
            "fig4_lookup_distributions",
            "Most Flower queries resolve within 150 ms while most Squirrel "
            "queries take more than 1200 ms",
            f_fast > 0.4 and s_slow > 0.4,
            f"flower <=150ms: {f_fast:.0%} (paper 66%); "
            f"squirrel >1200ms: {s_slow:.0%} (paper 75%)",
        )
    )

    f_near = _cdf_fraction_below(flower.transfer_cdf, 100.0)
    s_near = _cdf_fraction_below(squirrel.transfer_cdf, 100.0)
    checks.append(
        ShapeCheck(
            "fig5_transfer_distributions",
            "Far more Flower queries are served from within 100 ms",
            f_near > 1.5 * s_near,
            f"within 100ms: flower={f_near:.0%} (paper 62%), "
            f"squirrel={s_near:.0%} (paper 22%)",
        )
    )

    lookup_factor = squirrel.mean_lookup_latency_ms / max(
        flower.mean_lookup_latency_ms, 1e-9
    )
    transfer_factor = squirrel.mean_transfer_ms / max(flower.mean_transfer_ms, 1e-9)
    checks.append(
        ShapeCheck(
            "table2_lookup_factor",
            "Flower-CDN drastically reduces lookup latency (paper: up to 12.6x)",
            lookup_factor > 2.0,
            f"measured factor {lookup_factor:.1f}x",
        )
    )
    checks.append(
        ShapeCheck(
            "table2_transfer_factor",
            "Flower-CDN roughly halves the transfer distance (paper: ~2x)",
            transfer_factor > 1.3,
            f"measured factor {transfer_factor:.1f}x",
        )
    )
    return checks


class ComparisonReport:
    """Paper-style side-by-side of one Flower run and one Squirrel run."""

    def __init__(self, flower: ExperimentResult, squirrel: ExperimentResult) -> None:
        if flower.population != squirrel.population:
            raise ValueError(
                "comparison requires runs at the same population "
                f"({flower.population} vs {squirrel.population})"
            )
        self.flower = flower
        self.squirrel = squirrel
        self.checks = shape_checks(flower, squirrel)

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failed(self) -> List[ShapeCheck]:
        return [check for check in self.checks if not check.passed]

    def metric_table(self) -> str:
        rows = [
            [
                "hit ratio",
                f"{self.flower.hit_ratio:.3f}",
                f"{self.squirrel.hit_ratio:.3f}",
                f"{self.flower.hit_ratio / max(self.squirrel.hit_ratio, 1e-9):.2f}x",
            ],
            [
                "lookup latency",
                f"{self.flower.mean_lookup_latency_ms:.0f} ms",
                f"{self.squirrel.mean_lookup_latency_ms:.0f} ms",
                f"{self.squirrel.mean_lookup_latency_ms / max(self.flower.mean_lookup_latency_ms, 1e-9):.1f}x",
            ],
            [
                "transfer distance",
                f"{self.flower.mean_transfer_ms:.0f} ms",
                f"{self.squirrel.mean_transfer_ms:.0f} ms",
                f"{self.squirrel.mean_transfer_ms / max(self.flower.mean_transfer_ms, 1e-9):.1f}x",
            ],
        ]
        return render_table(
            ["metric", "Flower-CDN", "Squirrel", "advantage"],
            rows,
            title=f"P={self.flower.population}, "
            f"{self.flower.duration_hours:.0f} simulated hours",
        )

    def check_table(self) -> str:
        rows = [
            [check.name, "PASS" if check.passed else "FAIL", check.detail]
            for check in self.checks
        ]
        return render_table(
            ["claim", "verdict", "measured"], rows, title="paper shape checks"
        )

    def render(self) -> str:
        return self.metric_table() + "\n\n" + self.check_table()
