"""Multi-seed repetition and aggregation.

One simulation run is one sample; claims about protocols deserve error
bars.  :func:`repeat_experiment` runs the same configuration under several
seeds and :func:`aggregate` summarises any scalar metric with mean, sample
standard deviation and a t-based 95% confidence interval (computed
directly -- no SciPy dependency -- with the usual two-sided t quantiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_experiment

#: Two-sided 95% t quantiles by degrees of freedom (1..30), then normal.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_quantile_95(dof: int) -> float:
    """Two-sided 95% Student-t quantile for *dof* degrees of freedom."""
    if dof < 1:
        raise ReproError("need at least two samples for a confidence interval")
    return _T_95.get(dof, 1.960)


@dataclass(frozen=True)
class AggregateResult:
    """Mean / spread / CI of one scalar metric over repeated runs.

    Attributes:
        metric: name of the aggregated quantity.
        samples: the per-seed values.
        mean / std: sample mean and (n-1) standard deviation.
        ci95: half-width of the 95% confidence interval of the mean.
    """

    metric: str
    samples: tuple
    mean: float
    std: float
    ci95: float

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def __str__(self) -> str:
        return f"{self.metric}: {self.mean:.4g} +/- {self.ci95:.2g} (n={self.n})"


def aggregate(metric: str, samples: Sequence[float]) -> AggregateResult:
    """Summarise *samples* of one metric."""
    values = list(samples)
    if not values:
        raise ReproError("cannot aggregate zero samples")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return AggregateResult(metric, tuple(values), mean, 0.0, 0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    ci95 = t_quantile_95(n - 1) * std / math.sqrt(n)
    return AggregateResult(metric, tuple(values), mean, std, ci95)


def repeat_experiment(
    protocol: str,
    config: ExperimentConfig,
    seeds: Sequence[int],
) -> List[ExperimentResult]:
    """Run the same experiment under several seeds."""
    if not seeds:
        raise ReproError("need at least one seed")
    return [run_experiment(protocol, config, seed=seed) for seed in seeds]


def aggregate_metric(
    results: Sequence[ExperimentResult],
    metric: str = "hit_ratio",
    extract: Callable[[ExperimentResult], float] = None,
) -> AggregateResult:
    """Aggregate one scalar across runs.

    Args:
        results: repeated runs.
        metric: attribute name (used when *extract* is None) and label.
        extract: custom accessor, e.g. ``lambda r: r.outcome_counts["miss_failed"]``.
    """
    if extract is None:
        extract = lambda result: getattr(result, metric)
    return aggregate(metric, [extract(result) for result in results])
