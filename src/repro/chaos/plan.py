"""Declarative, seeded chaos plans.

A :class:`ChaosPlan` is a reproducible fault schedule: a phase timeline
plus the concrete fault specs (:mod:`repro.net.faults`) and churn surges
that implement each phase.  Plans come from two places:

- :func:`generate_plan` composes one *randomly* from a dedicated RNG
  stream seeded by ``chaos_seed`` -- the same ``(chaos_seed, horizon,
  knobs)`` always yields the same plan, independent of the simulation's
  master seed;
- :func:`ChaosPlan.from_dict` re-hydrates a plan from a reproducer
  bundle, so a dumped violation replays bit-for-bit.

Phase menu (weights scale with ``intensity``):

==================  =====================================================
``calm``            nothing injected; lets the auditor observe recovery
``churn_burst``     a surge of extra arrivals + a fractional mass failure
``partition``       one locality cut off, healing before the phase ends
``directory_wipe``  a mass failure restricted to directory peers
``latency_spike``   a multiplicative/additive latency window
``bursty_loss``     a Gilbert-Elliott loss window (at most one per plan)
``flash_crowd``     a surge of arrivals pinned to one hot website
``split_brain``     a locality partition with a directory wipe *inside*
                    the cut: the isolated petals elect provisional
                    directories that must reconcile with the surviving
                    ring registrants at the heal (section 5.3)
==================  =====================================================

Opt-in (``generate_plan(..., overload=True)``, off by default so existing
chaos seeds keep generating byte-identical plans):

==================      =================================================
``sustained_overload``  a long open-loop traffic plateau well above the
                        directories' service capacity, regionally
                        correlated; exercises the bounded admission queue
                        and replica-aware shedding (requires a config
                        with ``openloop_rate_qps > 0``)
``seeder_death``        kill the top-N uploaders mid-window
                        (``generate_plan(..., seeder_death=True)``);
                        exercises mid-transfer chunk failover and the
                        I9 transfer ledger (requires a config with
                        ``swarming=True``)
==================      =================================================
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.net.faults import (
    BurstyLossSpec,
    LatencySpikeSpec,
    MassFailureSpec,
    PartitionSpec,
)
from repro.sim.clock import minutes

#: Current on-disk schema of serialized plans / reproducer bundles.
PLAN_SCHEMA = 1


@dataclass(frozen=True)
class ChurnSurgeSpec:
    """A burst of extra arrivals on top of the baseline churn process.

    Attributes:
        start_ms / duration_ms: the surge window; arrivals are spread
            evenly across it.
        arrivals: how many extra identities are brought online.
        hot_website: if set, arriving identities are pinned to this
            website (a flash crowd); ``None`` keeps the uniform interest
            assignment (a plain churn burst).
        hot_interest_probability: fraction of surge arrivals that get the
            hot-website pin (ignored when ``hot_website`` is None).
    """

    start_ms: float
    duration_ms: float
    arrivals: int
    hot_website: Optional[int] = None
    hot_interest_probability: float = 0.8

    def __post_init__(self) -> None:
        if self.duration_ms <= 0 or self.arrivals < 1:
            raise ConfigError("surge needs a positive window and >= 1 arrival")
        if not 0.0 <= self.hot_interest_probability <= 1.0:
            raise ConfigError("hot_interest_probability must be in [0, 1]")


@dataclass(frozen=True)
class OverloadSurgeSpec:
    """A sustained open-loop overload window (chaos overload phases).

    The runner converts this into a
    :class:`~repro.workload.openloop.RegionalSurge` on the world's
    open-loop workload: arrivals ramp to ``peak_multiplier`` times the
    base rate over ``ramp_ms``, hold-and-decay with time constant
    ``decay_ms`` after the ramp, optionally pinned to one locality and
    one hot website.  Inert when the config runs no open-loop traffic.

    Attributes:
        start_ms / ramp_ms / peak_multiplier / decay_ms: surge shape.
        locality: locality the overload concentrates in (None = all).
        hot_website: website the overload targets (None = no bias).
    """

    start_ms: float
    ramp_ms: float
    peak_multiplier: float
    decay_ms: float
    locality: Optional[int] = None
    hot_website: Optional[int] = None

    def __post_init__(self) -> None:
        if self.peak_multiplier < 1.0:
            raise ConfigError("overload peak multiplier must be >= 1")
        if self.ramp_ms <= 0 or self.decay_ms <= 0:
            raise ConfigError("overload ramp and decay must be positive")


@dataclass(frozen=True)
class SeederDeathSpec:
    """Kill the top uploaders of the swarming plane mid-window.

    The runner ranks live peers by chunk payload bytes uploaded so far
    (``bytes_uploaded``) at ``at_ms`` and crashes the top ``count`` of
    them — mid-transfer, which is the point: every chunk they were
    uploading aborts and the downloaders must fail over per-chunk.
    Optionally restricted to uploaders of one hot website.  Inert when
    nothing has been uploaded (no swarming, or no traffic yet).

    Attributes:
        at_ms: strike time.
        count: how many top uploaders to crash.
        hot_website: if set, only peers interested in this website are
            candidates (the flash-crowd seeders).
    """

    at_ms: float
    count: int
    hot_website: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ConfigError("seeder death needs at_ms >= 0")
        if self.count < 1:
            raise ConfigError("seeder death needs count >= 1")


@dataclass(frozen=True)
class ChaosPhase:
    """One labelled segment of the plan's timeline (for humans and the
    auditor's context; the actual injection lives in the specs)."""

    kind: str
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ConfigError("phase must end after it starts")


#: spec-type registry for the JSON round trip.
_SPEC_TYPES = {
    "bursty_loss": BurstyLossSpec,
    "partition": PartitionSpec,
    "latency_spike": LatencySpikeSpec,
    "mass_failure": MassFailureSpec,
    "churn_surge": ChurnSurgeSpec,
    "overload_surge": OverloadSurgeSpec,
    "seeder_death": SeederDeathSpec,
    "chaos_phase": ChaosPhase,
}
_SPEC_NAMES = {cls: name for name, cls in _SPEC_TYPES.items()}


def spec_to_dict(spec: Any) -> Dict[str, Any]:
    """Serialize one frozen spec with a ``type`` tag."""
    name = _SPEC_NAMES.get(type(spec))
    if name is None:
        raise ConfigError(f"unserializable spec {spec!r}")
    data = asdict(spec)
    data["type"] = name
    return data


def spec_from_dict(data: Dict[str, Any]) -> Any:
    """Inverse of :func:`spec_to_dict`."""
    data = dict(data)
    name = data.pop("type", None)
    cls = _SPEC_TYPES.get(name)
    if cls is None:
        raise ConfigError(f"unknown spec type {name!r}")
    return cls(**data)


@dataclass(frozen=True)
class ChaosPlan:
    """A complete, reproducible chaos schedule.

    Attributes:
        name: human-readable label ("chaos-7-1.0", ...).
        chaos_seed: the seed :func:`generate_plan` used (carried for the
            reproducer bundle even though the plan itself is explicit).
        horizon_ms: intended experiment length.
        faults: the :mod:`repro.net.faults` specs to install.
        surges: extra-arrival bursts (churn bursts, flash crowds).
        overload_surges: sustained open-loop overload windows (installed
            on the world's open-loop workload; empty for classic plans).
        seeder_deaths: targeted top-uploader kills (swarming robustness;
            empty for classic plans).
        phases: the labelled timeline (emitted as ``chaos.phase`` events).
    """

    name: str
    chaos_seed: int
    horizon_ms: float
    faults: Tuple[Any, ...] = ()
    surges: Tuple[ChurnSurgeSpec, ...] = ()
    overload_surges: Tuple[OverloadSurgeSpec, ...] = ()
    seeder_deaths: Tuple[SeederDeathSpec, ...] = ()
    phases: Tuple[ChaosPhase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.horizon_ms <= 0:
            raise ConfigError("plan horizon must be positive")
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        if not isinstance(self.surges, tuple):
            object.__setattr__(self, "surges", tuple(self.surges))
        if not isinstance(self.overload_surges, tuple):
            object.__setattr__(
                self, "overload_surges", tuple(self.overload_surges)
            )
        if not isinstance(self.seeder_deaths, tuple):
            object.__setattr__(
                self, "seeder_deaths", tuple(self.seeder_deaths)
            )
        if not isinstance(self.phases, tuple):
            object.__setattr__(self, "phases", tuple(self.phases))

    # ------------------------------------------------------------ serialize
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema": PLAN_SCHEMA,
            "name": self.name,
            "chaos_seed": self.chaos_seed,
            "horizon_ms": self.horizon_ms,
            "faults": [spec_to_dict(s) for s in self.faults],
            "surges": [spec_to_dict(s) for s in self.surges],
            "phases": [spec_to_dict(p) for p in self.phases],
        }
        if self.overload_surges:
            # Only stamped when present, so classic plans serialize
            # byte-identically to the pre-overload schema.
            data["overload_surges"] = [
                spec_to_dict(s) for s in self.overload_surges
            ]
        if self.seeder_deaths:
            # Same optional-stamp discipline as overload_surges.
            data["seeder_deaths"] = [
                spec_to_dict(s) for s in self.seeder_deaths
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosPlan":
        schema = data.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ConfigError(f"unsupported plan schema {schema!r}")
        return cls(
            name=data["name"],
            chaos_seed=data["chaos_seed"],
            horizon_ms=data["horizon_ms"],
            faults=tuple(spec_from_dict(s) for s in data.get("faults", ())),
            surges=tuple(spec_from_dict(s) for s in data.get("surges", ())),
            overload_surges=tuple(
                spec_from_dict(s) for s in data.get("overload_surges", ())
            ),
            seeder_deaths=tuple(
                spec_from_dict(s) for s in data.get("seeder_deaths", ())
            ),
            phases=tuple(spec_from_dict(p) for p in data.get("phases", ())),
        )


# ---------------------------------------------------------------------------
# Randomized plan generation
# ---------------------------------------------------------------------------

#: phase kind -> base weight in the generator's menu.
_PHASE_WEIGHTS = (
    ("calm", 2.0),
    ("churn_burst", 2.0),
    ("partition", 2.0),
    ("directory_wipe", 1.0),
    ("latency_spike", 1.5),
    ("bursty_loss", 1.0),
    ("flash_crowd", 1.5),
    ("split_brain", 1.0),
)


def generate_plan(
    chaos_seed: int,
    horizon_ms: float,
    num_localities: int,
    num_websites: int,
    intensity: float = 1.0,
    population: int = 120,
    name: Optional[str] = None,
    overload: bool = False,
    seeder_death: bool = False,
) -> ChaosPlan:
    """Compose a randomized chaos plan from its own RNG stream.

    The generator walks the horizon after a warmup third, drawing phase
    kinds from a weighted menu and phase lengths from ranges scaled by
    *intensity* (1.0 = the default stress level; higher = longer, harsher
    phases).  Every partition heals before the horizon, and at most one
    bursty-loss window is generated (the controller keeps one Gilbert-
    Elliott chain at a time).

    ``overload=True`` adds ``sustained_overload`` to the menu and
    ``seeder_death=True`` adds ``seeder_death`` (module docstring); both
    are opt-in because extending the menu reshuffles every draw -- the
    default keeps historical ``chaos_seed`` values generating exactly the
    plans they always did.

    Determinism: the plan is a pure function of the arguments; the RNG is
    ``random.Random(f"chaos:{chaos_seed}")``, decoupled from every
    simulation stream.
    """
    if horizon_ms <= 0:
        raise ConfigError("horizon must be positive")
    if not 0.1 <= intensity <= 10.0:
        raise ConfigError("intensity must be in [0.1, 10]")
    rng = random.Random(f"chaos:{chaos_seed}")
    menu = _PHASE_WEIGHTS
    if overload:
        menu = menu + (("sustained_overload", 2.0),)
    if seeder_death:
        menu = menu + (("seeder_death", 2.0),)
    kinds = [k for k, _ in menu]
    weights = [w for _, w in menu]

    faults: List[Any] = []
    surges: List[ChurnSurgeSpec] = []
    overload_surges: List[OverloadSurgeSpec] = []
    seeder_deaths: List[SeederDeathSpec] = []
    phases: List[ChaosPhase] = []
    used_bursty = False

    # Leave the first chunk of the run fault-free so petals, gossip views
    # and directory indexes form before the abuse begins.
    warmup = max(minutes(20.0), 0.15 * horizon_ms)
    phases.append(ChaosPhase("calm", 0.0, warmup))
    cursor = warmup
    # Keep a calm tail so the auditor can watch the system reconverge.
    tail = max(minutes(15.0), 0.1 * horizon_ms)
    end_of_chaos = horizon_ms - tail

    while cursor < end_of_chaos:
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "bursty_loss" and used_bursty:
            kind = "calm"
        base = rng.uniform(minutes(10.0), minutes(30.0))
        duration = min(base * (0.7 + 0.6 * intensity), end_of_chaos - cursor)
        if duration < minutes(5.0):
            break
        start, end = cursor, cursor + duration

        if kind == "partition":
            heal = start + min(duration * rng.uniform(0.4, 0.8), duration)
            faults.append(
                PartitionSpec(
                    locality=rng.randrange(num_localities),
                    start_ms=start,
                    heal_ms=heal,
                )
            )
        elif kind == "churn_burst":
            surges.append(
                ChurnSurgeSpec(
                    start_ms=start,
                    duration_ms=duration * 0.5,
                    arrivals=max(2, int(0.1 * intensity * population)),
                )
            )
            faults.append(
                MassFailureSpec(
                    at_ms=start + duration * 0.6,
                    fraction=min(0.9, 0.15 * intensity),
                    locality=rng.randrange(num_localities)
                    if rng.random() < 0.5
                    else None,
                )
            )
        elif kind == "directory_wipe":
            faults.append(
                MassFailureSpec(
                    at_ms=start + duration * 0.3,
                    fraction=min(1.0, 0.5 + 0.25 * intensity),
                    directories_only=True,
                )
            )
        elif kind == "latency_spike":
            faults.append(
                LatencySpikeSpec(
                    start_ms=start,
                    end_ms=end,
                    multiplier=1.0 + 0.5 * intensity * rng.uniform(0.5, 1.5),
                    additive_ms=rng.uniform(0.0, 50.0 * intensity),
                    locality=rng.randrange(num_localities)
                    if rng.random() < 0.5
                    else None,
                )
            )
        elif kind == "bursty_loss":
            used_bursty = True
            faults.append(
                BurstyLossSpec(
                    p_good_to_bad=min(0.2, 0.02 * intensity),
                    p_bad_to_good=0.2,
                    loss_bad=min(1.0, 0.6 + 0.2 * intensity),
                    start_ms=start,
                    end_ms=end,
                )
            )
        elif kind == "split_brain":
            # The warm-failover torture test: cut one locality off, then
            # kill (most of) the directories inside the cut while it is
            # isolated.  The orphaned petals must claim provisional
            # directories that survive until the heal, then reconcile
            # (merge + demote) against whatever replacement won the ring
            # race.  The wipe fraction scales with intensity like every
            # other mass failure (total wipe from intensity 3 up).
            locality = rng.randrange(num_localities)
            heal = start + duration * rng.uniform(0.55, 0.85)
            faults.append(
                PartitionSpec(locality=locality, start_ms=start, heal_ms=heal)
            )
            faults.append(
                MassFailureSpec(
                    at_ms=start + (heal - start) * 0.3,
                    fraction=min(1.0, 0.7 + 0.1 * intensity),
                    locality=locality,
                    directories_only=True,
                )
            )
        elif kind == "flash_crowd":
            surges.append(
                ChurnSurgeSpec(
                    start_ms=start,
                    duration_ms=duration * 0.4,
                    arrivals=max(3, int(0.15 * intensity * population)),
                    hot_website=rng.randrange(num_websites),
                    hot_interest_probability=0.8,
                )
            )
        elif kind == "sustained_overload":
            # A long plateau, not a blip: the ramp is a small fraction of
            # the phase and the decay constant stretches past its end, so
            # the admission queues stay saturated for most of the window.
            overload_surges.append(
                OverloadSurgeSpec(
                    start_ms=start,
                    ramp_ms=max(minutes(1.0), duration * 0.15),
                    peak_multiplier=1.0 + intensity * rng.uniform(1.5, 3.0),
                    decay_ms=duration * 0.5,
                    locality=rng.randrange(num_localities)
                    if rng.random() < 0.5
                    else None,
                    hot_website=rng.randrange(num_websites)
                    if rng.random() < 0.5
                    else None,
                )
            )
        elif kind == "seeder_death":
            # Strike once the window's transfers are underway: the runner
            # ranks live peers by bytes uploaded *at the strike instant*,
            # so the kill lands on whoever actually carried the swarm.
            seeder_deaths.append(
                SeederDeathSpec(
                    at_ms=start + duration * rng.uniform(0.3, 0.6),
                    count=max(1, int(0.02 * intensity * population)),
                    hot_website=rng.randrange(num_websites)
                    if rng.random() < 0.5
                    else None,
                )
            )
        # "calm": inject nothing; the phase label alone documents the gap.

        phases.append(ChaosPhase(kind, start, end))
        cursor = end + rng.uniform(minutes(2.0), minutes(10.0))

    phases.append(ChaosPhase("calm", min(end_of_chaos, horizon_ms), horizon_ms))
    return ChaosPlan(
        name=name or f"chaos-{chaos_seed}-i{intensity:g}",
        chaos_seed=chaos_seed,
        horizon_ms=horizon_ms,
        faults=tuple(faults),
        surges=tuple(surges),
        overload_surges=tuple(overload_surges),
        seeder_deaths=tuple(seeder_deaths),
        phases=tuple(phases),
    )
