"""Chaos experiment runner: plans in, violations (hopefully none) out.

:func:`run_chaos` executes one :class:`~repro.chaos.plan.ChaosPlan`
against a standard experiment world with the
:class:`~repro.chaos.auditor.InvariantAuditor` online: the plan's fault
specs merge into the config's ``fault_schedule`` (same
:class:`~repro.net.faults.FaultController` path as any other fault run),
its churn surges are driven through the churn model's admission hook, and
its phase timeline is emitted as ``chaos.phase`` trace events so the
auditor -- and any reproducer bundle -- can contextualise violations.

Reproducibility contract: a chaos run is a pure function of
``(protocol, config, plan, seed)``.  :func:`replay_bundle` re-executes a
dumped reproducer bundle bit-for-bit -- same faults, same surges, same
RNG streams -- so a violation found in CI replays locally from one JSON
file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cdn.flower.stats import collect_swarm_stats
from repro.chaos.auditor import AuditorConfig, InvariantAuditor, Violation
from repro.chaos.plan import (
    ChaosPlan,
    ChurnSurgeSpec,
    OverloadSurgeSpec,
    SeederDeathSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.errors import CDNError, ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import World, build_world
from repro.sim.clock import HOUR


# ---------------------------------------------------------------------------
# Config (de)serialization -- reproducer bundles carry the full config
# ---------------------------------------------------------------------------


def config_to_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """Serialize an :class:`ExperimentConfig` to plain JSON data.

    ``fault_schedule`` entries go through the spec registry of
    :mod:`repro.chaos.plan` (type-tagged dicts); everything else is a
    scalar already.
    """
    data: Dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if f.name == "fault_schedule":
            value = [spec_to_dict(spec) for spec in value]
        data[f.name] = value
    return data


def config_from_dict(data: Dict[str, Any]) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict` (unknown keys are rejected so a
    bundle from a different schema fails loudly, not subtly)."""
    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    extra = set(data) - known
    if extra:
        raise ConfigError(f"unknown config fields in bundle: {sorted(extra)}")
    kwargs = dict(data)
    if "fault_schedule" in kwargs:
        kwargs["fault_schedule"] = tuple(
            spec_from_dict(spec) for spec in kwargs["fault_schedule"]
        )
    return ExperimentConfig(**kwargs)


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class ChaosRunReport:
    """Everything one chaos run produced.

    Attributes:
        protocol / seed / plan: what ran.
        result: the usual experiment summary (metrics include any
            ``failed_*`` query outcomes the chaos caused).
        violations: auditor findings, empty on a clean run.
        stats: the auditor's counters (audits, ledger traffic, ...).
        reacquire_times_ms: observed directory-slot recovery times.
        bundle_paths: reproducer bundles written for the violations.
        fingerprint: SHA-256 of the full trace stream when requested
            (the determinism handle: same inputs => same fingerprint).
    """

    protocol: str
    seed: int
    plan: ChaosPlan
    result: ExperimentResult
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    reacquire_times_ms: List[float] = field(default_factory=list)
    bundle_paths: List[str] = field(default_factory=list)
    fingerprint: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the auditor observed no invariant violation."""
        return not self.violations

    def summary_line(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        search = ""
        issued = self.stats.get("searches", 0)
        if issued:
            answered = issued - self.stats.get("searches_unanswered", 0)
            search = (
                f"search={answered}/{issued} "
                f"stale_max={self.stats.get('search_stale_max_ms', 0)}ms "
            )
        shed = ""
        shed_count = self.stats.get("queries_shed", 0)
        if shed_count:
            shed = (
                f"shed={shed_count} "
                f"members_shed={self.stats.get('members_shed', 0)} "
            )
        swarm = ""
        transfers = self.stats.get("transfers_opened", 0)
        if transfers:
            swarm = (
                f"transfers={self.stats.get('transfers_closed', 0)}/{transfers} "
                f"degraded={self.stats.get('transfers_degraded', 0)} "
            )
        return (
            f"[{self.protocol}] plan={self.plan.name} seed={self.seed} "
            f"audits={self.stats.get('audits', 0)} "
            f"queries={self.stats.get('queries_opened', 0)} "
            f"{search}"
            f"{shed}"
            f"{swarm}"
            f"hit_ratio={self.result.hit_ratio:.4f} -> {status}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "seed": self.seed,
            "plan": self.plan.to_dict(),
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "stats": dict(self.stats),
            "reacquire_times_ms": list(self.reacquire_times_ms),
            "bundle_paths": list(self.bundle_paths),
            "fingerprint": self.fingerprint,
            "result": self.result.to_dict(),
        }


# ---------------------------------------------------------------------------
# Surge / phase wiring
# ---------------------------------------------------------------------------


def _install_surges(world: World, surges: Tuple[ChurnSurgeSpec, ...]) -> None:
    """Schedule every surge arrival on the world's simulator.

    Arrivals are spread evenly across each surge window (jitter would
    need another RNG draw per arrival for no modelling benefit); the hot
    -website pin draws from the dedicated ``chaos`` stream so surge
    randomness never perturbs the churn or protocol streams.
    """
    sim = world.sim
    churn = world.churn
    system = world.system
    rng = sim.rng("chaos")

    def admit(hot_website: Optional[int], probability: float) -> None:
        hook = None
        if hot_website is not None and rng.random() < probability:

            def hook(identity: int) -> None:
                try:
                    system.assign_website(identity, hot_website)
                except CDNError:
                    # The identity already holds a (different) interest
                    # from an earlier session; a real flash crowd also
                    # sweeps up returning peers with other interests.
                    pass

        churn._admit_arrival(pre_arrival=hook)

    for surge in surges:
        step = surge.duration_ms / surge.arrivals
        for i in range(surge.arrivals):
            at = surge.start_ms + (i + 0.5) * step
            sim.schedule(
                max(at - sim.now, 0.0),
                admit,
                surge.hot_website,
                surge.hot_interest_probability,
            )


def _install_overload_surges(
    world: World, specs: Tuple[OverloadSurgeSpec, ...]
) -> None:
    """Register the plan's sustained-overload windows with the world's
    open-loop workload.

    The specs convert directly into
    :class:`~repro.workload.openloop.RegionalSurge` shapes (absolute
    simulation-time windows, so no scheduling is needed).  A config
    without open-loop traffic has no workload to overload; the surges are
    then inert, which keeps replaying old bundles against odd configs
    from crashing mid-flight.
    """
    if not specs or world.openloop is None:
        return
    from repro.workload.openloop import RegionalSurge

    for spec in specs:
        world.openloop.add_surge(
            RegionalSurge(
                start_ms=spec.start_ms,
                ramp_ms=spec.ramp_ms,
                peak_multiplier=spec.peak_multiplier,
                decay_ms=spec.decay_ms,
                locality=-1 if spec.locality is None else spec.locality,
                hot_website=-1 if spec.hot_website is None else spec.hot_website,
            )
        )


def _install_seeder_deaths(
    world: World, specs: Tuple[SeederDeathSpec, ...]
) -> None:
    """Schedule the plan's targeted top-uploader kills.

    At each strike instant the live peers are ranked by
    ``bytes_uploaded`` (descending, address-ascending tiebreak -- the
    ranking must be deterministic) and the top ``count`` are crashed.
    ``hot_website`` restricts the cull to peers interested in that
    website.  A world where nobody has uploaded anything (swarming off,
    or no transfer started yet) has no seeders to kill; the strike is
    then inert, mirroring how overload surges are inert without an
    open-loop workload.
    """
    if not specs:
        return
    system = world.system

    def strike(spec: SeederDeathSpec) -> None:
        candidates = [
            peer
            for peer in system.peers.values()
            if peer.alive
            and getattr(peer, "bytes_uploaded", 0) > 0
            and (spec.hot_website is None or peer.website == spec.hot_website)
        ]
        candidates.sort(key=lambda p: (-p.bytes_uploaded, p.address))
        for peer in candidates[: spec.count]:
            world.sim.emit(
                "chaos.seeder_death",
                peer=peer.address,
                bytes_uploaded=peer.bytes_uploaded,
            )
            peer.crash()

    for spec in specs:
        world.sim.schedule(max(spec.at_ms - world.sim.now, 0.0), strike, spec)


def _install_phase_markers(world: World, plan: ChaosPlan) -> None:
    """Emit ``chaos.phase`` at each phase start (auditor context + human
    -readable timeline in traces and reproducer bundles)."""
    sim = world.sim

    def mark(kind: str, start_ms: float, end_ms: float) -> None:
        sim.emit("chaos.phase", phase=kind, start_ms=start_ms, end_ms=end_ms)

    for phase in plan.phases:
        sim.schedule(
            max(phase.start_ms - sim.now, 0.0),
            mark,
            phase.kind,
            phase.start_ms,
            phase.end_ms,
        )


def _install_fingerprint(world: World):
    """Chain every trace event into a SHA-256; returns the finisher.

    Uses the exact fingerprint recipe of the determinism regression
    suite so chaos-replay equality means the same thing everywhere.
    """
    h = hashlib.sha256()

    def on_event(event, _h=h) -> None:
        _h.update(
            repr(
                (round(event.time, 9), event.kind, sorted(event.payload.items()))
            ).encode()
        )

    world.sim.trace.subscribe_all(on_event)
    return h.hexdigest


# ---------------------------------------------------------------------------
# Running and replaying
# ---------------------------------------------------------------------------


def run_chaos(
    protocol: str,
    config: ExperimentConfig,
    plan: ChaosPlan,
    seed: int = 0,
    results_dir: Optional[str] = "results/chaos",
    halt_on_violation: bool = False,
    collect_fingerprint: bool = False,
    auditor_config: Optional[AuditorConfig] = None,
    merge_faults: bool = True,
) -> ChaosRunReport:
    """Run *plan* against *protocol* with the invariant auditor online.

    Args:
        protocol: "flower", "petalup", "squirrel" or "squirrel-home".
        config: base experiment config; its duration is overridden by the
            plan's horizon and (when ``merge_faults``) the plan's fault
            specs are appended to its ``fault_schedule``.
        seed: master simulation seed (the chaos plan carries its own).
        results_dir: where violation reproducer bundles land (None
            disables dumping).
        halt_on_violation: stop the simulation at the first violation.
        collect_fingerprint: also hash the full trace stream (used by the
            replay-determinism tests; costs one firehose subscriber).
        auditor_config: override the auditor's bounds.
        merge_faults: append ``plan.faults`` to the config's schedule.
            :func:`replay_bundle` passes False because a bundle's config
            already carries the merged schedule.

    Returns:
        A :class:`ChaosRunReport`; ``report.ok`` is the pass/fail bit.
    """
    cfg = config.replace(
        duration_hours=plan.horizon_ms / HOUR,
        fault_schedule=(
            tuple(config.fault_schedule) + tuple(plan.faults)
            if merge_faults
            else tuple(config.fault_schedule)
        ),
    )
    world = build_world(protocol, cfg, seed)
    finish_fingerprint = (
        _install_fingerprint(world) if collect_fingerprint else None
    )
    auditor = InvariantAuditor(
        world,
        plan=plan,
        config=auditor_config,
        results_dir=results_dir,
        halt_on_violation=halt_on_violation,
    )
    _install_phase_markers(world, plan)
    _install_surges(world, plan.surges)
    _install_overload_surges(world, plan.overload_surges)
    _install_seeder_deaths(world, plan.seeder_deaths)
    world.run()
    auditor.finalize()
    system = world.system
    extra: Dict[str, Any] = {
        "online_peers": system.online_peers,
        "message_counts": dict(world.network.kind_counts),
        "drop_counts": dict(world.network.drop_counts),
        "chaos_plan": plan.name,
        "chaos_violations": len(auditor.violations),
        "auditor_stats": dict(auditor.stats),
    }
    if world.faults is not None:
        extra["fault_stats"] = dict(world.faults.stats)
    if world.openloop is not None:
        extra["openloop"] = dict(world.openloop.stats)
        stats = getattr(system, "stats", None)
        if stats is not None:
            extra["overload"] = stats().overload.to_dict()
    if getattr(system, "sizes", None) is not None:
        extra["swarm"] = collect_swarm_stats(system).to_dict()
    result = ExperimentResult.from_metrics(
        protocol=protocol,
        seed=seed,
        population=cfg.population,
        duration_hours=cfg.duration_hours,
        metrics=system.metrics,
        events_executed=world.sim.events_executed,
        messages_sent=world.network.messages_sent,
        arrivals=world.churn.arrivals,
        departures=world.churn.departures,
        extra=extra,
    )
    return ChaosRunReport(
        protocol=protocol,
        seed=seed,
        plan=plan,
        result=result,
        violations=list(auditor.violations),
        stats=dict(auditor.stats),
        reacquire_times_ms=list(auditor.reacquire_times_ms),
        bundle_paths=list(auditor.bundle_paths),
        fingerprint=finish_fingerprint() if finish_fingerprint else None,
    )


def load_bundle(path: str) -> Dict[str, Any]:
    """Read one reproducer bundle back from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    for key in ("protocol", "seed", "config"):
        if key not in bundle:
            raise ConfigError(f"reproducer bundle missing {key!r}: {path}")
    return bundle


def replay_bundle(
    bundle_or_path,
    results_dir: Optional[str] = None,
    halt_on_violation: bool = False,
    collect_fingerprint: bool = False,
    auditor_config: Optional[AuditorConfig] = None,
) -> ChaosRunReport:
    """Re-execute a dumped reproducer bundle bit-for-bit.

    The bundle's config already contains the plan's merged fault
    schedule, so the plan is replayed for its surges and phase timeline
    only (``merge_faults=False``).  On an unchanged build the replay
    re-triggers the recorded violation deterministically; on a fixed
    build it comes back clean -- either way the report says so.
    """
    bundle = (
        load_bundle(bundle_or_path)
        if isinstance(bundle_or_path, str)
        else bundle_or_path
    )
    config = config_from_dict(bundle["config"])
    plan_data = bundle.get("plan")
    if plan_data is not None:
        plan = ChaosPlan.from_dict(plan_data)
    else:
        # Ad-hoc auditor run without a plan: synthesize an empty one so
        # the replay still has a horizon and a name.
        plan = ChaosPlan(
            name="adhoc-replay",
            chaos_seed=bundle["seed"],
            horizon_ms=config.duration_ms,
        )
    return run_chaos(
        bundle["protocol"],
        config,
        plan,
        seed=bundle["seed"],
        results_dir=results_dir,
        halt_on_violation=halt_on_violation,
        collect_fingerprint=collect_fingerprint,
        auditor_config=auditor_config,
        merge_faults=False,
    )
