"""Online invariant auditor: Jepsen-style checking under injected chaos.

The auditor verifies the system-wide safety/liveness properties catalogued
in ``docs/PROTOCOLS.md`` section 9 while a chaos plan fires:

I1 **query ledger** -- every issued query terminates *exactly once* with a
   terminal outcome: no lost queries (an entry open beyond the grace
   bound), no double resolutions (a ``cdn.query_done`` without a matching
   open entry).
I2 **slot uniqueness** -- at most one *live* directory peer per
   (website, locality, instance) D-ring slot.
I3 **bounded reacquire** -- a killed directory slot of an active website
   is re-acquired within a bound, as long as live interested peers exist
   and no partition is interfering.
I4 **index validity** -- directory-index entries only reference petal
   members that are alive and hold the object, modulo a staleness bound
   derived from the keepalive/expiry parameters.
I5 **ring convergence** -- after faults quiesce, the D-ring successor
   chain over active members reconverges to one cycle covering them all.
I6 **view hygiene** -- gossip partial views never contain the owner
   itself, and dead contacts are evicted within a bound derived from the
   gossip period.
I7 **search availability** -- with replicated posting lists
   (``replication_k > 0``) keyword searches keep getting answered through
   directory wipes and partitions (no petal accumulates a streak of
   unanswered searches), and replica-served results never exceed the
   declared staleness bound of
   :func:`repro.cdn.flower.search.staleness_bound_ms`.
I8 **shed accounting** -- a ``flower.query_shed`` for a keyed member
   query must refer to a query that is actually *open* in the ledger (a
   shed reported after the query already terminated would mean the
   directory rejected work nobody was waiting for), and I1 then
   guarantees the shed query still terminates exactly once -- shedding
   under overload never loses a query.
I9 **transfer ledger** -- every chunked swarm transfer terminates
   *exactly once* (``swarm.done`` with completed / degraded / failed),
   with consistent byte accounting: each chunk lands at most once per
   generation (a ``swarm.restart`` discards progress and opens a new
   generation), the bytes reported at close equal the sum of the
   generation's ``swarm.chunk_done`` bytes, and a completed or degraded
   close accounts for the full object size.  Seeder death mid-transfer
   may degrade a transfer; it must never lose or double-count one.
I10 **hint-hop discipline** -- with queue-aware redirect hints on, every
   ``flower.hint_hop`` belongs to a query that is *open* in the ledger,
   names a target that is neither the hopping peer nor the home instance
   it is hopping away from, claims a strictly smaller queue depth than
   home's, and happens at most once per open query -- so a stale hint can
   cost one extra RPC but never a routing loop, and I1 then guarantees
   the hinted query still terminates exactly once (a hop onto a crashed
   or demoted target must resolve as an accounted miss, never vanish).

Zero cost when absent: all observation happens through subscriber-gated
trace kinds plus an explicitly scheduled audit tick -- a run without an
auditor schedules nothing and subscribes to nothing, so the hot path pays
exactly what it paid before this module existed (verified by
``bench_engine.py --check``).

On violation a minimal reproducer bundle -- seed, plan, the last-N trace
window, an offending-state snapshot -- is written to ``results/chaos/``;
:func:`repro.chaos.runner.replay_bundle` re-runs it deterministically.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.cdn.flower.search import staleness_bound_ms
from repro.cdn.flower.system import FlowerSystem
from repro.sim.clock import minutes
from repro.sim.trace import TraceEvent

#: Trace kinds the auditor subscribes to (ledger + context window).
WATCHED_KINDS = (
    "cdn.query",
    "chord.join",
    "chord.shutdown",
    "cdn.query_done",
    "cdn.query_stale",
    "chaos.phase",
    "chaos.violation",
    "churn.arrival",
    "churn.departure",
    "fault.mass_failure",
    "fault.partition_start",
    "fault.partition_heal",
    "fault.past_due_reschedule",
    "flower.directory_active",
    "flower.directory_demoted",
    "flower.directory_provisional",
    "flower.hint_hop",
    "flower.key_adopted",
    "flower.key_rebalanced",
    "flower.member_expired",
    "flower.members_shed",
    "flower.query_shed",
    "flower.search_done",
    "chaos.seeder_death",
    "swarm.start",
    "swarm.chunk_done",
    "swarm.chunk_retry",
    "swarm.degraded",
    "swarm.restart",
    "swarm.done",
)


@dataclass(frozen=True)
class AuditorConfig:
    """Knobs of the online auditor (bounds in ms unless noted).

    The staleness/convergence bounds are *factors* over the protocol's own
    periods (keepalive, gossip, audit), so the auditor adapts to whatever
    parameterization the experiment uses instead of hard-coding paper-scale
    timings.
    """

    audit_period_ms: float = minutes(10.0)
    ledger_grace_ms: float = minutes(5.0)
    reacquire_bound_ms: float = minutes(45.0)
    index_staleness_factor: float = 4.0
    view_staleness_factor: float = 12.0
    ring_strikes: int = 3
    duplicate_strikes: int = 2
    search_strikes: int = 3
    trace_window: int = 256
    max_violations: int = 25


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    kind: str
    time: float
    subject: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "time": self.time,
            "subject": self.subject,
            "details": _json_safe(self.details),
        }


def _json_safe(value: Any) -> Any:
    """Recursively coerce a payload into JSON-serializable primitives."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class InvariantAuditor:
    """Continuously audits one world; dumps reproducer bundles on violation.

    Args:
        world: an assembled :class:`repro.experiments.runner.World` (any
            object with ``sim``, ``system``, ``network``, ``config``,
            ``faults`` works).
        plan: the :class:`~repro.chaos.plan.ChaosPlan` being executed, if
            any -- carried into reproducer bundles.
        config: auditor bounds (defaults are derived-friendly).
        results_dir: where reproducer bundles are written (created lazily;
            ``None`` disables bundle dumping).
        halt_on_violation: stop the simulation at the first violation
            (useful to keep the offending state inspectable).
    """

    def __init__(
        self,
        world,
        plan=None,
        config: Optional[AuditorConfig] = None,
        results_dir: Optional[str] = "results/chaos",
        halt_on_violation: bool = False,
    ) -> None:
        self.world = world
        self.sim = world.sim
        self.system = world.system
        self.network = world.network
        self.plan = plan
        self.config = config or AuditorConfig()
        self.results_dir = results_dir
        self.halt_on_violation = halt_on_violation
        self.flower: Optional[FlowerSystem] = (
            world.system if isinstance(world.system, FlowerSystem) else None
        )
        params = world.system.params
        cfg = self.config
        #: derived bounds (protocol-period aware; see AuditorConfig).
        self.index_staleness_ms = cfg.index_staleness_factor * max(
            params.keepalive_period_ms, params.gossip_period_ms
        )
        self.view_staleness_ms = cfg.view_staleness_factor * params.gossip_period_ms
        self.reacquire_bound_ms = cfg.reacquire_bound_ms + 2.0 * (
            params.keepalive_period_ms + params.query_interval_ms
        )
        #: I7: declared replica-staleness bound of search results (search
        #: module owns the formula; the client enforces it at failover
        #: time, the auditor re-checks every served result against it).
        self.search_staleness_bound_ms = staleness_bound_ms(params)
        self.violations: List[Violation] = []
        self.stats: Dict[str, int] = {
            "audits": 0,
            "queries_opened": 0,
            "queries_closed": 0,
            "stale_completions": 0,
            "reacquired_slots": 0,
            "searches": 0,
            "searches_unanswered": 0,
            "search_replica_served": 0,
            "search_stale_max_ms": 0,
            "queries_shed": 0,
            "members_shed": 0,
            "hint_hops": 0,
            "hint_dead_targets": 0,
            "keys_rebalanced": 0,
            "keys_adopted": 0,
            "transfers_opened": 0,
            "transfers_closed": 0,
            "transfers_degraded": 0,
            "transfers_failed": 0,
            "transfer_restarts": 0,
            "chunk_retries": 0,
        }
        #: reacquire durations (ms) of observed directory slot recoveries.
        self.reacquire_times_ms: List[float] = []
        self.bundle_paths: List[str] = []
        # --- ledger ---
        self._open: Dict[Tuple[int, tuple], float] = {}
        self._leak_reported: Set[Tuple[int, tuple]] = set()
        #: every (peer, key) that ever terminated -- lets I8 tell a shed
        #: racing a just-closed query apart from a fabricated one.
        self._ever_closed: Set[Tuple[int, tuple]] = set()
        # --- I10: hint-hop discipline --- (peer, key) -> opened_at of the
        #: ledger entry that already spent its single hint hop.
        self._hint_hopped: Dict[Tuple[int, tuple], float] = {}
        # --- I9: transfer ledger --- (peer, key) -> open transfer state:
        #: opened_at, declared size/chunk count, and the current
        #: generation's completed chunks + byte total.
        self._transfers: Dict[Tuple[int, tuple], Dict[str, Any]] = {}
        self._transfer_leaks: Set[Tuple[int, tuple]] = set()
        # --- trace window (context for reproducer bundles) ---
        self._window: Deque[TraceEvent] = deque(maxlen=cfg.trace_window)
        # --- fault context ---
        self._last_disturbance_ms = 0.0
        self._partition_active = False
        #: last ring-membership change (join/shutdown): a node needs a
        #: couple of stabilization rounds to be stitched into every
        #: successor pointer, so convergence is only owed once membership
        #: has quiesced.
        self._last_ring_change_ms = float("-inf")
        #: declared fault windows (loss, latency, partitions) from the
        #: config's schedule: convergence is only owed outside them.  The
        #: event subscriptions catch point faults (mass failures) and
        #: partition edges; windowed faults never emit edge events, so
        #: they are read off the schedule instead.
        self._disturbance_windows: List[Tuple[float, float]] = []
        for spec in getattr(world.config, "fault_schedule", ()):
            start = getattr(spec, "start_ms", None)
            end = getattr(spec, "end_ms", getattr(spec, "heal_ms", None))
            if start is not None and end is not None:
                self._disturbance_windows.append((float(start), float(end)))
        # --- staleness / convergence trackers ---
        self._first_seen: Dict[tuple, float] = {}
        self._vacant_since: Dict[tuple, float] = {}
        self._dup_streak: Dict[tuple, int] = {}
        #: I7: consecutive unanswered searches per petal (website, locality).
        self._search_streak: Dict[tuple, int] = {}
        self._ring_strike = 0
        self._reported: Set[tuple] = set()
        self._finalized = False
        self._saturated = False
        self._subscribe()
        self.sim.schedule(cfg.audit_period_ms, self._audit_tick)

    # ------------------------------------------------------------ subscribing
    def _subscribe(self) -> None:
        trace = self.sim.trace
        handlers = {
            "cdn.query": self._on_query,
            "cdn.query_done": self._on_query_done,
            "cdn.query_stale": self._on_query_stale,
            "fault.partition_start": self._on_partition_edge,
            "fault.partition_heal": self._on_partition_edge,
            "fault.mass_failure": self._on_disturbance,
            "flower.directory_active": self._on_directory_active,
            "flower.hint_hop": self._on_hint_hop,
            "flower.key_adopted": self._on_key_adopted,
            "flower.key_rebalanced": self._on_key_rebalanced,
            "flower.members_shed": self._on_members_shed,
            "flower.query_shed": self._on_query_shed,
            "flower.search_done": self._on_search_done,
            "chord.join": self._on_ring_change,
            "chord.shutdown": self._on_ring_change,
            "swarm.start": self._on_swarm_start,
            "swarm.chunk_done": self._on_swarm_chunk_done,
            "swarm.chunk_retry": self._on_swarm_chunk_retry,
            "swarm.restart": self._on_swarm_restart,
            "swarm.done": self._on_swarm_done,
        }
        for kind in WATCHED_KINDS:
            specific = handlers.get(kind)
            if specific is not None:
                trace.subscribe(kind, self._windowed(specific))
            else:
                trace.subscribe(kind, self._window.append)

    def _windowed(self, handler):
        window = self._window

        def wrapped(event: TraceEvent) -> None:
            window.append(event)
            handler(event)

        return wrapped

    # ------------------------------------------------------- ledger handlers
    def _on_query(self, event: TraceEvent) -> None:
        key = (event.payload["peer"], tuple(event.payload["key"]))
        self.stats["queries_opened"] += 1
        if key in self._open:
            # A second issue while the first is open would make the done
            # events ambiguous; the query process never does this.
            self._violation(
                "query_reopened",
                subject=key,
                details={"first_opened_ms": self._open[key]},
            )
        self._open[key] = event.time

    def _on_query_done(self, event: TraceEvent) -> None:
        key = (event.payload["peer"], tuple(event.payload["key"]))
        if self._open.pop(key, None) is None:
            self._violation(
                "query_double_resolved",
                subject=key,
                details={"outcome": event.payload.get("outcome")},
            )
            return
        self._leak_reported.discard(key)
        self._ever_closed.add(key)
        self._hint_hopped.pop(key, None)
        self.stats["queries_closed"] += 1

    # ------------------------------------------------ I8: shed accounting
    def _on_query_shed(self, event: TraceEvent) -> None:
        self.stats["queries_shed"] += 1
        raw_key = event.payload.get("key")
        if raw_key is None:
            return  # register-only scan shed: no query ledger entry owed
        key = (event.payload["client"], tuple(raw_key))
        if key not in self._open and key not in self._ever_closed:
            # The directory shed a keyed query its client never issued:
            # fabricated work.  A shed for a *recently closed* entry is
            # tolerated (a retried request can arrive after its client
            # timed out and failed over); closure of open sheds is I1's
            # job either way.
            self._violation(
                "shed_unaccounted",
                subject=key,
                details={
                    "directory": event.payload.get("directory"),
                    "depth": event.payload.get("depth"),
                },
            )

    def _on_members_shed(self, event: TraceEvent) -> None:
        self.stats["members_shed"] += int(event.payload.get("count", 0))

    # --------------------------------------------- I10: hint-hop discipline
    def _on_hint_hop(self, event: TraceEvent) -> None:
        self.stats["hint_hops"] += 1
        payload = event.payload
        peer = payload["peer"]
        key = (peer, tuple(payload["key"]))
        target = payload["to"]
        home = payload["frm"]
        opened_at = self._open.get(key)
        if opened_at is None:
            # A hop for a query the ledger does not know: the client is
            # spending RPCs on work nobody is waiting for.
            self._violation(
                "hint_hop_unaccounted",
                subject=key,
                details={"frm": home, "to": target},
            )
            return
        if target == home or target == peer:
            # Hopping back onto the instance we are escaping (or onto
            # ourselves) is the seed of a routing loop.
            self._violation(
                "hint_hop_loop",
                subject=key,
                details={"frm": home, "to": target},
            )
        if payload["depth_to"] >= payload["depth_from"]:
            # The whole point of the hop is a strictly less-loaded target;
            # an equal-or-deeper claim means the pre-route filter broke.
            self._violation(
                "hint_hop_not_less_loaded",
                subject=key,
                details={
                    "to": target,
                    "depth_from": payload["depth_from"],
                    "depth_to": payload["depth_to"],
                },
            )
        if self._hint_hopped.get(key) == opened_at:
            # One hop per open query: every fallback path (home retry,
            # post-shed redirect, origin server) is hop-free, so a second
            # hop on the same ledger entry is a loop in the making.
            self._violation(
                "hint_hop_repeated",
                subject=key,
                details={"frm": home, "to": target},
            )
        else:
            self._hint_hopped[key] = opened_at
        # A hop onto a dead or demoted target is legitimate (hints are
        # allowed to go stale) -- the query must then resolve as an
        # accounted miss, which I1 enforces.  Count it for the report.
        network = self.network
        if not network.is_alive(target):
            self.stats["hint_dead_targets"] += 1

    def _on_key_rebalanced(self, event: TraceEvent) -> None:
        self.stats["keys_rebalanced"] += 1

    def _on_key_adopted(self, event: TraceEvent) -> None:
        self.stats["keys_adopted"] += 1

    # ------------------------------------------------ I9: transfer ledger
    def _on_swarm_start(self, event: TraceEvent) -> None:
        key = (event.payload["peer"], tuple(event.payload["key"]))
        self.stats["transfers_opened"] += 1
        if key in self._transfers:
            # A superseding query aborts (and closes) the old transfer
            # *before* registering the new one, so an open entry here
            # means a transfer was opened twice without a close between.
            self._violation(
                "transfer_reopened",
                subject=key,
                details={"first_opened_ms": self._transfers[key]["opened_at"]},
            )
        self._transfers[key] = {
            "opened_at": event.time,
            "size": int(event.payload["size"]),
            "chunk_count": int(event.payload["chunks"]),
            "chunks": set(),
            "bytes": 0,
        }

    def _on_swarm_chunk_done(self, event: TraceEvent) -> None:
        key = (event.payload["peer"], tuple(event.payload["key"]))
        entry = self._transfers.get(key)
        if entry is None:
            self._violation(
                "chunk_without_transfer",
                subject=key,
                details={"chunk": event.payload.get("chunk")},
            )
            return
        chunk = event.payload["chunk"]
        if chunk in entry["chunks"]:
            # The same chunk landing twice in one generation would
            # double-count bytes (stale-callback suppression failed).
            self._violation(
                "chunk_double_counted",
                subject=key,
                details={"chunk": chunk, "source": event.payload.get("source")},
            )
            return
        entry["chunks"].add(chunk)
        entry["bytes"] += int(event.payload["bytes"])

    def _on_swarm_chunk_retry(self, event: TraceEvent) -> None:
        self.stats["chunk_retries"] += 1

    def _on_swarm_restart(self, event: TraceEvent) -> None:
        self.stats["transfer_restarts"] += 1
        key = (event.payload["peer"], tuple(event.payload["key"]))
        entry = self._transfers.get(key)
        if entry is not None:
            # Cold-mode restart-from-zero: progress discarded, so the
            # ledger opens a fresh generation with empty accounting.
            entry["chunks"] = set()
            entry["bytes"] = 0

    def _on_swarm_done(self, event: TraceEvent) -> None:
        key = (event.payload["peer"], tuple(event.payload["key"]))
        entry = self._transfers.pop(key, None)
        if entry is None:
            self._violation(
                "transfer_double_closed",
                subject=key,
                details={"outcome": event.payload.get("outcome")},
            )
            return
        self._transfer_leaks.discard(key)
        self.stats["transfers_closed"] += 1
        outcome = event.payload["outcome"]
        reported = int(event.payload["bytes"]) + int(event.payload["origin_bytes"])
        details = {
            "outcome": outcome,
            "reported_bytes": reported,
            "ledger_bytes": entry["bytes"],
            "size": entry["size"],
            "chunks_done": len(entry["chunks"]),
            "chunk_count": entry["chunk_count"],
        }
        if outcome == "degraded":
            self.stats["transfers_degraded"] += 1
        if outcome == "failed":
            self.stats["transfers_failed"] += 1
            # A failed close (downloader crash, superseded query, origin
            # unreachable) may be partial, but what *was* reported must
            # match what the ledger saw this generation.
            if reported != entry["bytes"]:
                self._violation(
                    "transfer_bytes_inconsistent", subject=key, details=details
                )
            return
        if outcome not in ("completed", "degraded"):
            self._violation("transfer_bad_outcome", subject=key, details=details)
            return
        # A successful close must account for the whole object: every
        # chunk exactly once, bytes summing to the declared size.
        if (
            reported != entry["bytes"]
            or entry["bytes"] != entry["size"]
            or len(entry["chunks"]) != entry["chunk_count"]
        ):
            self._violation(
                "transfer_bytes_inconsistent", subject=key, details=details
            )

    def _on_query_stale(self, event: TraceEvent) -> None:
        # Informational: a suppressed stale completion is the ledger
        # working as intended (the query was already crash-finalized).
        self.stats["stale_completions"] += 1

    # ------------------------------------------------------- fault handlers
    def _on_partition_edge(self, event: TraceEvent) -> None:
        self._last_disturbance_ms = event.time
        faults = getattr(self.world, "faults", None)
        self._partition_active = (
            faults is not None and faults.partition_active(event.time)
        )

    def _on_disturbance(self, event: TraceEvent) -> None:
        self._last_disturbance_ms = event.time

    def _on_ring_change(self, event: TraceEvent) -> None:
        self._last_ring_change_ms = event.time

    def _on_directory_active(self, event: TraceEvent) -> None:
        slot = (
            event.payload["website"],
            event.payload["locality"],
            event.payload["instance"],
        )
        since = self._vacant_since.pop(slot, None)
        if since is not None:
            self.stats["reacquired_slots"] += 1
            self.reacquire_times_ms.append(event.time - since)

    # ------------------------------------------------- I7: search plane
    def _on_search_done(self, event: TraceEvent) -> None:
        payload = event.payload
        source = payload["source"]
        if source == "unregistered":
            return  # never joined a petal: no availability owed yet
        self.stats["searches"] += 1
        petal = (payload["website"], payload["locality"])
        staleness = float(payload.get("staleness_ms", 0.0))
        if source == "replica":
            self.stats["search_replica_served"] += 1
            rounded = int(round(staleness))
            if rounded > self.stats["search_stale_max_ms"]:
                self.stats["search_stale_max_ms"] = rounded
            if (
                staleness > self.search_staleness_bound_ms
                and ("search_stale", petal) not in self._reported
            ):
                # Holds at every k: the failover client must refuse
                # replica answers older than the declared bound.
                self._reported.add(("search_stale", petal))
                self._violation(
                    "search_stale_beyond_bound",
                    subject=petal,
                    details={
                        "peer": payload["peer"],
                        "keyword": payload.get("keyword"),
                        "staleness_ms": staleness,
                        "bound_ms": self.search_staleness_bound_ms,
                    },
                )
        if source != "none":
            self._search_streak.pop(petal, None)
            return
        self.stats["searches_unanswered"] += 1
        if self.system.params.replication_k <= 0:
            # Without replicas an outage through a directory wipe is the
            # expected baseline (the cold arm of the availability A/B),
            # not a violation.
            return
        streak = self._search_streak.get(petal, 0) + 1
        self._search_streak[petal] = streak
        strikes = self.config.search_strikes
        if self._partition_active or self._in_disturbance_window(event.time, 0.0):
            # Inside a declared disturbance the first probe or two may
            # race the takeover; only a sustained streak is a violation.
            strikes *= 2
        if streak >= strikes and ("search", petal) not in self._reported:
            self._reported.add(("search", petal))
            self._violation(
                "search_unavailable",
                subject=petal,
                details={
                    "consecutive_unanswered": streak,
                    "strikes": strikes,
                    "replication_k": self.system.params.replication_k,
                },
            )

    # ----------------------------------------------------------- audit tick
    def _audit_tick(self) -> None:
        if self._finalized or self._saturated:
            return
        cfg = self.config
        now = self.sim.now
        self.stats["audits"] += 1
        faults = getattr(self.world, "faults", None)
        self._partition_active = (
            faults is not None and faults.partition_active(now)
        )
        if self._partition_active:
            self._last_disturbance_ms = now
        self._audit_ledger(now, horizon_reached=False)
        if self.flower is not None:
            self._audit_slots(now)
            self._audit_indexes(now)
            self._audit_ring(now)
            self._audit_views(now)
        if not self._saturated:
            self.sim.schedule(cfg.audit_period_ms, self._audit_tick)

    def finalize(self) -> List[Violation]:
        """Close the ledger at the horizon; return all violations."""
        if not self._finalized:
            self._finalized = True
            self._audit_ledger(self.sim.now, horizon_reached=True)
        return self.violations

    # -------------------------------------------------------- I1: the ledger
    def _audit_ledger(self, now: float, horizon_reached: bool) -> None:
        grace = self.config.ledger_grace_ms
        for key, opened in list(self._open.items()):
            if key in self._leak_reported:
                continue
            if now - opened > grace:
                self._leak_reported.add(key)
                self._violation(
                    "query_leaked",
                    subject=key,
                    details={
                        "opened_ms": opened,
                        "age_ms": now - opened,
                        "at_horizon": horizon_reached,
                    },
                )
        # --- I9: a transfer open beyond the same grace bound is leaked
        # (its query would leak too, but the transfer ledger names the
        # subsystem that lost it).
        for key, entry in list(self._transfers.items()):
            if key in self._transfer_leaks:
                continue
            if now - entry["opened_at"] > grace:
                self._transfer_leaks.add(key)
                self._violation(
                    "transfer_leaked",
                    subject=key,
                    details={
                        "opened_ms": entry["opened_at"],
                        "age_ms": now - entry["opened_at"],
                        "chunks_done": len(entry["chunks"]),
                        "chunk_count": entry["chunk_count"],
                        "at_horizon": horizon_reached,
                    },
                )

    # ------------------------------------------- I2 + I3: directory slots
    def _live_slot_holders(self) -> Dict[tuple, List[int]]:
        holders: Dict[tuple, List[int]] = {}
        for peer in self.flower.peers.values():
            role = peer.directory
            if role is None or not peer.alive:
                continue
            slot = (role.website, role.locality, role.instance)
            holders.setdefault(slot, []).append(peer.address)
        return holders

    def _audit_slots(self, now: float) -> None:
        cfg = self.config
        holders = self._live_slot_holders()
        # --- I2: at most one live directory per slot (strike-based to
        # tolerate the instant of a handoff/claim race mid-settling) ---
        disturbed = self._partition_active or self._in_disturbance_window(now, 0.0)
        if disturbed:
            # A partition legitimately splits a slot: a provisional claimant
            # inside the cut coexists with the registered holder outside it
            # until the heal lets the reconcile/demote protocol run.  Reset
            # the streaks so the strike clock starts at the heal.
            self._dup_streak.clear()
        for slot, addresses in holders.items():
            if len(addresses) > 1:
                if disturbed:
                    continue
                streak = self._dup_streak.get(slot, 0) + 1
                self._dup_streak[slot] = streak
                if streak >= cfg.duplicate_strikes:
                    self._violation(
                        "duplicate_directory",
                        subject=slot,
                        details={"holders": sorted(addresses), "audits": streak},
                    )
            else:
                self._dup_streak.pop(slot, None)
        for slot in list(self._dup_streak):
            if slot not in holders:
                del self._dup_streak[slot]
        # --- I3: bounded reacquire of instance-0 slots of active websites ---
        system = self.flower
        if self._partition_active or self._in_disturbance_window(now, 0.0):
            # A partition (or a declared loss/latency window) legitimately
            # stalls both detection and rejoin; restart every vacancy
            # clock at the current time.
            for slot in self._vacant_since:
                self._vacant_since[slot] = now
        for website, locality, _pos in system.key_service.all_positions(0):
            if not system.catalog.is_active(website):
                continue
            slot = (website, locality, 0)
            if slot in holders:
                self._vacant_since.pop(slot, None)
                continue
            if not self._has_claimants(website, locality):
                # Nobody is left to claim or query this slot; vacancy is
                # expected until churn delivers a new interested peer.
                self._vacant_since.pop(slot, None)
                continue
            since = self._vacant_since.setdefault(slot, now)
            if (
                now - since > self.reacquire_bound_ms
                and ("reacquire", slot) not in self._reported
            ):
                self._reported.add(("reacquire", slot))
                self._violation(
                    "directory_not_reacquired",
                    subject=slot,
                    details={
                        "vacant_since_ms": since,
                        "vacant_for_ms": now - since,
                        "bound_ms": self.reacquire_bound_ms,
                    },
                )

    def _has_claimants(self, website: int, locality: int) -> bool:
        for peer in self.flower.peers.values():
            if (
                peer.alive
                and peer.website == website
                and peer.locality == locality
                and (peer.stream is None or not peer.stream.exhausted)
            ):
                return True
        return False

    # --------------------------------------------------- I4: index validity
    def _audit_indexes(self, now: float) -> None:
        problems: Dict[tuple, Dict[str, Any]] = {}
        network = self.network
        for peer in self.flower.peers.values():
            role = peer.directory
            if role is None or not peer.alive:
                continue
            for member, keys in role.member_keys.items():
                node = network.node(member)
                if not node.alive:
                    problems[("dead_member", role.position_id, member)] = {
                        "directory": peer.address,
                    }
                    continue
                store = getattr(node, "store", None)
                if store is None:
                    continue
                missing = [key for key in keys if key not in store]
                if missing:
                    problems[("unheld_keys", role.position_id, member)] = {
                        "directory": peer.address,
                        "missing": missing[:5],
                        "missing_count": len(missing),
                    }
        self._check_persistent(
            problems,
            bound_ms=self.index_staleness_ms,
            now=now,
            violation_kind="stale_index_entry",
            namespace="index",
        )

    # ------------------------------------------------ I5: ring convergence
    def _in_disturbance_window(self, now: float, settle: float) -> bool:
        """Is *now* inside (or within *settle* of the end of) any declared
        fault window from the schedule?"""
        return any(
            start <= now < end + settle
            for start, end in self._disturbance_windows
        )

    def _audit_ring(self, now: float) -> None:
        cfg = self.config
        # Convergence is only owed once faults have quiesced for a while.
        settle = 2.0 * cfg.audit_period_ms
        # A join/shutdown seconds before the audit legitimately leaves the
        # newcomer outside the predecessor's successor pointer until the
        # next stabilization round or two; give membership changes that
        # long before owing a perfect cycle.
        ring_settle = 2.0 * self.flower.params.dring.maintenance_period_ms
        if (
            self._partition_active
            or now - self._last_disturbance_ms < settle
            or now - self._last_ring_change_ms < ring_settle
            or self._in_disturbance_window(now, settle)
        ):
            self._ring_strike = 0
            return
        active = self.flower.ring.active_members()
        if len(active) < 2 or self._ring_converged(active):
            self._ring_strike = 0
            return
        self._ring_strike += 1
        if self._ring_strike >= cfg.ring_strikes and "ring" not in self._reported:
            self._reported.add("ring")
            self._violation(
                "ring_not_converged",
                subject="dring",
                details={
                    "active_members": len(active),
                    "consecutive_audits": self._ring_strike,
                },
            )

    @staticmethod
    def _ring_converged(active) -> bool:
        """Do the successor pointers over active members form one cycle?"""
        by_id = {node.node_id: node for node in active}
        start = active[0]
        visited = set()
        current = start
        for _ in range(len(active)):
            succ = current.successor
            if succ is None:
                return False
            nxt = by_id.get(succ.id)
            if nxt is None:  # successor points outside the active set
                return False
            visited.add(nxt.node_id)
            current = nxt
            if current is start and len(visited) < len(active):
                return False  # cycle closed early: ring is split
        return visited == set(by_id)

    # --------------------------------------------------- I6: view hygiene
    def _audit_views(self, now: float) -> None:
        problems: Dict[tuple, Dict[str, Any]] = {}
        network = self.network
        for peer in self.flower.peers.values():
            if not peer.alive or peer.is_directory:
                # Directory peers leave the gossip loops; their frozen
                # legacy views only answer early post-takeover queries.
                continue
            view = peer.view
            if peer.address in view:
                self._violation(
                    "self_in_view",
                    subject=peer.address,
                    details={"view": view.addresses()},
                )
                continue
            for contact in view.contacts():
                if not network.is_alive(contact.address):
                    problems[("dead_contact", peer.address, contact.address)] = {
                        "age": contact.age,
                    }
        self._check_persistent(
            problems,
            bound_ms=self.view_staleness_ms,
            now=now,
            violation_kind="dead_view_contact",
            namespace="view",
        )

    # ------------------------------------------------- staleness machinery
    def _check_persistent(
        self,
        problems: Dict[tuple, Dict[str, Any]],
        bound_ms: float,
        now: float,
        violation_kind: str,
        namespace: str,
    ) -> None:
        """First-seen tracking: a problem must *persist* past its staleness
        bound before it is a violation (transient inconsistency is how the
        protocols are designed to work)."""
        first_seen = self._first_seen
        for key in list(first_seen):
            if key[0] == namespace and key[1] not in problems:
                del first_seen[key]
        for key, details in problems.items():
            tracked = (namespace, key)
            since = first_seen.setdefault(tracked, now)
            if (
                now - since > bound_ms
                and (violation_kind, key) not in self._reported
            ):
                self._reported.add((violation_kind, key))
                self._violation(
                    violation_kind,
                    subject=key,
                    details={
                        **details,
                        "stale_since_ms": since,
                        "stale_for_ms": now - since,
                        "bound_ms": bound_ms,
                    },
                )

    # --------------------------------------------------------- violations
    def _violation(self, kind: str, subject: Any, details: Dict[str, Any]) -> None:
        if self._saturated:
            return
        violation = Violation(
            kind=kind,
            time=self.sim.now,
            subject=str(subject),
            details=_json_safe(details),
        )
        self.violations.append(violation)
        self.sim.emit("chaos.violation", violation=kind, subject=str(subject))
        path = self._dump_bundle(violation)
        if path is not None:
            self.bundle_paths.append(path)
        if len(self.violations) >= self.config.max_violations:
            self._saturated = True
        if self.halt_on_violation:
            self.sim.stop()

    # ------------------------------------------------- reproducer bundles
    def _dump_bundle(self, violation: Violation) -> Optional[str]:
        if self.results_dir is None:
            return None
        from repro.chaos.plan import PLAN_SCHEMA
        from repro.chaos.runner import config_to_dict

        os.makedirs(self.results_dir, exist_ok=True)
        bundle = {
            "schema": PLAN_SCHEMA,
            "protocol": self.system.name,
            "seed": self.sim.seed,
            "config": config_to_dict(self.world.config),
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "violation": violation.to_dict(),
            "violation_index": len(self.violations) - 1,
            "stats": dict(self.stats),
            "trace_window": [
                {
                    "time": event.time,
                    "kind": event.kind,
                    "payload": _json_safe(event.payload),
                }
                for event in self._window
            ],
            "state": _json_safe(self._state_snapshot()),
        }
        name = (
            f"{self.plan.name if self.plan is not None else 'adhoc'}"
            f"-{self.system.name}-seed{self.sim.seed}"
            f"-{violation.kind}-{len(self.violations) - 1}.json"
        )
        path = os.path.join(self.results_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True)
        return path

    def _state_snapshot(self) -> Dict[str, Any]:
        """The offending-state summary embedded in a reproducer bundle."""
        snapshot: Dict[str, Any] = {
            "now_ms": self.sim.now,
            "open_queries": len(self._open),
            "open_transfers": len(self._transfers),
            "online_peers": self.system.online_peers,
            "partition_active": self._partition_active,
        }
        if self.flower is not None:
            holders = self._live_slot_holders()
            snapshot["directory_slots"] = {
                repr(slot): addresses for slot, addresses in sorted(holders.items())
            }
            snapshot["ring_active"] = len(self.flower.ring.active_members())
            snapshot["vacant_slots"] = {
                repr(slot): since
                for slot, since in sorted(self._vacant_since.items())
            }
        return snapshot
