"""Chaos scenario engine + online invariant auditor.

Jepsen-style correctness checking for the Flower-CDN / PetalUp-CDN
simulation: :mod:`repro.chaos.plan` composes randomized, seeded fault
schedules into declarative :class:`ChaosPlan` objects;
:mod:`repro.chaos.auditor` continuously verifies system-wide safety and
liveness properties while those faults fire (see ``docs/PROTOCOLS.md``
section 9 for the invariant catalogue); :mod:`repro.chaos.runner` wires
both into a standard experiment world and dumps minimal reproducer
bundles to ``results/chaos/`` on violation.
"""

from repro.chaos.auditor import AuditorConfig, InvariantAuditor, Violation
from repro.chaos.plan import (
    ChaosPhase,
    ChaosPlan,
    ChurnSurgeSpec,
    generate_plan,
)
from repro.chaos.runner import ChaosRunReport, load_bundle, replay_bundle, run_chaos

__all__ = [
    "AuditorConfig",
    "ChaosPhase",
    "ChaosPlan",
    "ChaosRunReport",
    "ChurnSurgeSpec",
    "InvariantAuditor",
    "Violation",
    "generate_plan",
    "load_bundle",
    "replay_bundle",
    "run_chaos",
]
