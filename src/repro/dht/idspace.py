"""m-bit circular identifier space arithmetic.

All Chord correctness hinges on getting modular interval membership right,
including full-circle wrap-around and the degenerate ``a == b`` case, so the
logic lives here in one place with exhaustive property tests.
"""

from __future__ import annotations

import hashlib

from repro.errors import DHTError
from repro.types import ChordId


class IdSpace:
    """The identifier circle of size ``2**bits``."""

    def __init__(self, bits: int = 32) -> None:
        if not 1 <= bits <= 160:
            raise DHTError(f"bits must be in [1, 160] (got {bits})")
        self.bits = bits
        self.size = 1 << bits

    def contains(self, value: int) -> bool:
        """True if *value* is a valid identifier."""
        return 0 <= value < self.size

    def hash_value(self, key: str) -> ChordId:
        """Consistent hash of an arbitrary string key onto the circle."""
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        return int.from_bytes(digest, "big") % self.size

    def add(self, a: ChordId, delta: int) -> ChordId:
        """``(a + delta) mod 2**bits`` (delta may be negative)."""
        return (a + delta) % self.size

    def finger_start(self, node_id: ChordId, index: int) -> ChordId:
        """Start of finger *index* (0-based): ``node + 2**index``."""
        if not 0 <= index < self.bits:
            raise DHTError(f"finger index {index} outside [0, {self.bits})")
        return (node_id + (1 << index)) % self.size

    def distance(self, a: ChordId, b: ChordId) -> int:
        """Clockwise distance travelled going from *a* to *b*."""
        return (b - a) % self.size

    def in_open(self, x: ChordId, a: ChordId, b: ChordId) -> bool:
        """x in (a, b) going clockwise.

        When ``a == b`` the interval is the whole circle minus the endpoint,
        which is the convention Chord's proofs rely on (a single-node ring is
        its own successor for every other key).
        """
        if a == b:
            return x != a
        if a < b:
            return a < x < b
        return x > a or x < b

    def in_half_open_right(self, x: ChordId, a: ChordId, b: ChordId) -> bool:
        """x in (a, b] going clockwise (successor test)."""
        if a == b:
            return True  # single node owns the whole circle
        return self.in_open(x, a, b) or x == b

    def in_half_open_left(self, x: ChordId, a: ChordId, b: ChordId) -> bool:
        """x in [a, b) going clockwise."""
        if a == b:
            return True
        return self.in_open(x, a, b) or x == a
