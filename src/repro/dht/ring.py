"""Ring-wide Chord configuration, bootstrap service, and warm start.

:class:`ChordRing` is the per-overlay singleton that nodes share.  It plays
three roles:

1. **Parameters** -- identifier space and protocol knobs (:class:`RingParams`).
2. **Bootstrap service** -- a registry of currently joined members, standing
   in for the out-of-band mechanism every deployed DHT relies on (well-known
   hosts, a website handing out member addresses, ...).  Only *bootstrap
   discovery* uses it; routing always goes through the Chord protocol.
3. **Warm start** -- building a fully stabilized ring instantly.  The paper's
   experiments begin from a formed D-ring of 600 directory peers
   (section 6.1); simulating 600 sequential joins would only add noise.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import DHTError
from repro.dht.idspace import IdSpace
from repro.sim.clock import seconds
from repro.types import Address, ChordId


@dataclass(frozen=True)
class RingParams:
    """Protocol knobs shared by every node of one Chord overlay.

    Attributes:
        bits: identifier-space width m (ring size 2**m).
        successor_list_size: r successors kept for failure resilience;
            the ring survives any r-1 simultaneous adjacent failures.
        maintenance_period_ms: period of the combined stabilization tick
            (stabilize + notify + one finger repair + predecessor check).
        maintenance_jitter: relative jitter applied to the period so nodes
            do not tick in lock-step.
        lookup_max_probes: hard cap on probes per lookup (loop guard).
        lookup_max_timeouts: give up after this many dead hops in one lookup.
        rpc_timeout_ms: failure-detection timeout for Chord RPCs; must
            exceed the worst round trip.
        lookup_mode: ``"recursive"`` (default -- the query is forwarded
            hop by hop, one one-way link latency per hop, as PeerSim-style
            Chord simulations route) or ``"iterative"`` (the querier probes
            each hop itself with per-hop failure detection -- twice the
            latency, but robust to in-route failures without retries).
        recursive_timeout_ms: end-to-end retry timeout of one recursive
            routing attempt (a forwarded message that hits a dead hop is
            simply lost; the origin retries after this long).
        recursive_retries: recursive routing attempts before giving up.
        probe_retries: per-hop retry budget of iterative lookup probes
            (``NetworkNode.retrying_rpc``); 0 restores the seed's
            single-shot behaviour where one lost probe condemns the hop.
        retry_backoff_ms: base backoff of those per-hop retries (doubled
            per attempt, jittered, capped).
    """

    bits: int = 32
    successor_list_size: int = 8
    maintenance_period_ms: float = seconds(30)
    maintenance_jitter: float = 0.1
    lookup_max_probes: int = 64
    lookup_max_timeouts: int = 8
    rpc_timeout_ms: float = 1200.0
    lookup_mode: str = "recursive"
    recursive_timeout_ms: float = 4000.0
    recursive_retries: int = 2
    probe_retries: int = 1
    retry_backoff_ms: float = 300.0

    def __post_init__(self) -> None:
        if self.successor_list_size < 1:
            raise DHTError("successor_list_size must be >= 1")
        if self.lookup_max_probes < 1 or self.lookup_max_timeouts < 0:
            raise DHTError("invalid lookup limits")
        if self.lookup_mode not in ("recursive", "iterative"):
            raise DHTError(f"unknown lookup mode {self.lookup_mode!r}")
        if self.probe_retries < 0:
            raise DHTError("probe_retries must be >= 0")


class ChordRing:
    """Shared state of one Chord overlay (see module docstring)."""

    def __init__(self, params: Optional[RingParams] = None) -> None:
        self.params = params or RingParams()
        self.space = IdSpace(self.params.bits)
        self._members: Dict[ChordId, "ChordNode"] = {}
        # Sorted-membership cache: rebuilt lazily after any register /
        # deregister, so repeated ``members()`` / ``active_members()`` /
        # ``successor_of()`` calls between membership changes are O(n) copies
        # (or O(log n) bisects) instead of O(n log n) re-sorts.
        self._sorted_ids: Optional[List[ChordId]] = None
        self._sorted_nodes: Optional[List["ChordNode"]] = None

    # ------------------------------------------------------------ membership
    def _invalidate_sorted(self) -> None:
        self._sorted_ids = None
        self._sorted_nodes = None

    def _ensure_sorted(self) -> None:
        if self._sorted_ids is None:
            self._sorted_ids = sorted(self._members)
            members = self._members
            self._sorted_nodes = [members[i] for i in self._sorted_ids]

    def register(self, node: "ChordNode") -> None:
        """Record *node* as a joined, routable member (bootstrap registry)."""
        current = self._members.get(node.node_id)
        if current is not None and current is not node and current.is_active:
            raise DHTError(
                f"id {node.node_id} already registered by an active node"
            )
        if current is not node:
            self._members[node.node_id] = node
            self._invalidate_sorted()

    def try_register(self, node: "ChordNode") -> bool:
        """Register if the identifier is free (or its holder is dead).

        Join races where two candidates for the same identifier slip past
        each other's notify checks (their lookups saw different ring states)
        are settled here: "the one that first integrates into D-ring,
        succeeds" (section 5.2.2).
        """
        current = self._members.get(node.node_id)
        if current is not None and current is not node and current.is_active:
            return False
        if current is not node:
            self._members[node.node_id] = node
            self._invalidate_sorted()
        return True

    def holder_of(self, node_id: ChordId) -> Optional["ChordNode"]:
        """The registered member at *node_id*, if any."""
        return self._members.get(node_id)

    def deregister(self, node: "ChordNode") -> None:
        """Remove *node* from the bootstrap registry (on failure or leave)."""
        if self._members.get(node.node_id) is node:
            del self._members[node.node_id]
            self._invalidate_sorted()

    def members(self) -> List["ChordNode"]:
        """Currently registered members, sorted by identifier.

        Served from the sorted-membership cache; the returned list is a
        fresh copy, safe for callers to mutate.
        """
        self._ensure_sorted()
        return list(self._sorted_nodes)

    def active_members(self) -> List["ChordNode"]:
        """Registered members whose host is currently alive."""
        self._ensure_sorted()
        return [n for n in self._sorted_nodes if n.is_active]

    def successor_of(self, key: ChordId) -> Optional["ChordNode"]:
        """Registered member owning *key* (first id >= key, cyclically).

        O(log n) bisect over the sorted-membership cache; diagnostics and
        oracle checks use this instead of scanning ``members()``.
        """
        self._ensure_sorted()
        ids = self._sorted_ids
        if not ids:
            return None
        return self._sorted_nodes[bisect_left(ids, key) % len(ids)]

    def random_bootstrap(self, rng: random.Random) -> Optional[Address]:
        """Address of a random live member, or None if the ring is empty."""
        active = self.active_members()
        if not active:
            return None
        return rng.choice(active).host.address

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------ warm start
    def warm_tables(self, ordered_refs: List["NodeRef"], index: int):
        """Converged ``(successors, predecessor, fingers)`` of one member.

        *ordered_refs* is the full ring membership as plain refs, sorted by
        identifier; *index* selects the member whose tables to compute.
        Exactly the state stabilization would converge to -- the same
        arithmetic :meth:`warm_start` applies to co-resident nodes, exposed
        over refs so sharded runs can compute tables for a globally known
        membership whose nodes live in other shards' simulators.
        """
        n = len(ordered_refs)
        if n == 0:
            raise DHTError("cannot compute warm tables of an empty ring")
        ids = [ref.id for ref in ordered_refs]
        r = self.params.successor_list_size
        successors = [ordered_refs[(index + k) % n] for k in range(1, min(r, n) + 1)]
        if not successors:
            successors = [ordered_refs[index]]
        fingers = [
            ordered_refs[
                bisect_left(ids, self.space.finger_start(ids[index], i)) % n
            ]
            for i in range(self.params.bits)
        ]
        return successors, ordered_refs[(index - 1) % n], fingers

    def warm_start(self, nodes: Iterable["ChordNode"]) -> None:
        """Wire *nodes* into a fully stabilized ring instantly.

        Successor lists, predecessors and complete finger tables are computed
        directly from the sorted identifier list, exactly as stabilization
        would converge to.  Every node is registered as a member.
        """
        ordered = sorted(nodes, key=lambda n: n.node_id)
        if not ordered:
            return
        ids = [n.node_id for n in ordered]
        if len(set(ids)) != len(ids):
            raise DHTError("duplicate identifiers in warm start")
        refs = [n.ref for n in ordered]
        for index, node in enumerate(ordered):
            successors, predecessor, fingers = self.warm_tables(refs, index)
            node.adopt_warm_state(
                successors=successors,
                predecessor=predecessor,
                fingers=fingers,
            )
            self.register(node)


# Imported at the bottom to break the node <-> ring reference cycle for type
# checkers; at runtime only the name is needed in annotations (strings).
from repro.dht.node import ChordNode  # noqa: E402  (cycle-breaking import)
