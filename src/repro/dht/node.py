"""The Chord protocol state machine of one node.

Implements the SIGCOMM 2001 protocol with the robustness refinements every
deployed Chord uses:

- a **successor list** of r entries instead of a single successor, so the
  ring survives r-1 simultaneous adjacent failures;
- **iterative lookups** driven by the querier, with *failure exclusion*: a
  hop that times out is excluded, its tables-entry purged, and the lookup
  backtracks to the last responsive node -- this is what keeps routing alive
  under the paper's "worst scenarios of churn";
- a single combined **maintenance tick** (stabilize + notify + one finger
  repair + predecessor check) per period, desynchronized across nodes.

A :class:`ChordNode` is a *component* attached to a host
:class:`~repro.net.transport.NetworkNode`; hosts forward every message whose
kind starts with ``"chord."`` to :meth:`ChordNode.on_message`.  This
composition is what lets a CDN peer carry a Chord node only while it plays
the directory role (Flower-CDN) or all the time (Squirrel).

Identifiers are *assigned by the caller*: Squirrel hashes the host address,
while the D-ring assigns structured ids from (website, locality, instance) --
the paper's "novel key management service".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Set

from repro.errors import DHTError
from repro.net.message import Message
from repro.net.transport import NetworkNode
from repro.sim.process import PeriodicProcess, desynchronized_start
from repro.types import Address, ChordId


class NodeRef(NamedTuple):
    """A remote node as known locally: (identifier, network address)."""

    id: ChordId
    address: Address

    def pack(self) -> "tuple":
        """Wire form of this ref.

        A ``NodeRef`` *is* a tuple (NamedTuple), so it is its own wire
        form -- returning ``self`` avoids one tuple allocation per packed
        ref on the maintenance hot path (hundreds of thousands per run).
        """
        return self

    @staticmethod
    def unpack(raw: Optional[tuple]) -> Optional["NodeRef"]:
        if type(raw) is NodeRef or raw is None:
            # Simulated peers share one address space, so packed refs arrive
            # as the NodeRef they were packed from: identity, no allocation.
            return raw
        return NodeRef(raw[0], raw[1])


class LookupResult(NamedTuple):
    """Outcome of one iterative lookup.

    Attributes:
        key: the identifier that was looked up.
        found: ref of the key's successor, or None when the lookup failed.
        hops: number of probe RPCs that were answered.
        timeouts: number of dead hops encountered (each cost a timeout).
        latency_ms: wall-clock (simulated) time from start to completion,
            including timeout stalls -- the paper's "lookup latency".
    """

    key: ChordId
    found: Optional[NodeRef]
    hops: int
    timeouts: int
    latency_ms: float

    @property
    def ok(self) -> bool:
        return self.found is not None


LookupCallback = Callable[[LookupResult], None]

#: ``tuple.__new__`` bound once: LookupResult is a NamedTuple, so building
#: it directly from a tuple skips the generated constructor frame (one
#: LookupResult per lookup; see _finish in both lookup strategies).
_new_lookup_result = tuple.__new__


class ChordNode:
    """One node's Chord state and behaviour.

    Args:
        host: the network endpoint this Chord node lives on.
        ring: the shared overlay (parameters + bootstrap registry).
        node_id: this node's identifier on the ring.

    The node starts *inactive*: call :meth:`create` (first node of a ring or
    warm start), or :meth:`join` to enter an existing ring.
    """

    def __init__(self, host: NetworkNode, ring: "ChordRing", node_id: ChordId) -> None:
        if not ring.space.contains(node_id):
            raise DHTError(f"node id {node_id} outside the identifier space")
        self.host = host
        self.ring = ring
        self.space = ring.space
        self.node_id = node_id
        self.predecessor: Optional[NodeRef] = None
        self.successors: List[NodeRef] = []
        self.fingers: List[Optional[NodeRef]] = [None] * ring.params.bits
        self.joined = False
        self._next_finger = 1  # finger 0 is the successor; repaired by stabilize
        #: finger i's target key -- static per (node_id, bits), computed
        #: lazily on the first repair tick (same formula as
        #: IdSpace.finger_start).  Directory nodes are created in large
        #: numbers under churn and many die before their first repair, so
        #: paying the table at construction time is wasted work.
        self._finger_starts: Optional[List[ChordId]] = None
        #: this node's own ref, cached: (node_id, address) are both fixed
        #: for the node's lifetime, and a shared ref object lets the finger
        #: scan skip duplicate entries by identity.
        self._ref = NodeRef(node_id, host.address)
        self._maintenance: Optional[PeriodicProcess] = None
        self._stabilizing = False
        #: kind -> bound handler, resolved once (hot dispatch path).
        self._handler_cache: Dict[str, Callable[[Message], Optional[Dict[str, Any]]]] = {}

    # ---------------------------------------------------------------- basics
    @property
    def ref(self) -> NodeRef:
        return self._ref

    @property
    def is_active(self) -> bool:
        """Joined and the host is up."""
        return self.joined and self.host.alive

    @property
    def successor(self) -> Optional[NodeRef]:
        return self.successors[0] if self.successors else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChordNode(id={self.node_id}, addr={self.host.address}, "
            f"joined={self.joined}, succ={self.successor})"
        )

    # ------------------------------------------------------------- lifecycle
    def create(self) -> None:
        """Become the first (and only) node of a new ring."""
        if self.joined:
            raise DHTError("node already joined")
        self.successors = [self.ref]
        self.predecessor = self.ref
        self._complete_join()

    def adopt_warm_state(
        self,
        successors: List[NodeRef],
        predecessor: Optional[NodeRef],
        fingers: List[Optional[NodeRef]],
    ) -> None:
        """Install converged state directly (warm start -- see ChordRing)."""
        if self.joined:
            raise DHTError("node already joined")
        self.successors = list(successors)
        self.predecessor = predecessor
        self.fingers = list(fingers)
        self._complete_join(register=False)  # warm_start registers itself

    def join(
        self,
        bootstrap: Address,
        on_joined: Callable[[], None],
        on_failed: Callable[[str, Optional[NodeRef]], None],
    ) -> None:
        """Join the ring through *bootstrap*.

        On success ``on_joined()`` fires once the node is wired in.  On
        failure ``on_failed(reason, holder)`` fires with reason one of
        ``"taken"`` (another node already holds this exact identifier --
        the D-ring replacement race of section 5.2.2; *holder* is that
        node), ``"lookup"`` (routing failed) or ``"race"`` (a concurrent
        joiner integrated first).
        """
        if self.joined:
            raise DHTError("node already joined")

        def lookup_done(result: LookupResult) -> None:
            if not self.host.alive:
                return
            if not result.ok:
                on_failed("lookup", None)
                return
            succ = result.found
            if succ.id == self.node_id and succ.address != self.host.address:
                on_failed("taken", succ)
                return
            self._finish_join(succ, on_joined, on_failed)

        self.lookup(self.node_id, lookup_done, start=bootstrap)

    def _finish_join(
        self,
        succ: NodeRef,
        on_joined: Callable[[], None],
        on_failed: Callable[[str, Optional[NodeRef]], None],
    ) -> None:
        """Adopt *succ*, then notify it; the notify reply settles the race."""

        def state_reply(payload: Dict[str, Any]) -> None:
            if not payload.get("successors"):
                on_failed("lookup", None)
                return
            succlist = [NodeRef.unpack(raw) for raw in payload["successors"]]
            self.successors = self._merged_successors(succ, succlist)

            def notify_reply(reply: Dict[str, Any]) -> None:
                if not reply.get("accepted", False):
                    self.successors = []
                    on_failed("race", NodeRef.unpack(reply.get("holder")))
                    return
                if not self.ring.try_register(self):
                    # A same-id candidate integrated through a different
                    # successor while we were joining: it won (section
                    # 5.2.2 -- first to integrate succeeds).
                    self.successors = []
                    holder = self.ring.holder_of(self.node_id)
                    on_failed("race", holder.ref if holder is not None else None)
                    return
                self._complete_join(register=False)
                on_joined()

            self.host.rpc(
                succ.address,
                "chord.notify",
                {"candidate": self.ref.pack()},
                on_reply=notify_reply,
                on_timeout=lambda: on_failed("lookup", None),
                timeout_ms=self.ring.params.rpc_timeout_ms,
            )

        self.host.rpc(
            succ.address,
            "chord.get_state",
            {},
            on_reply=state_reply,
            on_timeout=lambda: on_failed("lookup", None),
            timeout_ms=self.ring.params.rpc_timeout_ms,
        )

    def _complete_join(self, register: bool = True) -> None:
        self.joined = True
        if register:
            self.ring.register(self)
        self.start_maintenance()
        self.host.sim.emit("chord.join", id=self.node_id, addr=self.host.address)

    def start_maintenance(self) -> None:
        """Start the periodic stabilization tick (idempotent)."""
        if self._maintenance is not None and self._maintenance.active:
            return
        params = self.ring.params
        rng = self.host.sim.rng("chord.maintenance")
        self._maintenance = PeriodicProcess(
            self.host.sim,
            params.maintenance_period_ms,
            self._maintenance_tick,
            initial_delay=desynchronized_start(params.maintenance_period_ms, rng),
            jitter=params.maintenance_jitter,
            rng=rng,
        )

    def shutdown(self) -> None:
        """Stop participating (crash or leave).  Safe to call repeatedly."""
        if self._maintenance is not None:
            self._maintenance.cancel()
            self._maintenance = None
        if self.joined:
            self.ring.deregister(self)
            self.joined = False
        self.host.sim.emit("chord.shutdown", id=self.node_id)

    def leave_gracefully(self) -> None:
        """Voluntary departure: hand neighbours to each other, then go."""
        pred, succ = self.predecessor, self.successor
        if pred is not None and succ is not None and pred.id != self.node_id:
            self.host.send(
                pred.address, "chord.successor_hint", successor=succ.pack()
            )
            self.host.send(
                succ.address, "chord.predecessor_hint", predecessor=pred.pack()
            )
        self.shutdown()

    # ------------------------------------------------------------ local data
    def closest_preceding(self, key: ChordId, exclude: Set[ChordId]) -> Optional[NodeRef]:
        """Best locally known node strictly between self and *key*.

        Scans the finger table from the top, then the successor list, per
        the Chord paper; nodes in *exclude* (known dead) are skipped.
        """
        best: Optional[NodeRef] = None
        space = self.space
        size = space.size
        best_distance = size
        node_id = self.node_id
        # Routing (the common caller) passes an empty exclusion set; skip
        # the per-finger set membership test entirely in that case.
        excluding = bool(exclude)
        # The interval test ``id in (node_id, key)`` is inlined below: the
        # finger scan runs for every routing hop and the ``in_open`` method
        # call dominates its cost at paper scale (semantics identical to
        # ``IdSpace.in_open``, property-tested there).
        wraps = node_id >= key  # interval wraps the origin (or is degenerate)
        prev = None
        for finger in reversed(self.fingers):
            # Adjacent finger slots frequently hold the *same* ref object
            # (low fingers all equal the successor); a rejected ref would be
            # rejected again, and an accepted one returns immediately, so
            # duplicates can be skipped by identity.
            if finger is None or finger is prev:
                continue
            prev = finger
            fid = finger.id
            if fid == node_id or (excluding and fid in exclude):
                continue
            if wraps:
                if node_id == key:
                    if fid != node_id:
                        return finger
                elif fid > node_id or fid < key:
                    return finger
            elif node_id < fid < key:
                return finger
        for candidate in self.successors:
            cid = candidate.id
            if cid == node_id or (excluding and cid in exclude):
                continue
            if space.in_open(cid, node_id, key):
                distance = (key - cid) % size
                if distance < best_distance:
                    best, best_distance = candidate, distance
        return best

    def note_failed(self, node_id: ChordId) -> None:
        """Purge a node observed dead from every local table."""
        self.successors = [s for s in self.successors if s.id != node_id]
        self.fingers = [
            None if f is not None and f.id == node_id else f for f in self.fingers
        ]
        if self.predecessor is not None and self.predecessor.id == node_id:
            self.predecessor = None

    def _merged_successors(self, head: NodeRef, rest: List[Optional[NodeRef]]) -> List[NodeRef]:
        """Successor list = head + its list, deduplicated, truncated to r."""
        merged: List[NodeRef] = [head]
        seen = {head.id, self.node_id}
        seen_add = seen.add
        limit = self.ring.params.successor_list_size
        count = 1
        for ref in rest:
            if ref is None:
                continue
            rid = ref.id
            if rid in seen:
                continue
            merged.append(ref)
            seen_add(rid)
            count += 1
            if count >= limit:
                break
        return merged

    # ------------------------------------------------------------- lookups
    def lookup(
        self,
        key: ChordId,
        on_done: LookupCallback,
        start: Optional[Address] = None,
    ) -> None:
        """Find the successor of *key* (mode per ``ring.params.lookup_mode``).

        Args:
            key: identifier to resolve.
            on_done: receives a :class:`LookupResult` (check ``.ok``).
            start: route through this address first instead of using local
                tables -- how non-members (new clients bootstrapping into
                Flower-CDN) route over a ring they do not belong to.
        """
        if start is None and not self.joined:
            raise DHTError("lookup from a non-member requires a start address")
        if self.ring.params.lookup_mode == "recursive":
            _RecursiveLookup(self, key, on_done, start).begin()
        else:
            _Lookup(self, key, on_done, start).begin()

    # ------------------------------------------------------------- handlers
    def on_message(self, message: Message) -> Optional[Dict[str, Any]]:
        """Dispatch ``chord.*`` message kinds to handler methods."""
        kind = message.kind
        handler = self._handler_cache.get(kind)
        if handler is None:
            handler = getattr(self, "handle_" + kind.replace(".", "_"), None)
            if handler is None:
                raise DHTError(f"unknown chord message kind {message.kind!r}")
            self._handler_cache[kind] = handler
        return handler(message)

    def handle_chord_probe(self, message: Message) -> Dict[str, Any]:
        """One step of an iterative lookup (see :class:`_Lookup`)."""
        if not self.joined:
            return {"status": "not_ready"}
        key: ChordId = message.payload["key"]
        exclude: Set[ChordId] = set(message.payload.get("exclude", ()))
        succ = next((s for s in self.successors if s.id not in exclude), None)
        if succ is None:
            return {"status": "not_ready"}
        if self.space.in_half_open_right(key, self.node_id, succ.id):
            return {"status": "done", "result": succ.pack()}
        nxt = self.closest_preceding(key, exclude)
        if nxt is None:
            # Nothing better than our successor: hand the lookup to it.
            return {"status": "next", "next": succ.pack()}
        return {"status": "next", "next": nxt.pack()}

    def handle_chord_get_state(self, message: Message) -> Dict[str, Any]:
        """Stabilization read: our predecessor and successor list."""
        # NodeRefs are their own wire form (see NodeRef.pack); a plain list
        # copy packs the successor list without per-entry method calls.
        return {
            "id": self.node_id,
            "predecessor": self.predecessor,
            "successors": list(self.successors),
        }

    def handle_chord_notify(self, message: Message) -> Dict[str, Any]:
        """A node believes it is our predecessor (join or stabilize)."""
        candidate = NodeRef.unpack(message.payload["candidate"])
        if candidate is None or not self.joined:
            return {"accepted": False, "holder": None}
        pred = self.predecessor
        if pred is not None and candidate.id == pred.id and candidate.address != pred.address:
            # Identifier collision: the position is already held (the
            # paper's D-ring join race, section 5.2.2).
            return {"accepted": False, "holder": pred.pack()}
        if (
            pred is None
            or pred.id == self.node_id
            or self.space.in_open(candidate.id, pred.id, self.node_id)
            or candidate.id == pred.id  # refresh from the same node
        ):
            self.predecessor = candidate
            return {"accepted": True}
        return {"accepted": False, "holder": pred.pack()}

    def handle_chord_ping(self, message: Message) -> Dict[str, Any]:
        """Liveness probe (predecessor check)."""
        return {"id": self.node_id, "joined": self.joined}

    def handle_chord_successor_hint(self, message: Message) -> None:
        """A gracefully leaving successor points us past itself."""
        hint = NodeRef.unpack(message.payload["successor"])
        if hint is not None and self.joined and hint.id != self.node_id:
            leaving = self.successor
            if leaving is not None:
                self.note_failed(leaving.id)
            self.successors = self._merged_successors(hint, self.successors)
        return None

    def handle_chord_predecessor_hint(self, message: Message) -> None:
        """A gracefully leaving predecessor points us past itself."""
        hint = NodeRef.unpack(message.payload["predecessor"])
        if hint is None or not self.joined or hint.id == self.node_id:
            return None
        pred = self.predecessor
        if (
            pred is None
            or pred.address == message.src  # sender is our leaving predecessor
            or self.space.in_open(hint.id, pred.id, self.node_id)
        ):
            self.predecessor = hint
        return None

    # ---------------------------------------------------------- maintenance
    def _maintenance_tick(self) -> None:
        if not (self.joined and self.host.alive):  # is_active, inlined
            return
        self._stabilize()
        self._fix_one_finger()
        self._check_predecessor()

    def _stabilize(self, attempt: int = 0) -> None:
        """Classic stabilize: learn successor's predecessor, then notify."""
        if self._stabilizing and attempt == 0:
            return  # previous round still in flight
        successors = self.successors
        succ = successors[0] if successors else None
        if succ is None:
            self.successors = [self._ref]
            self._stabilizing = False
            return
        if succ.id == self.node_id:
            # We point at ourselves.  If someone has notified us (we have a
            # real predecessor), adopt it as successor -- this is how the
            # second node of a ring gets linked in classic Chord.
            self._stabilizing = False
            pred = self.predecessor
            if pred is not None and pred.id != self.node_id:
                merged = self._merged_successors(pred, [])
                self.successors = merged
                self.fingers[0] = merged[0]
                self.host.send(pred.address, "chord.notify", candidate=self._ref)
            return
        self._stabilizing = True

        def on_state(payload: Dict[str, Any]) -> None:
            self._stabilizing = False
            if not (self.joined and self.host.alive):  # is_active, inlined
                return
            if not payload.get("successors"):
                # The host answered but is no longer a ring member (it
                # crashed and came back as a plain peer): drop it like a
                # failure, else the ring would never route around it.
                on_timeout()
                return
            pred = NodeRef.unpack(payload.get("predecessor"))
            # The successor entries are NodeRefs already (their own wire
            # form -- see NodeRef.pack); no per-entry unpack needed on this,
            # the most frequent maintenance reply in a run.
            succlist = payload["successors"]
            new_succ = succ
            if (
                pred is not None
                and pred.id != self.node_id
                and self.space.in_open(pred.id, self.node_id, succ.id)
            ):
                new_succ = pred  # a closer successor has appeared
            merged = self._merged_successors(
                new_succ, [succ] + succlist if new_succ != succ else succlist
            )
            self.successors = merged
            first = merged[0]
            self.fingers[0] = first
            self.host.send(first.address, "chord.notify", candidate=self._ref)

        def on_timeout() -> None:
            self._stabilizing = False
            if not (self.joined and self.host.alive):  # is_active, inlined
                return
            self.note_failed(succ.id)
            self.host.sim.emit("chord.successor_failed", id=self.node_id, dead=succ.id)
            if attempt < self.ring.params.successor_list_size:
                self._stabilize(attempt + 1)  # fall through to the next one
            elif not self.successors:
                self.successors = [self._ref]  # last resort: re-anchor later

        self.host.rpc(
            succ.address,
            "chord.get_state",
            {},
            on_reply=on_state,
            on_timeout=on_timeout,
            timeout_ms=self.ring.params.rpc_timeout_ms,
        )

    def _fix_one_finger(self) -> None:
        """Repair fingers round-robin: one *lookup* per tick.

        Fingers whose start falls within (self, successor] equal the
        successor and are repaired for free while scanning, so the lookup
        budget is spent only on the ~log2(N) genuinely distinct fingers --
        without this, a 32-bit table would take 31 ticks per full repair
        cycle and rot badly under churn.
        """
        if not self.joined:
            return
        bits = self.ring.params.bits
        node_id = self.node_id
        starts = self._finger_starts
        if starts is None:
            size = self.space.size
            starts = self._finger_starts = [
                (node_id + (1 << i)) % size for i in range(bits)
            ]
        fingers = self.fingers
        successors = self.successors
        succ = successors[0] if successors else None
        succ_id = succ.id if succ is not None else None
        for __ in range(bits - 1):
            index = self._next_finger
            self._next_finger += 1
            if self._next_finger >= bits:
                self._next_finger = 1
            key = starts[index]
            if succ_id is not None and (
                # key in (node_id, succ_id] cyclically (in_half_open_right,
                # inlined: this test runs ~log2(N) times per tick per node).
                node_id == succ_id
                or (node_id < key <= succ_id)
                or (node_id > succ_id and (key > node_id or key <= succ_id))
            ):
                fingers[index] = succ
                continue

            def done(result: LookupResult, index: int = index) -> None:
                if result.found is not None and self.joined and self.host.alive:
                    self.fingers[index] = result.found

            self.lookup(key, done)
            return

    def _check_predecessor(self) -> None:
        pred = self.predecessor
        if pred is None or pred.id == self.node_id:
            return

        def on_timeout() -> None:
            if self.predecessor is not None and self.predecessor.id == pred.id:
                self.predecessor = None

        def on_reply(payload: Dict[str, Any]) -> None:
            if not payload.get("joined"):
                on_timeout()  # answers, but no longer a ring member

        self.host.rpc(
            pred.address,
            "chord.ping",
            {},
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout_ms=self.ring.params.rpc_timeout_ms,
        )



class _Lookup:
    """State of one in-flight iterative lookup (failure-excluding)."""

    def __init__(
        self,
        node: ChordNode,
        key: ChordId,
        on_done: LookupCallback,
        start: Optional[Address],
    ) -> None:
        self.node = node
        self.key = key
        self.on_done = on_done
        self.start_address = start
        self.started_at = node.host.sim.now
        self.hops = 0
        self.timeouts = 0
        self.exclude: Set[ChordId] = set()
        self.visited: Set[Address] = set()
        self.backtrack: List[Address] = []  # responsive nodes, nearest last
        self._id_of: Dict[Address, ChordId] = {}  # ids learnt mid-lookup

    def begin(self) -> None:
        if self.start_address is not None:
            self._probe(self.start_address)
            return
        node = self.node
        successors = node.successors
        succ = successors[0] if successors else None
        if succ is None:
            self._finish(None)
            return
        if node.space.in_half_open_right(self.key, node.node_id, succ.id):
            self._finish(succ)
            return
        nxt = node.closest_preceding(self.key, self.exclude)
        target = nxt or succ
        self._probe(target.address, target.id)

    # ------------------------------------------------------------ internals
    def _finish(self, found: Optional[NodeRef]) -> None:
        sim = self.node.host.sim
        hops = self.hops
        timeouts = self.timeouts
        latency_ms = sim.now - self.started_at
        # NamedTuple construction via tuple.__new__: LookupResult *is* a
        # tuple, and one is built per lookup -- the generated __new__ frame
        # is pure overhead on this path.
        result = _new_lookup_result(
            LookupResult, (self.key, found, hops, timeouts, latency_ms)
        )
        sim.emit(
            "chord.lookup",
            ok=found is not None,
            hops=hops,
            timeouts=timeouts,
            latency_ms=latency_ms,
        )
        self.on_done(result)

    def _probe(self, address: Address, node_id: Optional[ChordId] = None) -> None:
        if self.hops + self.timeouts >= self.node.ring.params.lookup_max_probes:
            self._finish(None)
            return
        if node_id is not None:
            self._id_of[address] = node_id
        self.visited.add(address)
        params = self.node.ring.params
        # Per-hop retries (capped backoff, deterministic jitter) so one
        # transiently lost probe does not condemn a live hop; only after the
        # retry budget is exhausted do we blame the node and backtrack.
        self.node.host.retrying_rpc(
            address,
            "chord.probe",
            {"key": self.key, "exclude": list(self.exclude)[-16:]},
            on_reply=lambda payload: self._on_reply(address, payload),
            on_give_up=lambda: self._on_timeout(address),
            timeout_ms=params.rpc_timeout_ms,
            retries=params.probe_retries,
            backoff_ms=params.retry_backoff_ms,
        )

    def _on_reply(self, address: Address, payload: Dict[str, Any]) -> None:
        if not self.node.host.alive:
            return
        self.hops += 1
        status = payload.get("status")
        if status == "done":
            self._finish(NodeRef.unpack(payload["result"]))
            return
        if status == "next":
            self.backtrack.append(address)
            nxt = NodeRef.unpack(payload["next"])
            if nxt is None or nxt.address in self.visited:
                # No progress possible through this node: exclude the
                # suggestion and backtrack.
                if nxt is not None:
                    self.exclude.add(nxt.id)
                self._backtrack()
                return
            self._probe(nxt.address, nxt.id)
            return
        # "not_ready" (node mid-join): treat like a dead hop.
        self._on_timeout(address, answered=True)

    def _on_timeout(self, address: Address, answered: bool = False) -> None:
        if not self.node.host.alive:
            return
        if not answered:
            self.timeouts += 1
            if self.timeouts > self.node.ring.params.lookup_max_timeouts:
                self._finish(None)
                return
        # Blame the unresponsive node and purge it from our own tables.
        dead_ids = {ref.id for ref in self._refs_for(address)}
        learnt = self._id_of.get(address)
        if learnt is not None:
            dead_ids.add(learnt)
        for dead in dead_ids:
            self.exclude.add(dead)
            self.node.note_failed(dead)
        self._backtrack()

    def _refs_for(self, address: Address) -> List[NodeRef]:
        """Every local table entry pointing at *address*."""
        node = self.node
        refs = [s for s in node.successors if s.address == address]
        refs += [f for f in node.fingers if f is not None and f.address == address]
        if node.predecessor is not None and node.predecessor.address == address:
            refs.append(node.predecessor)
        return refs

    def _backtrack(self) -> None:
        if self.backtrack:
            # Re-ask the last responsive node; with the updated exclusion
            # set it will suggest a different next hop.  The probe budget
            # bounds any ping-pong.
            self._probe(self.backtrack.pop())
            return
        # Restart from our own tables with the exclusions learnt so far.
        node = self.node
        if not node.joined:
            self._finish(None)
            return
        succ = next((s for s in node.successors if s.id not in self.exclude), None)
        if succ is not None and node.space.in_half_open_right(
            self.key, node.node_id, succ.id
        ):
            self._finish(succ)
            return
        nxt = node.closest_preceding(self.key, self.exclude)
        candidate = nxt or succ
        if candidate is None or candidate.address in self.visited:
            self._finish(None)
            return
        self._probe(candidate.address, candidate.id)


# ---------------------------------------------------------------------------
# Recursive routing (the default lookup mode)
# ---------------------------------------------------------------------------
#
# The query travels hop by hop as one-way ``chord.route`` messages -- one
# link latency per hop, the way PeerSim-style Chord simulations route -- and
# the node owning the key sends a ``chord.route_result`` straight back to
# the origin.  A message that lands on a dead hop is simply lost; the origin
# retries the whole route after ``recursive_timeout_ms`` and gives up after
# ``recursive_retries`` attempts.
#
# Hosts keep one pending-callback table for all their Chord activity (a
# host may run several logical nodes over its lifetime -- e.g. a Flower
# peer doing a bootstrap scan with a transient node); the helpers below own
# that table so host classes stay trivial.

def deliver_route_result(host: NetworkNode, message: Message) -> None:
    """Host-side dispatch of ``chord.route_result`` (see module comment)."""
    pending = host._chord_pending_lookups  # pre-created by NetworkNode
    if not pending:
        return None
    callback = pending.pop(message.payload.get("nonce"), None)
    if callback is not None:
        callback(message.payload)
    return None


def route_step(node: Optional["ChordNode"], host: NetworkNode, message: Message) -> Dict[str, Any]:
    """Host-side dispatch of ``chord.route``: acknowledge, then answer the
    origin or forward one hop closer.

    The ack tells the previous hop the message is in good hands; a previous
    hop that gets no ack (we crashed) or ``{"ok": False}`` (we are not a
    ring member any more) reroutes around us -- per-hop reliability, the
    way deployed recursive DHTs forward.
    """
    if node is None or not node.joined or not host.alive:
        return {"ok": False}
    payload = message.payload
    key: ChordId = payload["key"]
    hops: int = payload["hops"]
    if hops >= node.ring.params.lookup_max_probes:
        return {"ok": True}  # loop guard: swallow silently
    successors = node.successors
    if not successors:
        return {"ok": False}
    succ = successors[0]
    node_id = node.node_id
    succ_id = succ.id
    # key in (node_id, succ_id] cyclically -- in_half_open_right inlined;
    # this test runs once per forwarded hop of every recursive lookup.
    if (
        node_id == succ_id
        or (node_id < key <= succ_id)
        or (node_id > succ_id and (key > node_id or key <= succ_id))
    ):
        host.send(
            payload["origin"],
            "chord.route_result",
            nonce=payload["nonce"],
            result=succ,
            hops=hops,
        )
        return {"ok": True}
    forward_route(node, host, dict(payload, hops=hops + 1))
    return {"ok": True}


def forward_route(
    node: "ChordNode",
    host: NetworkNode,
    payload: Dict[str, Any],
    attempts: int = 3,
) -> None:
    """Send the route one hop closer, rerouting around dead next hops.

    Each failed handoff purges the dead entry from our tables
    (:meth:`ChordNode.note_failed` -- reactive repair) and tries the next
    best candidate, up to *attempts* times; after that the route is dropped
    and the origin's end-to-end retry takes over.
    """
    if attempts <= 0 or not host.alive or not node.joined:
        return
    key: ChordId = payload["key"]
    nxt = node.closest_preceding(key, _EMPTY_EXCLUDE)
    if nxt is None:
        successors = node.successors
        nxt = successors[0] if successors else None
    if nxt is None or nxt.id == node.node_id:
        return

    def on_ack(reply: Dict[str, Any]) -> None:
        if not reply.get("ok"):
            node.note_failed(nxt.id)
            forward_route(node, host, payload, attempts - 1)

    def on_timeout() -> None:
        node.note_failed(nxt.id)
        host.sim.emit("chord.route_reroute", at=node.node_id, dead=nxt.id)
        forward_route(node, host, payload, attempts - 1)

    host.rpc(
        nxt.address,
        "chord.route",
        payload,
        on_reply=on_ack,
        on_timeout=on_timeout,
        timeout_ms=node.ring.params.rpc_timeout_ms,
    )


_EMPTY_EXCLUDE: Set[ChordId] = frozenset()


class _RecursiveLookup:
    """State of one in-flight recursive lookup (origin side)."""

    def __init__(
        self,
        node: ChordNode,
        key: ChordId,
        on_done: LookupCallback,
        start: Optional[Address],
    ) -> None:
        self.node = node
        self.key = key
        self.on_done = on_done
        self.start_address = start
        self.started_at = node.host.sim.now
        self.attempts = 0
        self.done = False
        self.nonce: Optional[tuple] = None

    # ------------------------------------------------------------ plumbing
    def _pending_table(self) -> Dict:
        return self.node.host._chord_pending_lookups  # pre-created by NetworkNode

    def _next_nonce(self) -> tuple:
        host = self.node.host
        sequence = host._chord_nonce_seq + 1
        host._chord_nonce_seq = sequence
        return (host.address, sequence)

    # -------------------------------------------------------------- driving
    def begin(self) -> None:
        self.attempts += 1
        node, host = self.node, self.node.host
        self.nonce = self._next_nonce()
        self.node.host._chord_pending_lookups[self.nonce] = self._on_result
        # defer, not schedule: the timeout is never cancelled (the nonce
        # check in _on_attempt_timeout makes stale firings no-ops), so no
        # handle needs to be allocated -- one per lookup attempt.
        host.sim.defer(
            node.ring.params.recursive_timeout_ms, self._on_attempt_timeout, self.nonce
        )
        payload = {
            "key": self.key,
            "origin": host.address,
            "nonce": self.nonce,
            "hops": 1,
        }
        if self.start_address is not None and not node.joined:
            # Non-members hand the route to their bootstrap; no alternative
            # first hop exists, so a dead bootstrap surfaces as an attempt
            # timeout and, eventually, a failed lookup.
            host.rpc(
                self.start_address,
                "chord.route",
                payload,
                on_reply=lambda reply: None,
                on_timeout=lambda: None,
            )
            return
        # First step runs locally: we are a ring member.
        successors = node.successors
        succ = successors[0] if successors else None
        if succ is None:
            self._finish(None, 0)
            return
        if node.space.in_half_open_right(self.key, node.node_id, succ.id):
            self._finish(succ, 0)
            return
        forward_route(node, host, payload)

    def _on_result(self, payload: Dict[str, Any]) -> None:
        if self.done or not self.node.host.alive:
            return
        self._finish(NodeRef.unpack(payload.get("result")), payload.get("hops", 0))

    def _on_attempt_timeout(self, nonce: tuple) -> None:
        if self.done or nonce != self.nonce:
            return
        self.node.host._chord_pending_lookups.pop(nonce, None)
        if not self.node.host.alive:
            self.done = True
            return
        if self.attempts > self.node.ring.params.recursive_retries:
            self._finish(None, 0, timeouts=self.attempts)
            return
        self.begin()

    def _finish(self, found: Optional[NodeRef], hops: int, timeouts: Optional[int] = None) -> None:
        self.done = True
        if self.nonce is not None:
            self.node.host._chord_pending_lookups.pop(self.nonce, None)
        sim = self.node.host.sim
        if timeouts is None:
            timeouts = self.attempts - 1
        latency_ms = sim.now - self.started_at
        # See the iterative _finish: tuple.__new__ skips the NamedTuple
        # constructor frame on the once-per-lookup path.
        result = _new_lookup_result(
            LookupResult, (self.key, found, hops, timeouts, latency_ms)
        )
        sim.emit(
            "chord.lookup",
            ok=found is not None,
            hops=hops,
            timeouts=timeouts,
            latency_ms=latency_ms,
        )
        self.on_done(result)
