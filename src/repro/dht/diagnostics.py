"""Ring health diagnostics.

Operational tooling for inspecting a Chord overlay mid-simulation: how
consistent are the successor pointers, how stale are the finger tables,
how balanced is key ownership.  Tests use these to assert convergence;
the CLI and examples use them to explain what churn is doing to the ring.

All functions take the *global* view (the ring registry), which no real
node has -- they are measurement instruments, not protocol components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dht.ring import ChordRing
from repro.metrics.report import render_table


@dataclass(frozen=True)
class RingHealth:
    """Snapshot of a ring's structural health.

    Attributes:
        members: live, joined members.
        consistent_successors: members whose successor pointer equals the
            next live member in identifier order.
        consistent_predecessors: same for predecessor pointers.
        stale_finger_fraction: fraction of non-null finger entries that
            point at nodes no longer alive in the ring.
        mean_successor_list_length: resilience margin against failures.
    """

    members: int
    consistent_successors: int
    consistent_predecessors: int
    stale_finger_fraction: float
    mean_successor_list_length: float

    @property
    def successor_consistency(self) -> float:
        return self.consistent_successors / self.members if self.members else 1.0

    @property
    def predecessor_consistency(self) -> float:
        return self.consistent_predecessors / self.members if self.members else 1.0

    @property
    def healthy(self) -> bool:
        """A converged, failure-resilient ring."""
        return (
            self.members == 0
            or (self.successor_consistency >= 0.95 and self.stale_finger_fraction <= 0.2)
        )

    def render(self) -> str:
        return render_table(
            ["indicator", "value"],
            [
                ["live members", self.members],
                ["successor consistency", f"{self.successor_consistency:.1%}"],
                ["predecessor consistency", f"{self.predecessor_consistency:.1%}"],
                ["stale finger entries", f"{self.stale_finger_fraction:.1%}"],
                ["mean successor-list length", f"{self.mean_successor_list_length:.1f}"],
            ],
            title="ring health",
        )


def ring_health(ring: ChordRing) -> RingHealth:
    """Measure the current structural health of *ring*."""
    live = ring.active_members()
    if not live:
        return RingHealth(0, 0, 0, 0.0, 0.0)
    ids = [node.node_id for node in live]
    live_ids = set(ids)
    consistent_succ = 0
    consistent_pred = 0
    stale_fingers = 0
    total_fingers = 0
    for index, node in enumerate(live):
        expected_succ = ids[(index + 1) % len(ids)]
        if node.successor is not None and node.successor.id == expected_succ:
            consistent_succ += 1
        expected_pred = ids[(index - 1) % len(ids)]
        if node.predecessor is not None and node.predecessor.id == expected_pred:
            consistent_pred += 1
        for finger in node.fingers:
            if finger is None:
                continue
            total_fingers += 1
            if finger.id not in live_ids:
                stale_fingers += 1
    return RingHealth(
        members=len(live),
        consistent_successors=consistent_succ,
        consistent_predecessors=consistent_pred,
        stale_finger_fraction=stale_fingers / total_fingers if total_fingers else 0.0,
        mean_successor_list_length=sum(len(n.successors) for n in live) / len(live),
    )


def ownership_spans(ring: ChordRing) -> List[int]:
    """Identifier-space span owned by each live member (sorted by id).

    Chord's load balance comes from these spans being comparable; a member
    owning a huge span is a hotspot for key placement.
    """
    live = ring.active_members()
    if not live:
        return []
    ids = sorted(node.node_id for node in live)
    size = ring.space.size
    return [
        (ids[i] - ids[i - 1]) % size if i else (ids[0] - ids[-1]) % size
        for i in range(len(ids))
    ]


def max_ownership_imbalance(ring: ChordRing) -> Optional[float]:
    """Largest span divided by the fair share, or None for empty rings."""
    spans = ownership_spans(ring)
    if not spans:
        return None
    fair = ring.space.size / len(spans)
    return max(spans) / fair
