"""Chord DHT (Stoica et al., SIGCOMM 2001).

The paper chooses Chord as the DHT-based overlay and simulates "its routing
and churn stabilization protocols" (section 6.1).  This package implements
Chord from scratch:

- :mod:`repro.dht.idspace` -- m-bit ring arithmetic (intervals, distances,
  hashing);
- :mod:`repro.dht.node` -- the per-node protocol state machine: successor
  list, predecessor, finger table, periodic stabilization / finger repair /
  predecessor check, and iterative ``find_successor`` lookups with failure
  exclusion and per-hop latency accounting;
- :mod:`repro.dht.ring` -- ring-wide configuration, the bootstrap service,
  and an instant "warm start" constructor used to stand up the initial
  D-ring population (the paper starts its experiments from a formed ring of
  k x |W| = 600 directory peers).

Two consumers sit on top: the D-ring of Flower-CDN / PetalUp-CDN (directory
peers only, with assigned -- not hashed -- identifiers) and the Squirrel
baseline (every peer joins, identifiers hashed from addresses).
"""

from repro.dht.diagnostics import RingHealth, max_ownership_imbalance, ring_health
from repro.dht.idspace import IdSpace
from repro.dht.node import ChordNode, LookupResult, NodeRef
from repro.dht.ring import ChordRing, RingParams

__all__ = [
    "IdSpace",
    "ChordNode",
    "NodeRef",
    "LookupResult",
    "ChordRing",
    "RingParams",
    "RingHealth",
    "ring_health",
    "max_ownership_imbalance",
]
