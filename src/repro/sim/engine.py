"""The simulator: clock + event queue + RNG streams + trace bus.

One :class:`Simulator` instance drives an entire experiment.  Protocol code
never advances time itself; it only *schedules* callbacks::

    sim = Simulator(seed=42)
    sim.schedule(minutes(6), peer.issue_query)
    sim.run(until=hours(24))

The engine is single-threaded and deterministic: events at equal times fire
in scheduling order (see :mod:`repro.sim.events`).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle, EventQueue
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: master seed for all named random streams.

    Attributes:
        now: current simulation time in milliseconds.
        trace: the :class:`~repro.sim.trace.TraceRecorder` event bus.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.trace = TraceRecorder()
        self._queue = EventQueue()
        self._rng = RngRegistry(seed)
        self._running = False
        self._stopped = False
        self._events_executed = 0

    # ------------------------------------------------------------------ time
    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (engine throughput metric)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled and not cancelled."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> EventHandle:
        """Schedule *callback(*args)* to run *delay* ms from now.

        Raises:
            SimulationError: if *delay* is negative (the past is immutable).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> EventHandle:
        """Schedule *callback(*args)* at absolute *time* (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        return self._queue.push(time, callback, args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Idempotent; safe on fired handles."""
        if handle.active:
            handle.cancel()
            self._queue.notify_cancelled()

    # ------------------------------------------------------------------- rng
    def rng(self, name: str) -> random.Random:
        """The named random stream (see :mod:`repro.sim.rng`)."""
        return self._rng.stream(name)

    @property
    def seed(self) -> int:
        """The master seed this simulator was created with."""
        return self._rng.master_seed

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the single next event.  Return False if none remained."""
        if not self._queue:
            return False
        handle = self._queue.pop()
        if handle.time < self.now:  # pragma: no cover - heap invariant
            raise SimulationError("event queue returned an event from the past")
        self.now = handle.time
        self._events_executed += 1
        handle._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the horizon *until* (ms), or the queue drains.

        When *until* is given, the clock is advanced exactly to it on return,
        so back-to-back ``run`` calls tile the timeline without gaps.  Events
        scheduled at exactly ``until`` are NOT executed (half-open interval
        ``[now, until)``), which makes ``run(until=t); run(until=t)`` a no-op.

        Args:
            until: absolute stop time in ms.
            max_events: optional safety valve for tests; raises
                :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if until is not None and until < self.now:
            raise SimulationError(f"cannot run backwards (until={until}, now={self.now})")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time >= until:
                    break
                self.step()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and not self._stopped:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    # ----------------------------------------------------------------- trace
    def emit(self, kind: str, **payload: Any) -> None:
        """Emit a trace event stamped with the current simulation time."""
        self.trace.emit(self.now, kind, **payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.1f}ms, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
