"""The simulator: clock + event queue + RNG streams + trace bus.

One :class:`Simulator` instance drives an entire experiment.  Protocol code
never advances time itself; it only *schedules* callbacks::

    sim = Simulator(seed=42)
    sim.schedule(minutes(6), peer.issue_query)
    sim.run(until=hours(24))

The engine is single-threaded and deterministic: events at equal times fire
in scheduling order (see :mod:`repro.sim.events`).

Performance notes:

- :meth:`Simulator.run` is a *batched* loop that works directly on the heap
  of slotted entries -- no per-event ``peek``/``pop``/``_fire`` call chain
  and no handle-object churn.  Semantics (ordering, half-open ``until``,
  ``stop()``, cancellation) are bit-identical to the step-wise loop.
- :meth:`Simulator.emit` is subscriber-gated: it consults the trace
  recorder's cheap interest flags and skips event construction entirely
  when nobody listens (see :mod:`repro.sim.trace`).  Hot call sites can
  additionally guard on :meth:`Simulator.tracing` to avoid building the
  payload keyword dict at all.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle, EventQueue
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceEvent, TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: master seed for all named random streams.

    Attributes:
        now: current simulation time in milliseconds.
        trace: the :class:`~repro.sim.trace.TraceRecorder` event bus.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.trace = TraceRecorder()
        self._queue = EventQueue()
        self._rng = RngRegistry(seed)
        self._running = False
        self._stopped = False
        self._events_executed = 0

    # ------------------------------------------------------------------ time
    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (engine throughput metric)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled and not cancelled."""
        return len(self._queue)

    @property
    def peak_pending_events(self) -> int:
        """High-water mark of simultaneously pending events."""
        return self._queue.peak_pending

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> EventHandle:
        """Schedule *callback(*args)* to run *delay* ms from now.

        Raises:
            SimulationError: if *delay* is negative (the past is immutable).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def defer(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> None:
        """Like :meth:`schedule` but fire-and-forget: no handle is returned
        (and none is allocated), so the event cannot be cancelled.

        The hot transport paths use this for message deliveries and RPC
        timeouts, which are never cancelled individually.  The push is
        inlined here (identical semantics to ``EventQueue.push_anon``)
        because this is the single most frequent scheduling call in a run.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        heappush(queue._heap, [self.now + delay, seq, callback, args])
        live = queue._live + 1
        queue._live = live
        if live > queue._peak:
            queue._peak = live

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> EventHandle:
        """Schedule *callback(*args)* at absolute *time* (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        return self._queue.push(time, callback, args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Idempotent; safe on fired handles."""
        if handle.active:
            handle.cancel()
            self._queue.notify_cancelled()

    # ------------------------------------------------------------------- rng
    def rng(self, name: str) -> random.Random:
        """The named random stream (see :mod:`repro.sim.rng`)."""
        return self._rng.stream(name)

    @property
    def seed(self) -> int:
        """The master seed this simulator was created with."""
        return self._rng.master_seed

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the single next event.  Return False if none remained."""
        if not self._queue:
            return False
        handle = self._queue.pop()
        if handle.time < self.now:  # pragma: no cover - heap invariant
            raise SimulationError("event queue returned an event from the past")
        self.now = handle.time
        self._events_executed += 1
        handle._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the horizon *until* (ms), or the queue drains.

        When *until* is given, the clock is advanced exactly to it on return,
        so back-to-back ``run`` calls tile the timeline without gaps.  Events
        scheduled at exactly ``until`` are NOT executed (half-open interval
        ``[now, until)``), which makes ``run(until=t); run(until=t)`` a no-op.

        Args:
            until: absolute stop time in ms.
            max_events: optional safety valve for tests; exactly *max_events*
                events are allowed to execute -- a (max_events+1)-th pending
                event within the horizon raises :class:`SimulationError`
                *before* it runs.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if until is not None and until < self.now:
            raise SimulationError(f"cannot run backwards (until={until}, now={self.now})")
        self._running = True
        self._stopped = False
        queue = self._queue
        executed = 0
        pop = heappop
        # Hoist the optional-argument checks out of the loop: both limits
        # degenerate to +inf comparisons, which cost one C-level compare.
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        # The heap list object is stable (compaction rebuilds it in place),
        # so its reference can be hoisted out of the loop.
        heap = queue._heap
        try:
            # Two copies of the dispatch loop: the common case (no event
            # budget) drops the per-event limit comparison entirely.  The
            # bodies are otherwise identical; keep them in sync.
            if max_events is None:
                while not self._stopped:
                    if not heap:
                        break
                    entry = heap[0]
                    if entry[2] is None:
                        # Discard tombstones of cancelled events (lazy deletion).
                        dead = queue._dead
                        while heap and heap[0][2] is None:
                            pop(heap)
                            if dead > 0:
                                dead -= 1
                        queue._dead = dead
                        continue
                    time = entry[0]
                    if time >= horizon:
                        break
                    pop(heap)
                    queue._live -= 1
                    self.now = time
                    executed += 1
                    callback = entry[2]
                    args = entry[3]
                    entry[2] = None
                    callback(*args)
            else:
                while not self._stopped:
                    if not heap:
                        break
                    entry = heap[0]
                    if entry[2] is None:
                        # Discard tombstones of cancelled events (lazy deletion).
                        dead = queue._dead
                        while heap and heap[0][2] is None:
                            pop(heap)
                            if dead > 0:
                                dead -= 1
                        queue._dead = dead
                        continue
                    time = entry[0]
                    if time >= horizon:
                        break
                    if executed >= limit:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    pop(heap)
                    queue._live -= 1
                    self.now = time
                    executed += 1
                    callback = entry[2]
                    args = entry[3]
                    entry[2] = None
                    callback(*args)
            if until is not None and not self._stopped:
                self.now = until
        finally:
            self._events_executed += executed
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    # ----------------------------------------------------------------- trace
    def tracing(self, kind: str) -> bool:
        """True if emitting *kind* would be observed by anyone.

        Hot paths guard their :meth:`emit` calls on this so that, when the
        recorder is fully quiet (counting disabled, nobody subscribed), not
        even the payload keyword dict is constructed.
        """
        trace = self.trace
        return trace._counting or trace._watch_all or kind in trace._watched

    def emit(self, kind: str, **payload: Any) -> None:
        """Emit a trace event stamped with the current simulation time."""
        trace = self.trace
        if trace._counting:
            trace.counters[kind] += 1
        if trace._watch_all or kind in trace._watched:
            trace._dispatch(TraceEvent(self.now, kind, payload))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.1f}ms, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
