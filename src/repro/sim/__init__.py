"""Discrete-event simulation engine.

This package is the reproduction's substitute for PeerSim's event-driven
framework (paper, section 6.1).  It provides:

- :mod:`repro.sim.clock` -- time-unit helpers (the simulator's clock counts
  milliseconds, the paper's parameters are given in minutes and hours).
- :mod:`repro.sim.events` -- the event heap and cancellable event handles.
- :mod:`repro.sim.engine` -- the :class:`~repro.sim.engine.Simulator` that
  owns the clock, the event queue and the named random-number streams.
- :mod:`repro.sim.process` -- periodic processes (gossip rounds, keepalive
  timers, Chord stabilization, ...).
- :mod:`repro.sim.rng` -- deterministic named random streams so that a whole
  experiment is a pure function of ``(config, seed)``.
- :mod:`repro.sim.trace` -- lightweight structured tracing used by tests and
  by the metrics collector.

Like PeerSim's event-driven mode, the engine models per-link latency but not
bandwidth or CPU contention.
"""

from repro.sim.clock import HOUR, MINUTE, MS, SECOND, hours, minutes, ms_to_hours, ms_to_minutes, seconds
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventQueue
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = [
    "HOUR",
    "MINUTE",
    "MS",
    "SECOND",
    "hours",
    "minutes",
    "seconds",
    "ms_to_hours",
    "ms_to_minutes",
    "EventHandle",
    "EventQueue",
    "Simulator",
    "PeriodicProcess",
    "RngRegistry",
    "TraceRecorder",
]
