"""The event heap.

Events are slotted heap entries -- plain lists ``[time, seq, callback,
args]`` kept in a binary heap.  The monotonically increasing sequence number
breaks ties between events scheduled for the same instant, so execution
order is fully deterministic: events fire in scheduling order when their
times are equal.

Representation notes (the hot path of the whole simulator):

- Heap entries are *lists*, not handle objects.  ``heapq`` then compares
  entries with C-level list comparison (``time`` first, the unique ``seq``
  second -- the callback is never reached), instead of calling a
  Python-level ``__lt__`` millions of times per run.
- :class:`EventHandle` is a thin, lazily allocated view over an entry; the
  common fire-and-forget schedules (message deliveries, RPC timeouts) can
  use :meth:`EventQueue.push_anon` and skip the handle allocation entirely.
- Cancellation is *lazy*: cancelling nulls the entry's callback slot
  (a tombstone) and the queue discards tombstones when they surface at the
  top of the heap.  This is the standard approach (also used by ``sched``
  and asyncio) and keeps both ``schedule`` and ``cancel`` O(log n) / O(1).
- Tombstones are additionally *compacted*: when more than half the heap is
  dead (cancel/reschedule storms under churn), the queue rebuilds itself
  from the live entries in O(n), bounding memory and pop cost.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

#: Entry slot indices (an entry is ``[time, seq, callback, args]``).
_TIME, _SEQ, _CALLBACK, _ARGS = 0, 1, 2, 3

#: Tombstone count above which compaction is considered at all.
_COMPACT_MIN_DEAD = 64


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Instances are returned by :meth:`EventQueue.push` (and therefore by
    ``Simulator.schedule``).  A handle is a view over the underlying heap
    entry; ``time``/``seq``/``callback``/``args`` read through to it.
    Handles order by ``(time, seq)``, mirroring heap order.
    """

    __slots__ = ("_entry", "cancelled")

    def __init__(self, entry: List[Any]) -> None:
        self._entry = entry
        self.cancelled = False

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def callback(self) -> Optional[Callable[..., Any]]:
        return self._entry[_CALLBACK]

    @property
    def args(self) -> Tuple[Any, ...]:
        return self._entry[_ARGS]

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        The callback reference is dropped immediately so cancelled events do
        not keep closures (and whatever they capture) alive until they drain
        from the heap.
        """
        self.cancelled = True
        entry = self._entry
        entry[_CALLBACK] = None
        entry[_ARGS] = ()

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and self._entry[_CALLBACK] is not None

    def _fire(self) -> None:
        entry = self._entry
        callback, args = entry[_CALLBACK], entry[_ARGS]
        entry[_CALLBACK] = None
        entry[_ARGS] = ()
        if callback is not None:
            callback(*args)

    def __lt__(self, other: "EventHandle") -> bool:
        a, b = self._entry, other._entry
        return (a[_TIME], a[_SEQ]) < (b[_TIME], b[_SEQ])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class EventQueue:
    """A deterministic priority queue of slotted event entries."""

    __slots__ = ("_heap", "_seq", "_live", "_dead", "_peak")

    def __init__(self) -> None:
        self._heap: List[List[Any]] = []
        self._seq = 0
        self._live = 0
        self._dead = 0  # tombstones still sitting in the heap
        self._peak = 0  # high-water mark of pending events

    def __len__(self) -> int:
        """Number of *pending* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def peak_pending(self) -> int:
        """High-water mark of simultaneously pending events."""
        return self._peak

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule *callback(*args)* at absolute *time*; return its handle."""
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, callback, args]
        heappush(self._heap, entry)
        live = self._live + 1
        self._live = live
        if live > self._peak:
            self._peak = live
        return EventHandle(entry)

    def push_anon(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        """Schedule without allocating a handle (fire-and-forget events).

        Identical ordering semantics to :meth:`push`; the event simply
        cannot be cancelled.  Used by the hot transport paths (message
        deliveries, RPC timeouts) where the handle is never looked at.
        """
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, [time, seq, callback, args])
        live = self._live + 1
        self._live = live
        if live > self._peak:
            self._peak = live

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][_TIME]

    def pop(self) -> EventHandle:
        """Remove and return the next pending event.

        Raises:
            IndexError: if no pending event remains.
        """
        self._discard_cancelled()
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        entry = heappop(self._heap)
        self._live -= 1
        return EventHandle(entry)

    def notify_cancelled(self) -> None:
        """Account for one externally cancelled handle.

        The queue cannot observe :meth:`EventHandle.cancel` directly, so the
        owner (the simulator) calls this to keep ``len()`` accurate.  When
        tombstones come to dominate the heap, the queue compacts itself.
        """
        if self._live > 0:
            self._live -= 1
        dead = self._dead + 1
        self._dead = dead
        if dead > _COMPACT_MIN_DEAD and dead * 2 > len(self._heap):
            self._compact()

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
        self._dead = 0

    def _compact(self) -> None:
        """Rebuild the heap from live entries only (O(n)).

        The rebuild is *in place* (slice assignment) so the heap list object
        is stable for the queue's whole lifetime -- ``Simulator.run`` hoists
        its reference out of the event loop.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[_CALLBACK] is not None]
        heapify(heap)
        self._dead = 0

    def _discard_cancelled(self) -> None:
        heap = self._heap
        dead = self._dead
        while heap and heap[0][_CALLBACK] is None:
            heappop(heap)
            if dead > 0:
                dead -= 1
        self._dead = dead
