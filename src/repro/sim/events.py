"""The event heap.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.  The
monotonically increasing sequence number breaks ties between events scheduled
for the same instant, so execution order is fully deterministic: events fire
in scheduling order when their times are equal.

Cancellation is *lazy*: :meth:`EventHandle.cancel` marks the handle and the
queue discards cancelled entries when they surface at the top of the heap.
This is the standard approach (also used by ``sched`` and asyncio) and keeps
both ``schedule`` and ``cancel`` O(log n) / O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Instances are returned by :meth:`EventQueue.push` (and therefore by
    ``Simulator.schedule``).  They order by ``(time, seq)`` so they can live
    directly inside the heap.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        The callback reference is dropped immediately so cancelled events do
        not keep closures (and whatever they capture) alive until they drain
        from the heap.
        """
        self.cancelled = True
        self.callback = None
        self.args = ()

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and self.callback is not None

    def _fire(self) -> None:
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        if callback is not None:
            callback(*args)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`EventHandle` objects."""

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *pending* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule *callback(*args)* at absolute *time*; return its handle."""
        handle = EventHandle(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> EventHandle:
        """Remove and return the next pending event.

        Raises:
            IndexError: if no pending event remains.
        """
        self._discard_cancelled()
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        handle = heapq.heappop(self._heap)
        self._live -= 1
        return handle

    def notify_cancelled(self) -> None:
        """Account for one externally cancelled handle.

        The queue cannot observe :meth:`EventHandle.cancel` directly, so the
        owner (the simulator) calls this to keep ``len()`` accurate.
        """
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
