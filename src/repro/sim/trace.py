"""Structured trace events.

Components emit named trace events (``"chord.lookup"``, ``"flower.hit"``,
``"churn.failure"``, ...) through the simulator.  The recorder keeps counters
for every event type, and optionally full records for the types a test or
experiment subscribes to.  Keeping full records opt-in matters: a 24-hour
run at P=5000 emits millions of events, and the metrics collector only needs
a few types.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, DefaultDict, Dict, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One recorded trace event."""

    time: float
    kind: str
    payload: Dict[str, Any]


#: Signature of a live trace listener.
TraceListener = Callable[[TraceEvent], None]


class TraceRecorder:
    """Counts every event kind; records and/or forwards subscribed kinds."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self._recorded: DefaultDict[str, List[TraceEvent]] = defaultdict(list)
        self._record_kinds: set = set()
        self._listeners: DefaultDict[str, List[TraceListener]] = defaultdict(list)

    def record(self, *kinds: str) -> None:
        """Start keeping full :class:`TraceEvent` records for *kinds*."""
        self._record_kinds.update(kinds)

    def subscribe(self, kind: str, listener: TraceListener) -> None:
        """Invoke *listener* synchronously for every event of *kind*."""
        self._listeners[kind].append(listener)

    def emit(self, time: float, kind: str, **payload: Any) -> None:
        """Emit one event.  Cheap (one Counter update) unless subscribed."""
        self.counters[kind] += 1
        listeners = self._listeners.get(kind)
        if listeners is None and kind not in self._record_kinds:
            return
        event = TraceEvent(time, kind, payload)
        if kind in self._record_kinds:
            self._recorded[kind].append(event)
        if listeners:
            for listener in listeners:
                listener(event)

    def events(self, kind: str) -> List[TraceEvent]:
        """All recorded events of *kind* (empty if not subscribed)."""
        return self._recorded.get(kind, [])

    def count(self, kind: str) -> int:
        """Number of times *kind* has been emitted."""
        return self.counters.get(kind, 0)

    def clear(self, kind: Optional[str] = None) -> None:
        """Forget recorded events (and counters) for *kind*, or for all."""
        if kind is None:
            self.counters.clear()
            self._recorded.clear()
        else:
            self.counters.pop(kind, None)
            self._recorded.pop(kind, None)
