"""Structured trace events.

Components emit named trace events (``"chord.lookup"``, ``"flower.hit"``,
``"churn.failure"``, ...) through the simulator.  The recorder keeps counters
for every event type, and optionally full records for the types a test or
experiment subscribes to.  Keeping full records opt-in matters: a 24-hour
run at P=5000 emits millions of events, and the metrics collector only needs
a few types.

Fast path: the recorder maintains one set, :attr:`_watched`, of every kind
that has a listener or is being recorded, plus two flags -- ``_watch_all``
(a firehose listener exists) and ``_counting`` (per-kind counters are
maintained; on by default).  ``Simulator.emit`` reads those three attributes
directly: when counting is disabled and a kind is unobserved, an emit is a
couple of attribute loads and a set-membership test -- no
:class:`TraceEvent` is built, nothing is appended anywhere.  Perf-critical
call sites can additionally guard on ``Simulator.tracing(kind)`` to skip
even the payload keyword-dict construction.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, DefaultDict, Dict, List, NamedTuple, Optional, Set


class TraceEvent(NamedTuple):
    """One recorded trace event."""

    time: float
    kind: str
    payload: Dict[str, Any]


#: Signature of a live trace listener.
TraceListener = Callable[[TraceEvent], None]


class TraceRecorder:
    """Counts every event kind; records and/or forwards subscribed kinds.

    Args:
        counting: maintain the per-kind emit counters (default True; disable
            for throughput-critical runs that do not read ``count()``).
    """

    def __init__(self, counting: bool = True) -> None:
        self.counters: Counter = Counter()
        self._recorded: DefaultDict[str, List[TraceEvent]] = defaultdict(list)
        self._record_kinds: Set[str] = set()
        self._listeners: DefaultDict[str, List[TraceListener]] = defaultdict(list)
        self._all_listeners: List[TraceListener] = []
        # --- fast-path interest flags (read directly by Simulator.emit) ---
        self._counting = counting
        self._watch_all = False
        self._watched: Set[str] = set()

    # -------------------------------------------------------------- interest
    @property
    def counting(self) -> bool:
        """Whether per-kind counters are being maintained."""
        return self._counting

    def set_counting(self, enabled: bool) -> None:
        """Enable/disable the per-kind counters.

        With counting off and no subscriptions, emits are (near) zero-cost;
        ``count()`` then reports only what was counted while enabled.
        """
        self._counting = enabled

    def wants(self, kind: str) -> bool:
        """True if emitting *kind* would be observed (counted, recorded,
        or forwarded to a listener)."""
        return self._counting or self._watch_all or kind in self._watched

    @property
    def enabled(self) -> bool:
        """True unless the recorder is fully quiet (no counting, no
        subscriptions of any sort)."""
        return self._counting or self._watch_all or bool(self._watched)

    # --------------------------------------------------------- subscriptions
    def record(self, *kinds: str) -> None:
        """Start keeping full :class:`TraceEvent` records for *kinds*."""
        self._record_kinds.update(kinds)
        self._watched.update(kinds)

    def subscribe(self, kind: str, listener: TraceListener) -> None:
        """Invoke *listener* synchronously for every event of *kind*."""
        self._listeners[kind].append(listener)
        self._watched.add(kind)

    def subscribe_all(self, listener: TraceListener) -> None:
        """Invoke *listener* for every event of every kind (the firehose).

        Used by determinism regression tests to fingerprint the full ordered
        event stream.  Kind-specific listeners fire before firehose
        listeners for any given event.
        """
        self._all_listeners.append(listener)
        self._watch_all = True

    # ------------------------------------------------------------------ emit
    def emit(self, time: float, kind: str, **payload: Any) -> None:
        """Emit one event.  Cheap (one Counter update) unless subscribed."""
        if self._counting:
            self.counters[kind] += 1
        if self._watch_all or kind in self._watched:
            self._dispatch(TraceEvent(time, kind, payload))

    def _dispatch(self, event: TraceEvent) -> None:
        """Record/forward an event already known to be of interest."""
        kind = event.kind
        if kind in self._record_kinds:
            self._recorded[kind].append(event)
        listeners = self._listeners.get(kind)
        if listeners:
            for listener in listeners:
                listener(event)
        if self._watch_all:
            for listener in self._all_listeners:
                listener(event)

    # ----------------------------------------------------------------- query
    def events(self, kind: str) -> List[TraceEvent]:
        """All recorded events of *kind* (empty if not subscribed)."""
        return self._recorded.get(kind, [])

    def count(self, kind: str) -> int:
        """Number of times *kind* has been emitted."""
        return self.counters.get(kind, 0)

    def clear(self, kind: Optional[str] = None) -> None:
        """Forget recorded events (and counters) for *kind*, or for all."""
        if kind is None:
            self.counters.clear()
            self._recorded.clear()
        else:
            self.counters.pop(kind, None)
            self._recorded.pop(kind, None)
