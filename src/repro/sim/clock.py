"""Time units for the simulation clock.

The simulator's clock is a float counting **milliseconds** since the start of
the experiment.  Milliseconds are the natural unit because the paper's link
latencies span 10-500 ms, while its protocol periods are given in minutes and
hours (Table 1).  These helpers keep unit conversions explicit at call sites:
``sim.schedule(minutes(6), ...)`` reads as the paper writes it.
"""

from __future__ import annotations

#: One millisecond -- the base unit of the simulation clock.
MS: float = 1.0

#: Milliseconds in one second.
SECOND: float = 1000.0 * MS

#: Milliseconds in one minute.
MINUTE: float = 60.0 * SECOND

#: Milliseconds in one hour.
HOUR: float = 60.0 * MINUTE


def seconds(value: float) -> float:
    """Convert *value* seconds to simulation-clock milliseconds."""
    return value * SECOND


def minutes(value: float) -> float:
    """Convert *value* minutes to simulation-clock milliseconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Convert *value* hours to simulation-clock milliseconds."""
    return value * HOUR


def ms_to_minutes(value_ms: float) -> float:
    """Convert simulation-clock milliseconds to minutes."""
    return value_ms / MINUTE


def ms_to_hours(value_ms: float) -> float:
    """Convert simulation-clock milliseconds to hours."""
    return value_ms / HOUR
