"""Conservative windowed execution of sharded simulations.

Classic conservative parallel discrete-event simulation, specialized to the
latency model: all shards advance in lockstep through windows of
``window_ms`` virtual milliseconds.  Within a window every shard runs its
own :class:`~repro.sim.engine.Simulator` independently; at the barrier the
shards exchange the cross-shard messages generated during the window and
only then advance into the next one.

Ordering is the whole game.  Every boundary entry is stamped with its
natural arrival time and its position in the source shard's outbox;
:func:`route_entries` merges all outboxes into per-destination lists sorted
by the canonical key ``(arrival, src_shard, serial)``.  Destination shards
schedule the entries in that order (equal-time events fire in scheduling
order), so the merged event stream of a shard is a pure function of the
configuration and seed -- **independent of how shards are spread over
worker processes**.  That is what the shard-count invariance tests pin.

The lookahead bound: a delivery event for a cross-shard message fires at
``send + latency`` in the source shard, is shipped at the following barrier
and floored to it, so every boundary hop is delayed by at most one window.
With ``window <= latency_max`` a cross-shard round trip therefore takes at
most ``2 * (latency_max + window)``; sharded runs widen their RPC timeouts
by ``2 * window`` (see :mod:`repro.experiments.sharded`) so failure
detection never misfires on bus scheduling delay alone.

Multi-process execution uses a parent-hub barrier: workers (forked, one
slice of shards each) send their outboxes to the parent, the parent runs
the same :func:`route_entries` merge a single-process run uses and sends
each worker its inboxes.  The hub fully drains every worker before
answering any of them, so the exchange cannot deadlock.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from typing import Any, Callable, Dict, List, Protocol, Tuple

from repro.errors import ConfigError, SimulationError
from repro.sim.engine import Simulator


class ShardCellLike(Protocol):
    """What the window scheduler needs from one shard's world."""

    def run_to(self, until_ms: float) -> None: ...

    def drain(self) -> List[tuple]: ...

    def inject(self, entries: List[tuple], barrier_ms: float) -> None: ...

    def finalize(self) -> Dict[str, Any]: ...


#: Builds the cells for one worker: shard_ids -> {shard_id: cell}.
CellFactory = Callable[[List[int]], Dict[int, ShardCellLike]]


def route_entries(outboxes: Dict[int, List[tuple]]) -> Dict[int, List[tuple]]:
    """Merge per-source outboxes into canonically ordered per-dst inboxes.

    *outboxes* maps source shard id -> that shard's outbox (in generation
    order).  Entries carry ``(tag, arrival, dst_shard, ...)``; the merge
    key is ``(arrival, src_shard, serial)`` where serial is the entry's
    position in its source outbox.  The same function runs in-process and
    in the parent hub, so the delivery order -- and therefore every event
    stream -- is identical for any worker count.
    """
    tagged: List[Tuple[float, int, int, tuple]] = []
    for src_shard in sorted(outboxes):
        for serial, entry in enumerate(outboxes[src_shard]):
            tagged.append((entry[1], src_shard, serial, entry))
    tagged.sort(key=lambda item: (item[0], item[1], item[2]))
    inboxes: Dict[int, List[tuple]] = {}
    for __, __, __, entry in tagged:
        inboxes.setdefault(entry[2], []).append(entry)
    return inboxes


def run_windows(
    cells: Dict[int, ShardCellLike],
    horizon_ms: float,
    window_ms: float,
) -> Dict[int, Dict[str, Any]]:
    """Single-process windowed loop over all shards (workers=1 reference).

    Also the semantic reference for the multi-process driver: both use the
    same drain/route/inject sequence at every barrier, which is what makes
    worker count unobservable in the results.
    """
    if window_ms <= 0:
        raise ConfigError(f"window must be positive (got {window_ms})")
    ordered = sorted(cells)
    now = 0.0
    while now < horizon_ms:
        barrier = min(now + window_ms, horizon_ms)
        for sid in ordered:
            cells[sid].run_to(barrier)
        if barrier >= horizon_ms:
            break
        outboxes = {sid: cells[sid].drain() for sid in ordered}
        inboxes = route_entries(outboxes)
        for sid in ordered:
            cells[sid].inject(inboxes.get(sid, []), barrier)
        now = barrier
    return {sid: cells[sid].finalize() for sid in ordered}


# --------------------------------------------------------------------- multi
def _worker_main(
    conn,
    factory: CellFactory,
    shard_ids: List[int],
    horizon_ms: float,
    window_ms: float,
) -> None:
    """One forked worker: runs its shard slice window by window.

    Protocol (per window, in lockstep with the parent): send
    ``("out", {sid: outbox})``, receive ``("in", {sid: inbox})``.  After the
    final window: send ``("done", {sid: finalize()})``.
    """
    try:
        cells = factory(shard_ids)
        ordered = sorted(cells)
        now = 0.0
        while now < horizon_ms:
            barrier = min(now + window_ms, horizon_ms)
            for sid in ordered:
                cells[sid].run_to(barrier)
            if barrier >= horizon_ms:
                break
            conn.send(("out", {sid: cells[sid].drain() for sid in ordered}))
            tag, inboxes = conn.recv()
            if tag != "in":  # pragma: no cover - protocol violation
                raise SimulationError(f"unexpected hub message {tag!r}")
            for sid in ordered:
                cells[sid].inject(inboxes.get(sid, []), barrier)
            now = barrier
        conn.send(("done", {sid: cells[sid].finalize() for sid in ordered}))
    except Exception as exc:  # pragma: no cover - surfaced by the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        conn.close()


def run_windows_parallel(
    factory: CellFactory,
    num_shards: int,
    workers: int,
    horizon_ms: float,
    window_ms: float,
) -> Dict[int, Dict[str, Any]]:
    """Run the windowed loop across forked worker processes.

    Worker ``j`` owns shards ``{s : s % workers == j}``.  The parent is a
    pure message hub: at each barrier it drains every worker's outboxes,
    routes them with :func:`route_entries` (identical to the in-process
    merge) and answers each worker with its inboxes.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1 (got {workers})")
    if num_shards % workers != 0:
        raise ConfigError(
            f"workers={workers} does not divide the {num_shards}-shard map "
            f"cleanly; choose a divisor of {num_shards}"
        )
    if workers == 1:
        return run_windows(factory(list(range(num_shards))), horizon_ms, window_ms)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        raise ConfigError(
            "sharded execution with workers > 1 needs the 'fork' start "
            "method; rerun with --workers 1"
        ) from None
    slices = [
        [sid for sid in range(num_shards) if sid % workers == j] for j in range(workers)
    ]
    pipes = []
    processes = []
    try:
        for worker_shards in slices:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, factory, worker_shards, horizon_ms, window_ms),
            )
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            processes.append(process)
        results: Dict[int, Dict[str, Any]] = {}
        done = [False] * workers
        while not all(done):
            outboxes: Dict[int, List[tuple]] = {}
            window_active = [False] * workers
            for j, conn in enumerate(pipes):
                if done[j]:
                    continue
                tag, body = conn.recv()
                if tag == "out":
                    outboxes.update(body)
                    window_active[j] = True
                elif tag == "done":
                    results.update(body)
                    done[j] = True
                else:
                    raise SimulationError(f"shard worker {j} failed: {body}")
            if not any(window_active):
                break
            inboxes = route_entries(outboxes)
            for j, conn in enumerate(pipes):
                if window_active[j]:
                    conn.send(
                        ("in", {sid: inboxes.get(sid, []) for sid in slices[j]})
                    )
        return results
    finally:
        for conn in pipes:
            conn.close()
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hang safety valve
                process.terminate()
                process.join()


# --------------------------------------------------------------- fingerprint
class StreamFingerprint:
    """SHA-256 chain over a simulator's full ordered trace stream.

    The same scheme the determinism regression tests use: one repr of
    ``(rounded time, kind, sorted payload)`` per event, folded into a
    running hash.  Attaching one subscribes the firehose, which makes every
    ``emit`` construct its payload -- observation-only, but not free; leave
    it off for timing runs.
    """

    def __init__(self, sim: Simulator) -> None:
        self._hash = hashlib.sha256()
        sim.trace.subscribe_all(self._observe)

    def _observe(self, event) -> None:
        line = repr((round(event.time, 9), event.kind, sorted(event.payload.items())))
        self._hash.update(line.encode("utf-8"))

    def hexdigest(self) -> str:
        return self._hash.hexdigest()
