"""Periodic processes.

Most maintenance behaviour in the paper is periodic: gossip exchanges and
keepalive messages every hour (Table 1), Chord stabilization, query
generation every 6 minutes.  :class:`PeriodicProcess` wraps the schedule /
reschedule / cancel dance and supports two refinements the experiments need:

- **phase jitter** -- real peers do not tick in lock-step; an optional
  random initial phase (and per-tick jitter) desynchronizes the population,
  which avoids artificial event storms at exact multiples of the period.
- **clean cancellation** -- when a peer fails, all its processes must stop;
  cancelling is O(1) and idempotent.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle

#: ``EventHandle.__new__`` bound once -- the per-tick reschedule builds the
#: handle by slot assignment instead of paying a constructor frame.
_new_handle = EventHandle.__new__


class PeriodicProcess:
    """Run ``callback()`` every *period* ms until cancelled.

    Args:
        sim: the owning simulator.
        period: tick period in ms (must be positive).
        callback: zero-argument callable invoked each tick.
        initial_delay: delay before the first tick; defaults to one full
            period.  Pass ``0.0`` to tick immediately.
        jitter: if non-zero, each inter-tick gap is drawn uniformly from
            ``[period * (1 - jitter), period * (1 + jitter)]``.
        rng: random stream used for jitter (required when jitter > 0).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        initial_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError(f"jitter must be in [0, 1) (got {jitter})")
        if jitter > 0.0 and rng is None:
            raise SimulationError("jitter requires an rng stream")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._handle: Optional[EventHandle] = None
        self._ticks = 0
        self._cancelled = False
        #: ``self._tick`` bound once: rescheduling happens every tick, and a
        #: fresh bound method per schedule is measurable at fleet scale.
        self._tick_cb = self._tick
        first = period if initial_delay is None else initial_delay
        self._handle = sim.schedule(first, self._tick_cb)

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    @property
    def active(self) -> bool:
        """True while the process will keep ticking."""
        return not self._cancelled

    def cancel(self) -> None:
        """Stop the process.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None

    def _next_gap(self) -> float:
        if self._jitter == 0.0:
            return self._period
        assert self._rng is not None
        low = self._period * (1.0 - self._jitter)
        high = self._period * (1.0 + self._jitter)
        return self._rng.uniform(low, high)

    def _tick(self) -> None:
        if self._cancelled:  # cancelled while the tick event was in flight
            return
        self._ticks += 1
        # Reschedule before running the callback so the callback may cancel
        # the process (a peer deciding to leave mid-tick must not resurrect).
        #
        # The gap draw (= _next_gap), ``rng.uniform``, ``sim.schedule`` and
        # ``EventQueue.push`` are all inlined below: a tick is two Python
        # frames (this one and the callback) instead of six, and every
        # periodic process in the system ticks for the whole run.
        jitter = self._jitter
        period = self._period
        if jitter == 0.0:
            gap = period
        else:
            low = period * (1.0 - jitter)
            high = period * (1.0 + jitter)
            # rng.uniform(low, high), inlined -- same float expression, so
            # the drawn sequence is bit-identical.
            gap = low + (high - low) * self._rng.random()
        sim = self._sim
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        entry = [sim.now + gap, seq, self._tick_cb, ()]
        heappush(queue._heap, entry)
        live = queue._live + 1
        queue._live = live
        if live > queue._peak:
            queue._peak = live
        handle = _new_handle(EventHandle)
        handle._entry = entry
        handle.cancelled = False
        self._handle = handle
        self._callback()


def desynchronized_start(period: float, rng: random.Random) -> float:
    """A random initial delay in ``[0, period)``.

    Used when many peers start the same periodic protocol at once (e.g. the
    initial directory-peer population): spreading first ticks uniformly over
    one period models peers that joined at different real times.
    """
    return rng.uniform(0.0, period)
