"""Deterministic named random streams.

Every stochastic component of the simulation (topology generation, churn,
workload, gossip peer selection, ...) draws from its own named stream.  Two
properties follow:

1. **Reproducibility** -- a whole experiment is a pure function of
   ``(config, master_seed)``; re-running with the same seed replays the same
   trajectory event for event.
2. **Variance isolation** -- changing how one component consumes randomness
   (say, adding a jitter draw to gossip) does not perturb the random
   sequences seen by unrelated components, which keeps A/B comparisons
   between protocol variants meaningful.

Stream seeds are derived from the master seed and the stream name with
SHA-256, so they are stable across processes and Python versions
(``hash()`` is randomized per process and must not be used here).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from *master_seed* and a stream *name*."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream called *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so consumers may either hold a reference or re-fetch it each time.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose master seed is derived from *name*.

        Useful for sub-experiments (e.g. independent repetitions) that need
        their own namespace of streams.
        """
        return RngRegistry(derive_seed(self.master_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(master_seed={self.master_seed}, streams={sorted(self._streams)})"
