"""Network substrate: synthetic latency topologies and message transport.

The paper's simulation "generate[s] an underlying topology of peers connected
with links of variable latencies between 10 and 500 ms" and bins peers into
k = 6 localities with a landmark technique (section 6.1, citing Ratnasamy et
al.).  This package reproduces both:

- :mod:`repro.net.topology` -- latency models (clustered Euclidean space,
  uniform random pairwise latencies, explicit matrices);
- :mod:`repro.net.landmarks` -- landmark-based locality binning;
- :mod:`repro.net.transport` -- a :class:`~repro.net.transport.Network` that
  delivers messages through the event engine with per-link latency, models
  node liveness, and offers RPC-with-timeout semantics (how peers *detect*
  failures in the maintenance protocols of section 5).
"""

from repro.net.landmarks import LandmarkBinner
from repro.net.message import Message
from repro.net.topology import (
    ClusteredTopology,
    ExplicitTopology,
    Topology,
    UniformRandomTopology,
)
from repro.net.transport import Network, NetworkNode

__all__ = [
    "LandmarkBinner",
    "Message",
    "Topology",
    "ClusteredTopology",
    "UniformRandomTopology",
    "ExplicitTopology",
    "Network",
    "NetworkNode",
]
