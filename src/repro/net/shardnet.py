"""Sharded network fabric: structured addresses, pure topology, bus boundary.

The sharded execution layer (:mod:`repro.sim.sharded`) runs one
:class:`~repro.sim.engine.Simulator` per *shard* -- a group of localities --
possibly in separate worker processes.  Three things make that possible
without any shared mutable state between shards:

1. **Structured addresses** (:class:`ShardMap`).  Every address encodes its
   shard and its locality: shard ``s`` owns the block
   ``[s * 2**16, (s+1) * 2**16)``, whose first ``num_websites`` slots hold
   the shard's own origin-server replicas and whose remainder is split into
   equal per-locality sub-blocks.  Any shard can decode any address it sees
   in a message without asking anyone.

2. **A pure-function topology** (:class:`ShardedTopology`).  A peer's
   coordinates are a deterministic function of its address alone (seeded
   hash -> Gaussian scatter around its locality's cluster centre), so
   ``latency(a, b)`` is computable in *any* shard for *any* pair of
   addresses -- cross-shard sends price their link at the source exactly as
   local sends do.  This replaces the registration-order-dependent RNG of
   :class:`~repro.net.topology.ClusteredTopology`, whose draws could never
   be kept consistent across independently running shards.

3. **A bus boundary in delivery** (:class:`ShardedNetwork`).  The transport
   send paths are untouched; when the delivery event for a message addressed
   to a foreign shard fires, the message becomes an *outbox entry* instead
   of a local dispatch.  The window scheduler drains outboxes at every
   barrier and injects them into the destination shards in a canonical
   order (see :mod:`repro.sim.sharded`).

Because ``Network._link_latency`` packs latency-cache keys as
``(src << ADDR_SHIFT) | dst``, the full sharded address space must stay
below ``2**ADDR_SHIFT`` (32 bits today): with 16-bit blocks that caps
the map at 65536 shards — far beyond any practical host count.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError, TransportError
from repro.net.message import Message
from repro.net.topology import Topology
from repro.net.transport import ADDR_SHIFT, Network, NetworkNode, _RpcContext
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.types import Address, Coordinate, LocalityId

#: Bits per shard address block (64k addresses per shard).
BLOCK_BITS = 16

#: Hard cap on shards: (num_shards << BLOCK_BITS) must stay below
#: 2**ADDR_SHIFT because the transport's latency cache packs keys as
#: (src << ADDR_SHIFT) | dst.
MAX_SHARDS = 1 << (ADDR_SHIFT - BLOCK_BITS)

#: Outbox entry tags (tuple position 0).
MSG = "m"
REPLY = "r"


class ShardMap:
    """The static partition of the world into shards.

    Localities are assigned round-robin (``shard_of_locality(loc) =
    loc % num_shards``); ``num_localities`` must divide evenly so every
    shard carries the same number of localities.

    Args:
        num_shards: number of shards (1..MAX_SHARDS).
        num_localities: the experiment's locality count k.
        num_websites: |W|; sizes the per-shard origin-server block.
    """

    def __init__(self, num_shards: int, num_localities: int, num_websites: int) -> None:
        if num_shards < 1:
            raise ConfigError(f"need at least one shard (got {num_shards})")
        if num_shards > MAX_SHARDS:
            raise ConfigError(
                f"at most {MAX_SHARDS} shards fit the packed address space "
                f"(got {num_shards}); pass a smaller num_shards"
            )
        if num_shards > num_localities:
            raise ConfigError(
                f"{num_shards} shards but only {num_localities} localities; "
                f"a shard cannot be empty"
            )
        if num_localities % num_shards != 0:
            raise ConfigError(
                f"num_shards={num_shards} does not divide "
                f"num_localities={num_localities} cleanly; choose a divisor "
                f"of {num_localities}"
            )
        if num_websites < 1:
            raise ConfigError("need at least one website")
        block = 1 << BLOCK_BITS
        per_shard_localities = num_localities // num_shards
        peer_space = block - num_websites
        if peer_space < per_shard_localities:
            raise ConfigError(
                f"{num_websites} origin servers leave no room for peers in a "
                f"{block}-address shard block"
            )
        self.num_shards = num_shards
        self.num_localities = num_localities
        self.num_websites = num_websites
        self.localities_per_shard = per_shard_localities
        #: addresses available per (shard, locality) sub-block.
        self.locality_capacity = peer_space // per_shard_localities

    # ------------------------------------------------------------- structure
    def shard_of_locality(self, locality: LocalityId) -> int:
        return locality % self.num_shards

    def localities_of(self, shard: int) -> Tuple[LocalityId, ...]:
        """The localities shard *shard* owns, ascending."""
        return tuple(
            loc for loc in range(self.num_localities) if loc % self.num_shards == shard
        )

    # ------------------------------------------------------------- addresses
    def shard_of_address(self, address: Address) -> int:
        return address >> BLOCK_BITS

    def server_address(self, shard: int, website: int) -> Address:
        """Address of shard-local origin-server replica of *website*."""
        return (shard << BLOCK_BITS) | website

    def peer_address(self, shard: int, locality: LocalityId, index: int) -> Address:
        """The *index*-th peer address of *locality* inside *shard*."""
        if index >= self.locality_capacity:
            raise TransportError(
                f"locality {locality} address sub-block exhausted "
                f"({self.locality_capacity} slots)"
            )
        slot = self.localities_of(shard).index(locality)
        offset = self.num_websites + slot * self.locality_capacity + index
        return (shard << BLOCK_BITS) | offset

    def is_server_address(self, address: Address) -> bool:
        return (address & ((1 << BLOCK_BITS) - 1)) < self.num_websites

    def locality_of_address(self, address: Address) -> LocalityId:
        """The locality any address belongs to, decodable anywhere.

        Origin-server replicas are pinned to one of their hosting shard's
        localities (``website % localities_per_shard``) so partitions and
        latency behave as if the server were an in-region host.
        """
        shard = address >> BLOCK_BITS
        offset = address & ((1 << BLOCK_BITS) - 1)
        local = self.localities_of(shard)
        if offset < self.num_websites:
            return local[offset % len(local)]
        slot = (offset - self.num_websites) // self.locality_capacity
        if slot >= len(local):
            raise TransportError(f"address {address} outside any locality sub-block")
        return local[slot]

    def seed_peer_address(self, website: int, locality: LocalityId) -> Address:
        """Address of the seed directory peer of petal (website, locality).

        Seed peers are the first registrations in each locality and are
        created in ``DRingKeyService.all_positions`` order (website-major),
        so the seed of (ws, loc) always lands at per-locality index ws.
        This is what lets every shard compute the full initial D-ring
        membership table locally (see ShardedFlowerSystem).
        """
        return self.peer_address(self.shard_of_locality(locality), locality, website)


class ShardedBinner:
    """Exact locality binning from the structured address.

    Stands in for :class:`~repro.net.landmarks.LandmarkBinner` in sharded
    runs: the locality is decoded from the address instead of probabilistic
    landmark probing, so it is identical in every shard (a documented
    deviation -- see docs/PROTOCOLS.md section 10).
    """

    def __init__(self, shard_map: ShardMap) -> None:
        self.num_localities = shard_map.num_localities
        self._map = shard_map

    def locality_of(self, address: Address) -> LocalityId:
        return self._map.locality_of_address(address)


class ShardedTopology(Topology):
    """Clustered latency model as a pure function of the address.

    Geometry matches :class:`~repro.net.topology.ClusteredTopology` (cluster
    centres on a jittered circle, Gaussian scatter, affine distance-to-
    latency map); only the randomness source differs: every coordinate is
    derived from ``(topology_seed, address)``, never from registration
    order.  All shards construct this object from the same master seed and
    therefore agree on every pairwise latency.
    """

    _MAX_DISTANCE = math.sqrt(2.0)

    def __init__(
        self,
        shard_map: ShardMap,
        topology_seed: int,
        latency_min_ms: float = 10.0,
        latency_max_ms: float = 500.0,
        spread: float = 0.04,
    ) -> None:
        if not 0 < latency_min_ms < latency_max_ms:
            raise ConfigError(
                f"need 0 < latency_min < latency_max "
                f"(got {latency_min_ms}, {latency_max_ms})"
            )
        self._map = shard_map
        self._seed = topology_seed
        self.latency_min_ms = latency_min_ms
        self.latency_max_ms = latency_max_ms
        self.spread = spread
        self.num_clusters = shard_map.num_localities
        rng = random.Random(derive_seed(topology_seed, "sharded-centers"))
        self.centers: List[Coordinate] = []
        for i in range(self.num_clusters):
            angle = 2.0 * math.pi * i / self.num_clusters
            jitter_x = rng.uniform(-0.03, 0.03)
            jitter_y = rng.uniform(-0.03, 0.03)
            x = 0.5 + 0.38 * math.cos(angle) + jitter_x
            y = 0.5 + 0.38 * math.sin(angle) + jitter_y
            self.centers.append((min(max(x, 0.0), 1.0), min(max(y, 0.0), 1.0)))
        self._positions: Dict[Address, Coordinate] = {}
        self._registered: set = set()

    def register(self, address: Address, cluster_hint: Optional[int] = None) -> None:
        if address in self._registered:
            raise ConfigError(f"address {address} already registered")
        self._registered.add(address)

    def knows(self, address: Address) -> bool:
        return address in self._registered

    def cluster_of(self, address: Address) -> int:
        return self._map.locality_of_address(address)

    def position(self, address: Address) -> Coordinate:
        pos = self._positions.get(address)
        if pos is None:
            cx, cy = self.centers[self._map.locality_of_address(address)]
            rng = random.Random(derive_seed(self._seed, f"sharded-pos:{address}"))
            x = min(max(rng.gauss(cx, self.spread), 0.0), 1.0)
            y = min(max(rng.gauss(cy, self.spread), 0.0), 1.0)
            pos = (x, y)
            self._positions[address] = pos
        return pos

    def latency_at(self, pa: Coordinate, pb: Coordinate) -> float:
        dist = math.hypot(pa[0] - pb[0], pa[1] - pb[1])
        fraction = dist / self._MAX_DISTANCE
        return self.latency_min_ms + fraction * (self.latency_max_ms - self.latency_min_ms)

    def latency(self, a: Address, b: Address) -> float:
        if a == b:
            return 0.0
        return self.latency_at(self.position(a), self.position(b))


class ShardedNetwork(Network):
    """One shard's slice of the fabric, with a bus boundary in delivery.

    Addresses come from the :class:`ShardMap` instead of a dense counter;
    the node registry is a dict keyed by global address.  The send paths
    (``NetworkNode.send`` / ``rpc``) are inherited unchanged -- the pure
    topology prices any link, local or not -- and the fork happens when the
    delivery event fires: a foreign destination turns the message into an
    outbox entry that the window scheduler ships at the next barrier.

    Outbox entry wire forms (plain tuples, picklable)::

        (MSG,   arrival, dst_shard, dst, kind, payload, src, sent_at, token)
        (REPLY, arrival, dst_shard, token, payload, replier)

    ``arrival`` is the virtual time the delivery event fired (request) or
    the reply would naturally land (reply); the scheduler floors it to the
    injection barrier.  ``token`` is ``(src_shard, serial)`` correlating a
    cross-shard RPC to its pending context at the source, or None for
    one-way messages.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: ShardedTopology,
        shard_map: ShardMap,
        shard_id: int,
        default_timeout_ms: float = 2000.0,
    ) -> None:
        super().__init__(sim, topology, default_timeout_ms)
        self.shard_map = shard_map
        self.shard_id = shard_id
        #: global address -> node, replacing the base class's dense list.
        self._nodes: Dict[Address, NetworkNode] = {}
        self._localities = shard_map.localities_of(shard_id)
        self._locality_fill: Dict[LocalityId, int] = {loc: 0 for loc in self._localities}
        self._infra_mode = False
        self._infra_count = 0
        self._placement_rng = sim.rng("placement")
        #: entries bound for other shards, drained at every barrier.
        self.outbox: List[tuple] = []
        self._pending_remote: Dict[Tuple[int, int], _RpcContext] = {}
        self._remote_serial = 0
        self.bus_entries_out = 0
        self.bus_entries_in = 0

    # -------------------------------------------------------------- registry
    @contextmanager
    def infra_registration(self):
        """Within this context, registrations take origin-server slots."""
        self._infra_mode = True
        try:
            yield self
        finally:
            self._infra_mode = False

    def register(self, node: NetworkNode, cluster_hint: Optional[int] = None) -> Address:
        if self._infra_mode:
            if self._infra_count >= self.shard_map.num_websites:
                raise TransportError("origin-server address block exhausted")
            address = self.shard_map.server_address(self.shard_id, self._infra_count)
            self._infra_count += 1
        else:
            if cluster_hint is None:
                locality = self._placement_rng.choice(self._localities)
            elif cluster_hint in self._locality_fill:
                locality = cluster_hint
            else:
                raise TransportError(
                    f"locality {cluster_hint} is not owned by shard {self.shard_id}"
                )
            index = self._locality_fill[locality]
            self._locality_fill[locality] = index + 1
            address = self.shard_map.peer_address(self.shard_id, locality, index)
        self._nodes[address] = node
        self.topology.register(address, cluster_hint)
        return address

    def node(self, address: Address) -> NetworkNode:
        found = self._nodes.get(address)
        if found is None:
            raise TransportError(f"unknown address {address}")
        return found

    def is_alive(self, address: Address) -> bool:
        found = self._nodes.get(address)
        return found is not None and found.alive

    def is_local(self, address: Address) -> bool:
        return (address >> BLOCK_BITS) == self.shard_id

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[NetworkNode]:
        return iter(self._nodes.values())

    # -------------------------------------------------------------- delivery
    def _deliver(self, message: Message, context: Optional[_RpcContext]) -> None:
        dst = message.dst
        if (dst >> BLOCK_BITS) != self.shard_id:
            # Foreign shard: the link latency has already elapsed (this event
            # fired at send + latency); ship the message over the bus.  The
            # RPC timeout event stays local and fires unless a reply entry
            # comes back and settles the context first.
            token = None
            if context is not None:
                token = (self.shard_id, self._remote_serial)
                self._remote_serial += 1
                self._pending_remote[token] = context
            self.outbox.append(
                (
                    MSG,
                    self.sim.now,
                    dst >> BLOCK_BITS,
                    dst,
                    message.kind,
                    message.payload,
                    message.src,
                    message.sent_at,
                    token,
                )
            )
            self.bus_entries_out += 1
            return
        dst_node = self._nodes.get(dst)
        if dst_node is None or not dst_node.alive:
            self._drop("dead_dst", message.kind, dst)
            return
        if self.faults is not None or self._drop_rate > 0.0:
            cause = self._delivery_drop_cause(message.src, dst)
            if cause is not None:
                self._drop(cause, message.kind, dst)
                return
        handler = dst_node._handler_cache.get(message.kind)
        reply = dst_node.on_message(message) if handler is None else handler(message)
        if context is not None:
            self.messages_sent += 1
            src = message.src
            latency = self._link_latency(dst, src)
            self.sim.defer(
                latency,
                self._deliver_reply_cb,
                context,
                dst,
                reply if reply is not None else {},
            )

    # ------------------------------------------------------------------- bus
    def inject_entries(self, entries: List[tuple], barrier: float) -> None:
        """Schedule canonically ordered foreign entries into this shard.

        Entries whose natural arrival predates the barrier are floored to
        it (the conservative-window rule); later arrivals (reply legs whose
        link latency exceeds the window) keep their natural time.  Called
        with both simulators at *barrier*, in the order produced by
        :func:`repro.sim.sharded.route_entries`, so equal-time deliveries
        fire in canonical bus order.
        """
        sim = self.sim
        for entry in entries:
            self.bus_entries_in += 1
            when = entry[1]
            if when < barrier:
                when = barrier
            if entry[0] == MSG:
                sim.schedule_at(when, self._apply_remote_message, entry)
            else:
                sim.schedule_at(when, self._apply_remote_reply, entry)

    def _apply_remote_message(self, entry: tuple) -> None:
        __, __, __, dst, kind, payload, src, sent_at, token = entry
        dst_node = self._nodes.get(dst)
        if dst_node is None or not dst_node.alive:
            self._drop("dead_dst", kind, dst)
            return
        if self.faults is not None or self._drop_rate > 0.0:
            cause = self._delivery_drop_cause(src, dst)
            if cause is not None:
                self._drop(cause, kind, dst)
                return
        message = Message(src, dst, kind, payload, sent_at=sent_at)
        handler = dst_node._handler_cache.get(kind)
        reply = dst_node.on_message(message) if handler is None else handler(message)
        if token is not None:
            self.messages_sent += 1
            latency = self._link_latency(dst, src)
            self.outbox.append(
                (
                    REPLY,
                    self.sim.now + latency,
                    token[0],
                    token,
                    reply if reply is not None else {},
                    dst,
                )
            )
            self.bus_entries_out += 1

    def _apply_remote_reply(self, entry: tuple) -> None:
        __, __, __, token, payload, replier = entry
        context = self._pending_remote.pop(token, None)
        if context is None:
            return  # already timed out and swept
        if self.faults is not None or self._drop_rate > 0.0:
            cause = self._delivery_drop_cause(replier, context.src.address)
            if cause is not None:
                self._drop(cause, "(reply)", context.src.address)
                return
        context.fire_reply(payload)

    def sweep_settled(self) -> None:
        """Drop pending cross-shard RPC contexts that have settled.

        A context settles either when its reply entry arrives or when its
        local timeout event fires; either way the map entry is dead weight.
        The window scheduler calls this at every barrier so never-answered
        RPCs (dead destination, dropped reply) do not accumulate.
        """
        pending = self._pending_remote
        if pending:
            settled = [token for token, ctx in pending.items() if ctx.settled]
            for token in settled:
                del pending[token]


def drain_outbox(network: ShardedNetwork) -> List[tuple]:
    """Take the shard's accumulated outbox (clearing it) and sweep RPCs."""
    entries = network.outbox
    network.outbox = []
    network.sweep_settled()
    return entries


def make_payload_picklable(payload: Dict[str, Any]) -> Dict[str, Any]:  # pragma: no cover
    """Debugging helper: verify a boundary payload survives pickling."""
    import pickle

    return pickle.loads(pickle.dumps(payload))
