"""Fault injection: bursty loss, partitions, latency spikes, mass failures.

The seed harness could only stress the protocols two ways -- i.i.d. uniform
message loss (:meth:`~repro.net.transport.Network.configure_loss`) and
independent crash churn.  Real overlay stress is *correlated*: routers fail
and take whole localities offline, congested links drop packets in bursts,
backbone cuts partition the network for minutes and then heal.  This module
provides those scenarios as schedulable, reproducible fault campaigns:

- **Gilbert-Elliott bursty loss** -- a two-state Markov chain per link
  (good/bad); the bad state drops with high probability, producing the
  loss *bursts* that defeat single-shot RPC failure detection;
- **network partitions** -- traffic crossing a locality (or explicit
  address-set) boundary is cut in both directions between a start and a
  heal time;
- **latency-degradation windows** -- a multiplier and/or additive spike on
  selected links for a while (congestion, route flaps);
- **mass-failure campaigns** -- crash a fraction of a locality's peers, or
  every directory peer, at a scheduled instant (correlated churn, the
  paper's "worst scenarios").

Everything is driven by the deterministic simulation clock, and every
random draw comes from one dedicated RNG stream (``"faults"`` by default),
so a run with fault injection is exactly as reproducible as one without:
identical seeds produce identical trajectories, fault for fault.

Declarative specs (:class:`PartitionSpec` & friends) are hashable frozen
dataclasses so they can ride inside the frozen
:class:`~repro.experiments.config.ExperimentConfig`; the experiment runner
turns a ``fault_schedule`` tuple of specs into a live controller via
:meth:`FaultController.apply`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.sim.engine import Simulator
from repro.types import Address

#: Maps an address to its locality (or None when unknowable); partitions
#: and locality-scoped campaigns evaluate it lazily at delivery time, so
#: peers that register *after* the fault was scheduled are still covered.
LocalityFn = Callable[[Address], Optional[int]]


# ---------------------------------------------------------------------------
# Declarative fault specs (hashable; embeddable in ExperimentConfig)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BurstyLossSpec:
    """Gilbert-Elliott two-state bursty loss on every link.

    Attributes:
        p_good_to_bad: per-delivery probability of entering the bad state.
        p_bad_to_good: per-delivery probability of leaving it; the mean
            burst length is ``1 / p_bad_to_good`` deliveries.
        loss_good / loss_bad: drop probability in each state.  The
            stationary loss rate is
            ``pi_bad * loss_bad + (1 - pi_bad) * loss_good`` with
            ``pi_bad = p_gb / (p_gb + p_bg)``.
        start_ms / end_ms: active window (``end_ms=None`` = forever).
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    start_ms: float = 0.0
    end_ms: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise TransportError(f"{name} must be in [0, 1] (got {value})")
        if self.p_bad_to_good == 0.0 and self.p_good_to_bad > 0.0:
            raise TransportError("p_bad_to_good=0 would make bursts permanent")

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run fraction of deliveries dropped."""
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return self.loss_good
        pi_bad = self.p_good_to_bad / total
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


@dataclass(frozen=True)
class PartitionSpec:
    """Cut all traffic between *locality* and the rest of the network
    (both directions) from ``start_ms`` until ``heal_ms``."""

    locality: int
    start_ms: float
    heal_ms: float

    def __post_init__(self) -> None:
        if self.heal_ms <= self.start_ms:
            raise TransportError("partition must heal after it starts")


@dataclass(frozen=True)
class LatencySpikeSpec:
    """Degrade link latency inside a time window.

    ``locality=None`` hits every link; otherwise only links with at least
    one endpoint in that locality are degraded.
    """

    start_ms: float
    end_ms: float
    multiplier: float = 1.0
    additive_ms: float = 0.0
    locality: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise TransportError("latency spike must end after it starts")
        if self.multiplier < 1.0 or self.additive_ms < 0.0:
            raise TransportError("latency spikes only ever make links worse")


@dataclass(frozen=True)
class MassFailureSpec:
    """Crash a fraction of matching peers at one scheduled instant.

    ``locality=None`` draws from the whole population;
    ``directories_only=True`` restricts the campaign to nodes currently
    holding a directory role (Flower's D-ring wipe scenario).
    """

    at_ms: float
    fraction: float = 0.5
    locality: Optional[int] = None
    directories_only: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise TransportError("mass-failure fraction must be in (0, 1]")


#: Union accepted by :meth:`FaultController.apply`.
FaultSpec = object


# ---------------------------------------------------------------------------
# Live fault machinery
# ---------------------------------------------------------------------------

class _GilbertElliottLink:
    """Per-link two-state Markov loss process (evolves one step per
    delivery attempt, the classic packet-level formulation)."""

    __slots__ = ("bad",)

    def __init__(self) -> None:
        self.bad = False

    def step_and_drop(self, spec: BurstyLossSpec, rng: random.Random) -> bool:
        if self.bad:
            if rng.random() < spec.p_bad_to_good:
                self.bad = False
        else:
            if rng.random() < spec.p_good_to_bad:
                self.bad = True
        loss = spec.loss_bad if self.bad else spec.loss_good
        return loss > 0.0 and rng.random() < loss


class _Partition:
    """One scheduled partition: an address-set (or locality) boundary plus
    its active window."""

    def __init__(
        self,
        start_ms: float,
        heal_ms: float,
        side: Optional[frozenset],
        locality: Optional[int],
        locality_of: Optional[LocalityFn],
    ) -> None:
        self.start_ms = start_ms
        self.heal_ms = heal_ms
        self._side = side
        self._locality = locality
        self._locality_of = locality_of

    def active(self, now: float) -> bool:
        return self.start_ms <= now < self.heal_ms

    def _in_side(self, address: Address) -> bool:
        if self._side is not None:
            return address in self._side
        if self._locality_of is None:
            return False
        return self._locality_of(address) == self._locality

    def cuts(self, src: Address, dst: Address) -> bool:
        return self._in_side(src) != self._in_side(dst)


class _LatencySpike:
    def __init__(self, spec: LatencySpikeSpec, locality_of: Optional[LocalityFn]):
        self.spec = spec
        self._locality_of = locality_of

    def active(self, now: float) -> bool:
        return self.spec.start_ms <= now < self.spec.end_ms

    def applies(self, src: Address, dst: Address) -> bool:
        if self.spec.locality is None:
            return True
        if self._locality_of is None:
            return False
        return self.spec.locality in (
            self._locality_of(src), self._locality_of(dst)
        )

    def adjust(self, base: float) -> float:
        return base * self.spec.multiplier + self.spec.additive_ms


class FaultController:
    """Schedules and executes fault campaigns against one network.

    Install with ``network.install_faults(controller)`` (the constructor
    does it for you); :class:`~repro.net.transport.Network` then consults
    :meth:`drop_cause` on every delivery and :meth:`latency_adjust` on
    every send.

    Args:
        sim: the driving simulator.
        network: the fabric under attack.
        rng: the controller's dedicated random stream; defaults to the
            simulator's ``"faults"`` stream so fault injection never
            perturbs the random sequences of protocol components.
        locality_of: address -> locality mapping (usually
            ``LandmarkBinner.locality_of``); required for locality-scoped
            partitions, spikes and campaigns.
    """

    def __init__(
        self,
        sim: Simulator,
        network,
        rng: Optional[random.Random] = None,
        locality_of: Optional[LocalityFn] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.rng = rng if rng is not None else sim.rng("faults")
        self.locality_of = locality_of
        self._bursty: Optional[BurstyLossSpec] = None
        self._links: Dict[Tuple[Address, Address], _GilbertElliottLink] = {}
        self._partitions: List[_Partition] = []
        self._spikes: List[_LatencySpike] = []
        #: fault kind -> how many times it struck (drops, crashes, ...).
        self.stats: Dict[str, int] = {}
        network.install_faults(self)

    # ------------------------------------------------------------- configure
    def apply(self, specs) -> None:
        """Install every declarative spec from a ``fault_schedule``."""
        for spec in specs:
            if isinstance(spec, BurstyLossSpec):
                self.set_bursty_loss(spec)
            elif isinstance(spec, PartitionSpec):
                self.schedule_partition(
                    spec.start_ms, spec.heal_ms, locality=spec.locality
                )
            elif isinstance(spec, LatencySpikeSpec):
                self.schedule_latency_spike(spec)
            elif isinstance(spec, MassFailureSpec):
                self.schedule_mass_failure(
                    spec.at_ms,
                    fraction=spec.fraction,
                    locality=spec.locality,
                    directories_only=spec.directories_only,
                )
            else:
                raise TransportError(f"unknown fault spec {spec!r}")

    def set_bursty_loss(self, spec: BurstyLossSpec) -> None:
        """Enable Gilbert-Elliott loss on every link (one spec at a time)."""
        self._bursty = spec
        self._links.clear()

    def schedule_partition(
        self,
        start_ms: float,
        heal_ms: float,
        locality: Optional[int] = None,
        group: Optional[frozenset] = None,
    ) -> None:
        """Cut traffic across a boundary during ``[start_ms, heal_ms)``.

        Exactly one of *locality* (binned side) or *group* (explicit
        address set) selects the isolated side.
        """
        if (locality is None) == (group is None):
            raise TransportError("pass exactly one of locality= or group=")
        if locality is not None and self.locality_of is None:
            raise TransportError(
                "locality partitions need a locality_of mapping"
            )
        if heal_ms <= start_ms:
            raise TransportError("partition must heal after it starts")
        partition = _Partition(
            start_ms,
            heal_ms,
            frozenset(group) if group is not None else None,
            locality,
            self.locality_of,
        )
        self._partitions.append(partition)
        self.sim.schedule_at(
            self._due(start_ms, "partition_start"),
            self._emit_partition,
            "start",
            partition,
        )
        self.sim.schedule_at(
            self._due(heal_ms, "partition_heal"), self._emit_partition, "heal", partition
        )

    def _emit_partition(self, edge: str, partition: _Partition) -> None:
        self.sim.emit(f"fault.partition_{edge}")

    def schedule_latency_spike(self, spec: LatencySpikeSpec) -> None:
        """Degrade matching links during the spec's window."""
        if spec.locality is not None and self.locality_of is None:
            raise TransportError("locality spikes need a locality_of mapping")
        self._spikes.append(_LatencySpike(spec, self.locality_of))

    def schedule_mass_failure(
        self,
        at_ms: float,
        fraction: float = 0.5,
        locality: Optional[int] = None,
        directories_only: bool = False,
        predicate: Optional[Callable[[object], bool]] = None,
    ) -> None:
        """Crash *fraction* of matching live peers at time *at_ms*.

        Victims are drawn with the controller's RNG from the nodes alive
        at fire time.  A node exposing ``crash()`` (CDN peers) is crashed
        through it so protocol processes are cancelled; bare network
        nodes just ``fail()``.
        """
        if locality is not None and self.locality_of is None:
            raise TransportError("locality campaigns need a locality_of mapping")
        spec = MassFailureSpec(
            at_ms=at_ms,
            fraction=fraction,
            locality=locality,
            directories_only=directories_only,
        )
        self.sim.schedule_at(
            self._due(at_ms, "mass_failure"), self._execute_mass_failure, spec, predicate
        )

    def _due(self, at_ms: float, what: str) -> float:
        """Clamp a fire time to ``now``; a past-due time is no longer
        silently absorbed -- it is executed immediately *and* reported
        (warning trace event + ``stats["past_due_reschedules"]``), so a
        mis-ordered fault schedule is visible instead of quietly shifting
        the campaign's timing.
        """
        now = self.sim.now
        if at_ms >= now:
            return at_ms
        self.stats["past_due_reschedules"] = (
            self.stats.get("past_due_reschedules", 0) + 1
        )
        self.sim.emit(
            "fault.past_due_reschedule",
            what=what,
            requested_ms=at_ms,
            now_ms=now,
        )
        return now

    def _execute_mass_failure(
        self, spec: MassFailureSpec, predicate: Optional[Callable]
    ) -> None:
        victims = []
        for node in self.network.nodes():
            if not node.alive:
                continue
            if spec.locality is not None and (
                self.locality_of is None
                or self.locality_of(node.address) != spec.locality
            ):
                continue
            if spec.directories_only and not getattr(node, "is_directory", False):
                continue
            if predicate is not None and not predicate(node):
                continue
            victims.append(node)
        count = max(1, round(spec.fraction * len(victims))) if victims else 0
        chosen = self.rng.sample(victims, min(count, len(victims)))
        for node in chosen:
            crash = getattr(node, "crash", None)
            if callable(crash):
                crash()
            else:
                node.fail()
        self.stats["mass_failures"] = self.stats.get("mass_failures", 0) + len(chosen)
        self.sim.emit(
            "fault.mass_failure",
            crashed=len(chosen),
            matched=len(victims),
            directories_only=spec.directories_only,
        )

    # --------------------------------------------------------- network hooks
    def drop_cause(self, src: Address, dst: Address) -> Optional[str]:
        """Consulted once per delivery attempt: partition cut first (a cut
        link drops deterministically), then the bursty-loss chain."""
        now = self.sim.now
        for partition in self._partitions:
            if partition.active(now) and partition.cuts(src, dst):
                self.stats["partition_drops"] = self.stats.get("partition_drops", 0) + 1
                return "partition"
        spec = self._bursty
        if spec is not None and spec.start_ms <= now and (
            spec.end_ms is None or now < spec.end_ms
        ):
            link = self._links.get((src, dst))
            if link is None:
                link = self._links[(src, dst)] = _GilbertElliottLink()
            if link.step_and_drop(spec, self.rng):
                self.stats["burst_drops"] = self.stats.get("burst_drops", 0) + 1
                return "loss"
        return None

    def latency_adjust(self, src: Address, dst: Address, base: float) -> float:
        """Consulted at scheduling time for every message leg."""
        now = self.sim.now
        adjusted = base
        for spike in self._spikes:
            if spike.active(now) and spike.applies(src, dst):
                adjusted = spike.adjust(adjusted)
        return adjusted

    # ------------------------------------------------------------ inspection
    def partition_active(self, now: Optional[float] = None) -> bool:
        """Is any partition currently cutting traffic?"""
        at = self.sim.now if now is None else now
        return any(p.active(at) for p in self._partitions)
