"""Synthetic latency topologies.

The simulation only ever asks one question of the physical network: *what is
the one-way latency between peers a and b?*  (Bandwidth and CPU are not
modelled -- paper section 6.1.)  Three answers are provided:

:class:`ClusteredTopology`
    Peers live in a 2-D metric space organised as *k* geographic clusters;
    latency grows affinely with Euclidean distance, spanning the paper's
    10-500 ms range.  Peers of one cluster are mutually close (tens of ms)
    while peers of different clusters are far (hundreds of ms).  This is the
    default and the one that gives landmark binning (and hence Flower-CDN's
    locality awareness) something real to discover.

:class:`UniformRandomTopology`
    Every pair gets an i.i.d. latency uniform in [min, max], computed
    on demand from a hash so that no O(n^2) matrix is stored.  Used by the
    locality ablation: with no latent structure, locality awareness cannot
    help, which quantifies what the clustered structure is worth.

:class:`ExplicitTopology`
    A literal latency matrix, for unit tests that need exact numbers.

All topologies are *symmetric* (latency(a, b) == latency(b, a)) and return
0.0 for self-latency.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.errors import TopologyError
from repro.sim.rng import derive_seed
from repro.types import Address, Coordinate


class Topology:
    """Base class: a registry of peer positions and a latency metric."""

    def register(self, address: Address, cluster_hint: Optional[int] = None) -> None:
        """Place a new peer.  Must be called once per address before use.

        Args:
            address: the peer's unique address.
            cluster_hint: topologies with geographic structure may honour
                this to place the peer in a chosen region (used to seed the
                initial directory-peer population, one per locality);
                structureless topologies ignore it.
        """
        raise NotImplementedError

    def latency(self, a: Address, b: Address) -> float:
        """One-way latency in ms between two registered peers."""
        raise NotImplementedError

    def knows(self, address: Address) -> bool:
        """True if *address* has been registered."""
        raise NotImplementedError


class ClusteredTopology(Topology):
    """k Gaussian clusters in the unit square, affine distance-to-latency map.

    Cluster centres are spread quasi-uniformly on a circle (plus jitter) so
    that inter-cluster distances are comparable; peers scatter around their
    centre with standard deviation *spread*.

    The latency map is calibrated so the *observable* range matches the
    paper: nearby peers see ~``latency_min`` and the most distant pairs
    approach ``latency_max``.

    Args:
        rng: random stream for placement.
        num_clusters: number of geographic clusters (the paper's k = 6).
        latency_min_ms / latency_max_ms: the paper's 10-500 ms range.
        spread: cluster standard deviation in unit-square units.
    """

    #: Diameter of the unit square -- the maximum possible distance.
    _MAX_DISTANCE = math.sqrt(2.0)

    def __init__(
        self,
        rng: random.Random,
        num_clusters: int = 6,
        latency_min_ms: float = 10.0,
        latency_max_ms: float = 500.0,
        spread: float = 0.04,
    ) -> None:
        if num_clusters < 1:
            raise TopologyError(f"need at least one cluster (got {num_clusters})")
        if not 0 < latency_min_ms < latency_max_ms:
            raise TopologyError(
                f"need 0 < latency_min < latency_max "
                f"(got {latency_min_ms}, {latency_max_ms})"
            )
        self._rng = rng
        self.num_clusters = num_clusters
        self.latency_min_ms = latency_min_ms
        self.latency_max_ms = latency_max_ms
        self.spread = spread
        self.centers: List[Coordinate] = self._place_centers()
        self._positions: Dict[Address, Coordinate] = {}
        self._clusters: Dict[Address, int] = {}

    def _place_centers(self) -> List[Coordinate]:
        """Spread cluster centres on a circle inside the unit square."""
        centers: List[Coordinate] = []
        for i in range(self.num_clusters):
            angle = 2.0 * math.pi * i / self.num_clusters
            jitter_x = self._rng.uniform(-0.03, 0.03)
            jitter_y = self._rng.uniform(-0.03, 0.03)
            x = 0.5 + 0.38 * math.cos(angle) + jitter_x
            y = 0.5 + 0.38 * math.sin(angle) + jitter_y
            centers.append((min(max(x, 0.0), 1.0), min(max(y, 0.0), 1.0)))
        return centers

    def register(self, address: Address, cluster_hint: Optional[int] = None) -> None:
        if address in self._positions:
            raise TopologyError(f"address {address} already registered")
        if cluster_hint is not None and not 0 <= cluster_hint < self.num_clusters:
            raise TopologyError(f"cluster hint {cluster_hint} out of range")
        cluster = cluster_hint if cluster_hint is not None else self._rng.randrange(self.num_clusters)
        cx, cy = self.centers[cluster]
        x = min(max(self._rng.gauss(cx, self.spread), 0.0), 1.0)
        y = min(max(self._rng.gauss(cy, self.spread), 0.0), 1.0)
        self._positions[address] = (x, y)
        self._clusters[address] = cluster

    def knows(self, address: Address) -> bool:
        return address in self._positions

    def position(self, address: Address) -> Coordinate:
        """The peer's coordinates (mainly for tests and visualisation)."""
        try:
            return self._positions[address]
        except KeyError:
            raise TopologyError(f"unknown address {address}") from None

    def cluster_of(self, address: Address) -> int:
        """The ground-truth cluster a peer was placed in.

        Landmark binning (:mod:`repro.net.landmarks`) should *recover* this;
        tests compare the two.
        """
        try:
            return self._clusters[address]
        except KeyError:
            raise TopologyError(f"unknown address {address}") from None

    def distance(self, a: Address, b: Address) -> float:
        """Euclidean distance between two registered peers."""
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return math.hypot(ax - bx, ay - by)

    def latency_at(self, pa: Coordinate, pb: Coordinate) -> float:
        """Latency between two raw coordinates (used by landmark probing)."""
        dist = math.hypot(pa[0] - pb[0], pa[1] - pb[1])
        fraction = dist / self._MAX_DISTANCE
        return self.latency_min_ms + fraction * (self.latency_max_ms - self.latency_min_ms)

    def latency(self, a: Address, b: Address) -> float:
        if a == b:
            return 0.0
        return self.latency_at(self.position(a), self.position(b))


class UniformRandomTopology(Topology):
    """I.i.d. uniform pairwise latencies, O(1) memory.

    The latency of a pair is a deterministic hash of ``(seed, min, max)`` of
    the two addresses, so it is stable across calls without storing an
    O(n^2) matrix.  There is no locality structure by construction.
    """

    def __init__(
        self,
        seed: int,
        latency_min_ms: float = 10.0,
        latency_max_ms: float = 500.0,
    ) -> None:
        if not 0 < latency_min_ms < latency_max_ms:
            raise TopologyError(
                f"need 0 < latency_min < latency_max "
                f"(got {latency_min_ms}, {latency_max_ms})"
            )
        self._seed = seed
        self.latency_min_ms = latency_min_ms
        self.latency_max_ms = latency_max_ms
        self._registered: set = set()

    def register(self, address: Address, cluster_hint: Optional[int] = None) -> None:
        if address in self._registered:
            raise TopologyError(f"address {address} already registered")
        self._registered.add(address)

    def knows(self, address: Address) -> bool:
        return address in self._registered

    def latency(self, a: Address, b: Address) -> float:
        if a not in self._registered or b not in self._registered:
            raise TopologyError(f"unknown address in pair ({a}, {b})")
        if a == b:
            return 0.0
        low, high = (a, b) if a < b else (b, a)
        # 53 bits of hash → uniform fraction in [0, 1).
        fraction = (derive_seed(self._seed, f"lat:{low}:{high}") >> 11) / float(1 << 53)
        return self.latency_min_ms + fraction * (self.latency_max_ms - self.latency_min_ms)


class ExplicitTopology(Topology):
    """A literal symmetric latency matrix, for unit tests.

    Args:
        matrix: square matrix; ``matrix[a][b]`` is the latency a -> b.
            Must be symmetric with a zero diagonal.
    """

    def __init__(self, matrix: Sequence[Sequence[float]]) -> None:
        n = len(matrix)
        for i, row in enumerate(matrix):
            if len(row) != n:
                raise TopologyError("latency matrix must be square")
            if row[i] != 0.0:
                raise TopologyError("latency matrix diagonal must be zero")
            for j in range(n):
                if matrix[i][j] != matrix[j][i]:
                    raise TopologyError("latency matrix must be symmetric")
                if matrix[i][j] < 0:
                    raise TopologyError("latencies must be non-negative")
        self._matrix = [list(row) for row in matrix]
        self._registered: set = set()

    def register(self, address: Address, cluster_hint: Optional[int] = None) -> None:
        if address in self._registered:
            raise TopologyError(f"address {address} already registered")
        if not 0 <= address < len(self._matrix):
            raise TopologyError(
                f"address {address} outside matrix of size {len(self._matrix)}"
            )
        self._registered.add(address)

    def knows(self, address: Address) -> bool:
        return address in self._registered

    def latency(self, a: Address, b: Address) -> float:
        if a not in self._registered or b not in self._registered:
            raise TopologyError(f"unknown address in pair ({a}, {b})")
        return self._matrix[a][b]
