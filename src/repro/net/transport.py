"""Latency-delayed message transport with liveness and RPC timeouts.

This is where the simulation meets the "physical" network:

- a message from ``a`` to ``b`` is delivered ``topology.latency(a, b)``
  milliseconds after it is sent;
- a message addressed to a failed peer is silently lost -- exactly what a
  crash looks like from the outside;
- the RPC helper gives protocol code the only failure signal real P2P nodes
  have: *no reply within the timeout*.  All failure detection in the paper's
  maintenance protocols (section 5) is built on this.

Protocol endpoints subclass :class:`NetworkNode` and implement handlers named
``handle_<kind>`` (dots in the kind become underscores).  A handler's return
value becomes the RPC reply payload.
"""

from __future__ import annotations

import random
from collections import defaultdict
from heapq import heappush
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.types import Address

#: ``Message.__new__`` bound once -- the hot send/rpc paths build envelopes
#: by slot assignment instead of paying a constructor frame per message.
_new_message = Message.__new__

#: Called with the RPC reply payload when the response arrives.
ReplyCallback = Callable[[Dict[str, Any]], None]

#: Called when an RPC times out (destination dead or unknown).
FailureCallback = Callable[[], None]

#: Drop causes tracked by :attr:`Network.drop_counts`.
DROP_CAUSES = ("loss", "dead_dst", "partition")

#: Bit width of one address inside a packed latency-cache key: keys are
#: ``(src << ADDR_SHIFT) | dst`` because a single int hash is markedly
#: cheaper than building and hashing a tuple on every send/rpc/reply.
#: 32 bits accommodates the sharded address space (16-bit shard id +
#: 16-bit per-shard block -- see ``repro.net.shardnet``) with room to
#: spare; :meth:`Network.register` rejects addresses at or beyond this
#: bound so the packing can never silently alias two links.
ADDR_SHIFT = 32

#: First address that no longer fits the packed-key scheme.
MAX_PACKED_ADDRESS = 1 << ADDR_SHIFT


class NetworkNode:
    """Base class of every protocol endpoint.

    Subclasses implement ``handle_<kind>(message) -> Optional[dict]`` methods;
    the returned dict (if any) is delivered to the RPC caller as the reply.

    Attributes:
        network: the owning :class:`Network`.
        sim: the simulator (shortcut for ``network.sim``).
        address: this node's unique address, assigned at registration.
        alive: liveness flag; dead nodes receive nothing and send nothing.
    """

    def __init__(self, network: "Network", cluster_hint: Optional[int] = None) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.alive = True
        #: kind -> bound handler method, resolved once per kind (dispatch
        #: runs for every delivered message; the getattr + str.replace pair
        #: is too expensive to repeat hundreds of thousands of times).
        self._handler_cache: Dict[str, Callable[[Message], Optional[Dict[str, Any]]]] = {}
        #: per-host Chord lookup correlation state (owned by repro.dht.node;
        #: pre-created here so the recursive-lookup hot path uses direct
        #: attribute access instead of getattr-with-default).
        self._chord_pending_lookups: Dict[Any, Callable[[Dict[str, Any]], None]] = {}
        self._chord_nonce_seq = 0
        self.address: Address = network.register(self, cluster_hint)

    # ------------------------------------------------------------- liveness
    def fail(self) -> None:
        """Crash the node.  In-flight messages to it will be dropped.

        Subclasses override to also cancel their periodic processes, then
        call ``super().fail()``.
        """
        self.alive = False

    def revive(self) -> None:
        """Bring the node back up (a user re-joining from the same machine).

        The address -- and therefore the topology position -- is retained:
        it is the same physical host.
        """
        self.alive = True

    # ------------------------------------------------------------ messaging
    #
    # send/rpc carry the full transmit path inline (latency-cache lookup,
    # event pushes) rather than delegating to Network methods: these two are
    # called once per message in the whole system, and the wrapper frames
    # plus re-dispatch measurably slow the canonical benchmark.  The
    # Network.send / Network.rpc methods remain as thin delegates for
    # callers holding only the network.

    def send(self, dst: Address, kind: str, **payload: Any) -> None:
        """Fire-and-forget one-way message; delivered after the link latency
        if the destination is alive at delivery time."""
        if not self.alive:
            return  # a crashed node sends nothing
        network = self.network
        sim = network.sim
        now = sim.now
        src_addr = self.address
        # Message construction, inlined (__new__ + slot stores): the
        # constructor frame is pure overhead on a path this frequent.
        message = _new_message(Message)
        message.src = src_addr
        message.dst = dst
        message.kind = kind
        message.payload = payload
        message.sent_at = now
        message.request_id = None
        network.messages_sent += 1
        network.kind_counts[kind] += 1
        # Network._link_latency, inlined (int key, shift = ADDR_SHIFT).
        cache = network._latency_cache
        latency = cache.get((src_addr << 32) | dst)
        if latency is None:
            latency = network.topology.latency(src_addr, dst)
            cache[(src_addr << 32) | dst] = latency
        if network.faults is not None:
            latency = network.faults.latency_adjust(src_addr, dst, latency)
        # sim.defer, inlined (one delivery event per message).
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heappush(
            queue._heap,
            [now + latency, seq, network._deliver_cb, (message, None)],
        )
        live = queue._live + 1
        queue._live = live
        if live > queue._peak:
            queue._peak = live

    def rpc(
        self,
        dst: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        on_reply: Optional[ReplyCallback] = None,
        on_timeout: Optional[FailureCallback] = None,
        timeout_ms: Optional[float] = None,
    ) -> None:
        """Request/response with a timeout (semantics in :meth:`Network.rpc`)."""
        if not self.alive:
            return
        network = self.network
        if timeout_ms is None:
            timeout_ms = network.default_timeout_ms
        sim = network.sim
        now = sim.now
        src_addr = self.address
        # Message + context construction, inlined (__new__ + slot stores):
        # two constructor frames per RPC are pure overhead at this rate.
        message = _new_message(Message)
        message.src = src_addr
        message.dst = dst
        message.kind = kind
        message.payload = {} if payload is None else payload
        message.sent_at = now
        network.messages_sent += 1
        network.kind_counts[kind] += 1
        context = _new_rpc_context(_RpcContext)
        context.src = self
        context.on_reply = on_reply
        context.on_timeout = on_timeout
        context.settled = False
        # Network._link_latency, inlined (int key, shift = ADDR_SHIFT).
        cache = network._latency_cache
        latency = cache.get((src_addr << 32) | dst)
        if latency is None:
            latency = network.topology.latency(src_addr, dst)
            cache[(src_addr << 32) | dst] = latency
        if network.faults is not None:
            latency = network.faults.latency_adjust(src_addr, dst, latency)
        # Two sim.defer calls, inlined: timeout event then request delivery
        # (the timeout takes the lower sequence number, exactly as two
        # sequential defers would assign).
        queue = sim._queue
        heap = queue._heap
        seq = queue._seq
        queue._seq = seq + 2
        # The event sequence number doubles as the correlation id: it is
        # unique per scheduled event, so per RPC, and already in hand.
        message.request_id = seq
        # The context object is itself the timeout callback (__call__ is
        # fire_timeout): no bound-method allocation per RPC.  The context
        # keeps a reference to its timeout entry so that settling the RPC
        # can swap the callback slot for a C-level no-op -- the event still
        # executes (identical event stream and counts), but the vast
        # majority of timeouts, which fire after their RPC has already been
        # answered, no longer pay a Python frame just to return early.
        timeout_entry: List[Any] = [now + timeout_ms, seq, context, ()]
        context.entry = timeout_entry
        heappush(heap, timeout_entry)
        heappush(
            heap,
            [now + latency, seq + 1, network._deliver_cb, (message, context)],
        )
        live = queue._live + 2
        queue._live = live
        if live > queue._peak:
            queue._peak = live

    def retrying_rpc(
        self,
        dst: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        on_reply: Optional[ReplyCallback] = None,
        on_give_up: Optional[FailureCallback] = None,
        timeout_ms: Optional[float] = None,
        retries: int = 2,
        backoff_ms: float = 500.0,
        backoff_factor: float = 2.0,
        backoff_cap_ms: float = 8000.0,
        rng: Optional["random.Random"] = None,
    ) -> None:
        """RPC with capped exponential backoff and deterministic jitter.

        A single lost request or reply no longer looks like a dead peer:
        the call is retried up to *retries* times, waiting
        ``min(cap, backoff * factor**attempt)`` scaled by a jitter factor
        in [0.5, 1.0) between attempts.  Only when the whole budget is
        exhausted does *on_give_up* fire -- the moment protocol code may
        legitimately declare the destination failed.

        Jitter draws come from the simulator's dedicated ``"rpc.retry"``
        stream (or *rng*), so runs stay reproducible and unrelated
        components' random sequences are not perturbed.
        """
        if retries < 0:
            raise TransportError(f"retry budget must be >= 0 (got {retries})")
        jitter_rng = rng if rng is not None else self.sim.rng("rpc.retry")
        body = dict(payload or {})

        def attempt(number: int) -> None:
            if not self.alive:
                return

            def on_timeout() -> None:
                if not self.alive:
                    return
                if number >= retries:
                    if on_give_up is not None:
                        on_give_up()
                    return
                delay = min(backoff_cap_ms, backoff_ms * (backoff_factor ** number))
                delay *= 0.5 + 0.5 * jitter_rng.random()
                self.sim.emit(
                    "net.rpc_retry", rpc_kind=kind, dst=dst, attempt=number + 1
                )
                self.sim.defer(delay, attempt, number + 1)

            self.rpc(dst, kind, dict(body), on_reply, on_timeout, timeout_ms)

        attempt(0)

    def on_message(self, message: Message) -> Optional[Dict[str, Any]]:
        """Dispatch to ``handle_<kind>``.  Subclasses rarely override this."""
        kind = message.kind
        handler = self._handler_cache.get(kind)
        if handler is None:
            handler = getattr(self, "handle_" + kind.replace(".", "_"), None)
            if handler is None:
                raise TransportError(
                    f"{type(self).__name__} at {self.address} has no handler "
                    f"for message kind {message.kind!r}"
                )
            self._handler_cache[kind] = handler
        return handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"{type(self).__name__}(addr={self.address}, {state})"


class Network:
    """The message fabric: registry, latency-delayed delivery, RPC.

    Args:
        sim: the driving simulator.
        topology: the latency model; each registered node is placed in it.
        default_timeout_ms: RPC timeout when the caller does not pass one.
            Must exceed the worst-case round trip (2 x max link latency),
            otherwise live-but-distant peers would be misdiagnosed as dead.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        default_timeout_ms: float = 2000.0,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.default_timeout_ms = default_timeout_ms
        self._drop_rate = 0.0
        self._drop_rng: Optional["random.Random"] = None
        self._nodes: List[NetworkNode] = []
        #: memoized symmetric base link latencies, keyed (min(a,b), max(a,b)).
        #: Topology positions are immutable after registration, so entries
        #: never go stale; fault-injected adjustments are applied on top and
        #: are never cached.
        self._latency_cache: Dict[Tuple[Address, Address], float] = {}
        #: bound delivery callbacks, created once -- every scheduled message
        #: event would otherwise allocate a fresh bound method.
        self._deliver_cb = self._deliver
        self._deliver_reply_cb = self._deliver_reply
        self.messages_sent = 0
        #: drop cause -> count; see :data:`DROP_CAUSES`.  ``messages_dropped``
        #: (the historical single counter) is the sum over all causes.
        self.drop_counts: Dict[str, int] = {cause: 0 for cause in DROP_CAUSES}
        #: message kind -> number sent; the raw material of the overhead
        #: analysis ("minimizing the incurred overhead" -- paper section 1).
        #: A defaultdict so the hot send/rpc paths bump it with a single
        #: subscript instead of a ``get``-then-store pair.
        self.kind_counts: Dict[str, int] = defaultdict(int)
        #: optional :class:`~repro.net.faults.FaultController`; consulted at
        #: scheduling time (latency degradation) and delivery time (partition
        #: cuts, bursty loss).
        self.faults = None
        #: optional :class:`~repro.net.bandwidth.BandwidthModel`.  ``None``
        #: (the default) keeps the latency-only link model bit-identical to
        #: the pre-bandwidth build: no flow objects, no extra events, no RNG
        #: draws.  The swarming transfer layer consults it for payload
        #: transfer times; control messages always stay latency-only.
        self.bandwidth = None

    # ------------------------------------------------------------ fault model
    @property
    def messages_dropped(self) -> int:
        """Total messages dropped, over all causes."""
        return sum(self.drop_counts.values())

    @property
    def dropped_loss(self) -> int:
        """Messages dropped by (uniform or bursty) link loss."""
        return self.drop_counts["loss"]

    @property
    def dropped_dead_dst(self) -> int:
        """Messages addressed to crashed or unknown destinations."""
        return self.drop_counts["dead_dst"]

    @property
    def dropped_partition(self) -> int:
        """Messages cut by an active network partition."""
        return self.drop_counts["partition"]

    def install_faults(self, controller) -> None:
        """Attach a :class:`~repro.net.faults.FaultController` to delivery."""
        self.faults = controller

    def install_bandwidth(self, model) -> None:
        """Attach a :class:`~repro.net.bandwidth.BandwidthModel`."""
        self.bandwidth = model

    def configure_loss(self, rate: float, rng: "random.Random") -> None:
        """Drop each delivery (requests, replies, one-ways) i.i.d. with
        probability *rate* -- failure injection beyond crash churn.

        Protocols already treat lost messages exactly like messages to dead
        peers (RPC timeouts), so no protocol code changes; only the failure
        *rate* goes up.
        """
        if not 0.0 <= rate <= 1.0:
            raise TransportError(f"loss rate must be in [0, 1] (got {rate})")
        self._drop_rate = rate
        self._drop_rng = rng

    def _lost(self) -> bool:
        return (
            self._drop_rate > 0.0
            and self._drop_rng is not None
            and self._drop_rng.random() < self._drop_rate
        )

    # -------------------------------------------------------------- registry
    def register(self, node: NetworkNode, cluster_hint: Optional[int] = None) -> Address:
        """Register *node*, place it in the topology, return its address."""
        address = len(self._nodes)
        if address >= MAX_PACKED_ADDRESS:
            # The latency cache packs (src, dst) into one int; an address
            # beyond the shift width would silently alias another link.
            raise TransportError(
                f"address {address} exceeds the {ADDR_SHIFT}-bit packed "
                f"latency-cache key space"
            )
        self._nodes.append(node)
        self.topology.register(address, cluster_hint)
        return address

    def node(self, address: Address) -> NetworkNode:
        """The node registered at *address*."""
        try:
            return self._nodes[address]
        except IndexError:
            raise TransportError(f"unknown address {address}") from None

    def is_alive(self, address: Address) -> bool:
        """Liveness of the node at *address* (False for unknown addresses)."""
        return 0 <= address < len(self._nodes) and self._nodes[address].alive

    def __len__(self) -> int:
        return len(self._nodes)

    def latency(self, a: Address, b: Address) -> float:
        """One-way latency between two registered addresses."""
        return self.topology.latency(a, b)

    def nodes(self) -> Iterator[NetworkNode]:
        """All registered nodes (fault campaigns iterate this)."""
        return iter(self._nodes)

    def _link_latency(self, src: Address, dst: Address) -> float:
        """Base latency plus any active fault-injected degradation.

        Base latencies are memoized per directed pair (topologies are static;
        symmetric pairs simply occupy two entries).  Keys are single ints --
        ``(src << ADDR_SHIFT) | dst`` -- because an int hash is markedly
        cheaper than building and hashing a tuple on every send/rpc/reply.
        :meth:`register` guarantees every address fits in ``ADDR_SHIFT``
        bits, so the packing never aliases two links.
        """
        key = (src << ADDR_SHIFT) | dst
        cache = self._latency_cache
        base = cache.get(key)
        if base is None:
            base = self.topology.latency(src, dst)
            cache[key] = base
        if self.faults is not None:
            return self.faults.latency_adjust(src, dst, base)
        return base

    def _drop(self, cause: str, kind: str, dst: Address) -> None:
        self.drop_counts[cause] = self.drop_counts.get(cause, 0) + 1
        self.sim.emit("net.drop", message_kind=kind, dst=dst, cause=cause)

    # -------------------------------------------------------------- delivery
    def send(
        self,
        src: NetworkNode,
        dst: Address,
        kind: str,
        payload: Dict[str, Any],
    ) -> None:
        """One-way message; delivered after the link latency if dst is alive.

        Cold-path twin of :meth:`NetworkNode.send` (the hot entry point,
        which inlines this logic) for callers holding only the network.
        """
        if not src.alive:
            return  # a crashed node sends nothing
        sim = self.sim
        message = Message(src.address, dst, kind, payload, sent_at=sim.now)
        self.messages_sent += 1
        self.kind_counts[kind] += 1
        sim.defer(self._link_latency(src.address, dst), self._deliver, message, None)

    def rpc(
        self,
        src: NetworkNode,
        dst: Address,
        kind: str,
        payload: Dict[str, Any],
        on_reply: Optional[ReplyCallback],
        on_timeout: Optional[FailureCallback],
        timeout_ms: Optional[float],
    ) -> None:
        """Request/response with timeout.

        The destination handler runs when the request arrives; its return
        value travels back and ``on_reply`` fires at the source one link
        latency later.  If the destination is dead (at delivery time) the
        request vanishes and ``on_timeout`` fires ``timeout_ms`` after the
        send -- the caller cannot tell *why* there was no answer, only that
        there was none, matching real failure detection.

        Callbacks are suppressed if the *source* has died in the meantime
        (a dead peer processes nothing, including its own timers).

        Thin delegate: the transmit path lives in :meth:`NetworkNode.rpc`
        (the hot entry point).
        """
        src.rpc(dst, kind, payload, on_reply, on_timeout, timeout_ms)

    def _delivery_drop_cause(self, src: Address, dst: Address) -> Optional[str]:
        """Why a delivery on link src -> dst is lost right now, if at all."""
        if self.faults is not None:
            cause = self.faults.drop_cause(src, dst)
            if cause is not None:
                return cause
        if self._drop_rate > 0.0 and self._lost():
            return "loss"
        return None

    def _deliver(self, message: Message, context: Optional["_RpcContext"]) -> None:
        dst = message.dst
        nodes = self._nodes
        dst_node = nodes[dst] if 0 <= dst < len(nodes) else None
        if dst_node is None or not dst_node.alive:
            self._drop("dead_dst", message.kind, dst)
            return
        if self.faults is not None or self._drop_rate > 0.0:
            cause = self._delivery_drop_cause(message.src, dst)
            if cause is not None:
                self._drop(cause, message.kind, dst)
                return
        # Cache-first dispatch: a node's ``_handler_cache`` only ever holds
        # handlers whose invocation is behaviourally identical to running the
        # node's full ``on_message`` for that kind (overrides special-case
        # their kinds *before* the caching tail, or pre-register equivalent
        # wrappers), so a hit here skips one Python frame per delivery.
        handler = dst_node._handler_cache.get(message.kind)
        reply = dst_node.on_message(message) if handler is None else handler(message)
        if context is not None:
            self.messages_sent += 1
            src = message.src
            # Network._link_latency, inlined (int key, shift = ADDR_SHIFT).
            cache = self._latency_cache
            latency = cache.get((dst << 32) | src)
            if latency is None:
                latency = self.topology.latency(dst, src)
                cache[(dst << 32) | src] = latency
            if self.faults is not None:
                latency = self.faults.latency_adjust(dst, src, latency)
            # sim.defer, inlined (one reply event per answered RPC).
            sim = self.sim
            queue = sim._queue
            seq = queue._seq
            queue._seq = seq + 1
            heappush(
                queue._heap,
                [
                    sim.now + latency,
                    seq,
                    self._deliver_reply_cb,
                    (context, dst, reply if reply is not None else {}),
                ],
            )
            live = queue._live + 1
            queue._live = live
            if live > queue._peak:
                queue._peak = live

    def _deliver_reply(
        self,
        context: "_RpcContext",
        replier: Address,
        payload: Dict[str, Any],
    ) -> None:
        # Same fast-path guard as request delivery: with no fault controller
        # and no configured loss, a reply cannot be dropped, so skip the
        # cause computation entirely (one reply per answered RPC).
        if self.faults is not None or self._drop_rate > 0.0:
            cause = self._delivery_drop_cause(replier, context.src.address)
            if cause is not None:
                self._drop(cause, "(reply)", context.src.address)
                return
        # context.fire_reply, inlined (it is the tail of every answered RPC).
        if context.settled or not context.src.alive:
            return
        context.settled = True
        entry = context.entry
        if entry is not None and entry[2] is context:
            # Swap the pending timeout's callback for a C-level no-op: the
            # event still executes (identical stream and counts) but skips
            # the Python frame it would burn just to see ``settled``.
            entry[2] = _NOOP
        on_reply = context.on_reply
        if on_reply is not None:
            on_reply(payload)


#: C-level no-op swapped into a settled RPC's timeout event (see
#: ``NetworkNode.rpc``): ``int()`` takes no arguments, allocates nothing
#: (it returns the cached zero) and costs no Python frame.
_NOOP = int


class _RpcContext:
    """Correlates one RPC's reply and timeout; whichever fires first wins."""

    __slots__ = ("src", "on_reply", "on_timeout", "settled", "entry")

    def __init__(
        self,
        src: NetworkNode,
        on_reply: Optional[ReplyCallback],
        on_timeout: Optional[FailureCallback],
    ) -> None:
        self.src = src
        self.on_reply = on_reply
        self.on_timeout = on_timeout
        self.settled = False
        self.entry = None

    def fire_reply(self, payload: Dict[str, Any]) -> None:
        if self.settled or not self.src.alive:
            return
        self.settled = True
        entry = self.entry
        if entry is not None and entry[2] is self:
            entry[2] = _NOOP  # the pending timeout becomes a free event
        if self.on_reply is not None:
            self.on_reply(payload)

    def fire_timeout(self) -> None:
        if self.settled or not self.src.alive:
            return
        self.settled = True
        if self.on_timeout is not None:
            self.on_timeout()

    #: The context doubles as its own timeout callback, so scheduling the
    #: timeout event does not allocate a bound method per RPC.
    __call__ = fire_timeout


#: ``_RpcContext.__new__`` bound once -- see ``_new_message`` above.
_new_rpc_context = _RpcContext.__new__
