"""Latency-delayed message transport with liveness and RPC timeouts.

This is where the simulation meets the "physical" network:

- a message from ``a`` to ``b`` is delivered ``topology.latency(a, b)``
  milliseconds after it is sent;
- a message addressed to a failed peer is silently lost -- exactly what a
  crash looks like from the outside;
- the RPC helper gives protocol code the only failure signal real P2P nodes
  have: *no reply within the timeout*.  All failure detection in the paper's
  maintenance protocols (section 5) is built on this.

Protocol endpoints subclass :class:`NetworkNode` and implement handlers named
``handle_<kind>`` (dots in the kind become underscores).  A handler's return
value becomes the RPC reply payload.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import TransportError
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.types import Address

#: Called with the RPC reply payload when the response arrives.
ReplyCallback = Callable[[Dict[str, Any]], None]

#: Called when an RPC times out (destination dead or unknown).
FailureCallback = Callable[[], None]

#: Drop causes tracked by :attr:`Network.drop_counts`.
DROP_CAUSES = ("loss", "dead_dst", "partition")


class NetworkNode:
    """Base class of every protocol endpoint.

    Subclasses implement ``handle_<kind>(message) -> Optional[dict]`` methods;
    the returned dict (if any) is delivered to the RPC caller as the reply.

    Attributes:
        network: the owning :class:`Network`.
        sim: the simulator (shortcut for ``network.sim``).
        address: this node's unique address, assigned at registration.
        alive: liveness flag; dead nodes receive nothing and send nothing.
    """

    def __init__(self, network: "Network", cluster_hint: Optional[int] = None) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.alive = True
        self.address: Address = network.register(self, cluster_hint)

    # ------------------------------------------------------------- liveness
    def fail(self) -> None:
        """Crash the node.  In-flight messages to it will be dropped.

        Subclasses override to also cancel their periodic processes, then
        call ``super().fail()``.
        """
        self.alive = False

    def revive(self) -> None:
        """Bring the node back up (a user re-joining from the same machine).

        The address -- and therefore the topology position -- is retained:
        it is the same physical host.
        """
        self.alive = True

    # ------------------------------------------------------------ messaging
    def send(self, dst: Address, kind: str, **payload: Any) -> None:
        """Fire-and-forget one-way message."""
        self.network.send(self, dst, kind, payload)

    def rpc(
        self,
        dst: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        on_reply: Optional[ReplyCallback] = None,
        on_timeout: Optional[FailureCallback] = None,
        timeout_ms: Optional[float] = None,
    ) -> None:
        """Request/response with a timeout (see :meth:`Network.rpc`)."""
        self.network.rpc(self, dst, kind, payload or {}, on_reply, on_timeout, timeout_ms)

    def retrying_rpc(
        self,
        dst: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        on_reply: Optional[ReplyCallback] = None,
        on_give_up: Optional[FailureCallback] = None,
        timeout_ms: Optional[float] = None,
        retries: int = 2,
        backoff_ms: float = 500.0,
        backoff_factor: float = 2.0,
        backoff_cap_ms: float = 8000.0,
        rng: Optional["random.Random"] = None,
    ) -> None:
        """RPC with capped exponential backoff and deterministic jitter.

        A single lost request or reply no longer looks like a dead peer:
        the call is retried up to *retries* times, waiting
        ``min(cap, backoff * factor**attempt)`` scaled by a jitter factor
        in [0.5, 1.0) between attempts.  Only when the whole budget is
        exhausted does *on_give_up* fire -- the moment protocol code may
        legitimately declare the destination failed.

        Jitter draws come from the simulator's dedicated ``"rpc.retry"``
        stream (or *rng*), so runs stay reproducible and unrelated
        components' random sequences are not perturbed.
        """
        if retries < 0:
            raise TransportError(f"retry budget must be >= 0 (got {retries})")
        jitter_rng = rng if rng is not None else self.sim.rng("rpc.retry")
        body = dict(payload or {})

        def attempt(number: int) -> None:
            if not self.alive:
                return

            def on_timeout() -> None:
                if not self.alive:
                    return
                if number >= retries:
                    if on_give_up is not None:
                        on_give_up()
                    return
                delay = min(backoff_cap_ms, backoff_ms * (backoff_factor ** number))
                delay *= 0.5 + 0.5 * jitter_rng.random()
                self.sim.emit(
                    "net.rpc_retry", rpc_kind=kind, dst=dst, attempt=number + 1
                )
                self.sim.schedule(delay, attempt, number + 1)

            self.rpc(dst, kind, dict(body), on_reply, on_timeout, timeout_ms)

        attempt(0)

    def on_message(self, message: Message) -> Optional[Dict[str, Any]]:
        """Dispatch to ``handle_<kind>``.  Subclasses rarely override this."""
        handler = getattr(self, "handle_" + message.kind.replace(".", "_"), None)
        if handler is None:
            raise TransportError(
                f"{type(self).__name__} at {self.address} has no handler "
                f"for message kind {message.kind!r}"
            )
        return handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"{type(self).__name__}(addr={self.address}, {state})"


class Network:
    """The message fabric: registry, latency-delayed delivery, RPC.

    Args:
        sim: the driving simulator.
        topology: the latency model; each registered node is placed in it.
        default_timeout_ms: RPC timeout when the caller does not pass one.
            Must exceed the worst-case round trip (2 x max link latency),
            otherwise live-but-distant peers would be misdiagnosed as dead.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        default_timeout_ms: float = 2000.0,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.default_timeout_ms = default_timeout_ms
        self._drop_rate = 0.0
        self._drop_rng: Optional["random.Random"] = None
        self._nodes: List[NetworkNode] = []
        self._request_ids = itertools.count(1)
        self.messages_sent = 0
        #: drop cause -> count; see :data:`DROP_CAUSES`.  ``messages_dropped``
        #: (the historical single counter) is the sum over all causes.
        self.drop_counts: Dict[str, int] = {cause: 0 for cause in DROP_CAUSES}
        #: message kind -> number sent; the raw material of the overhead
        #: analysis ("minimizing the incurred overhead" -- paper section 1).
        self.kind_counts: Dict[str, int] = {}
        #: optional :class:`~repro.net.faults.FaultController`; consulted at
        #: scheduling time (latency degradation) and delivery time (partition
        #: cuts, bursty loss).
        self.faults = None

    # ------------------------------------------------------------ fault model
    @property
    def messages_dropped(self) -> int:
        """Total messages dropped, over all causes."""
        return sum(self.drop_counts.values())

    @property
    def dropped_loss(self) -> int:
        """Messages dropped by (uniform or bursty) link loss."""
        return self.drop_counts["loss"]

    @property
    def dropped_dead_dst(self) -> int:
        """Messages addressed to crashed or unknown destinations."""
        return self.drop_counts["dead_dst"]

    @property
    def dropped_partition(self) -> int:
        """Messages cut by an active network partition."""
        return self.drop_counts["partition"]

    def install_faults(self, controller) -> None:
        """Attach a :class:`~repro.net.faults.FaultController` to delivery."""
        self.faults = controller

    def configure_loss(self, rate: float, rng: "random.Random") -> None:
        """Drop each delivery (requests, replies, one-ways) i.i.d. with
        probability *rate* -- failure injection beyond crash churn.

        Protocols already treat lost messages exactly like messages to dead
        peers (RPC timeouts), so no protocol code changes; only the failure
        *rate* goes up.
        """
        if not 0.0 <= rate <= 1.0:
            raise TransportError(f"loss rate must be in [0, 1] (got {rate})")
        self._drop_rate = rate
        self._drop_rng = rng

    def _lost(self) -> bool:
        return (
            self._drop_rate > 0.0
            and self._drop_rng is not None
            and self._drop_rng.random() < self._drop_rate
        )

    # -------------------------------------------------------------- registry
    def register(self, node: NetworkNode, cluster_hint: Optional[int] = None) -> Address:
        """Register *node*, place it in the topology, return its address."""
        address = len(self._nodes)
        self._nodes.append(node)
        self.topology.register(address, cluster_hint)
        return address

    def node(self, address: Address) -> NetworkNode:
        """The node registered at *address*."""
        try:
            return self._nodes[address]
        except IndexError:
            raise TransportError(f"unknown address {address}") from None

    def is_alive(self, address: Address) -> bool:
        """Liveness of the node at *address* (False for unknown addresses)."""
        return 0 <= address < len(self._nodes) and self._nodes[address].alive

    def __len__(self) -> int:
        return len(self._nodes)

    def latency(self, a: Address, b: Address) -> float:
        """One-way latency between two registered addresses."""
        return self.topology.latency(a, b)

    def nodes(self) -> Iterator[NetworkNode]:
        """All registered nodes (fault campaigns iterate this)."""
        return iter(self._nodes)

    def _link_latency(self, src: Address, dst: Address) -> float:
        """Base latency plus any active fault-injected degradation."""
        base = self.topology.latency(src, dst)
        if self.faults is not None:
            return self.faults.latency_adjust(src, dst, base)
        return base

    def _drop(self, cause: str, kind: str, dst: Address) -> None:
        self.drop_counts[cause] = self.drop_counts.get(cause, 0) + 1
        self.sim.emit("net.drop", message_kind=kind, dst=dst, cause=cause)

    # -------------------------------------------------------------- delivery
    def send(
        self,
        src: NetworkNode,
        dst: Address,
        kind: str,
        payload: Dict[str, Any],
    ) -> None:
        """One-way message; delivered after the link latency if dst is alive."""
        if not src.alive:
            return  # a crashed node sends nothing
        message = Message(src.address, dst, kind, payload, sent_at=self.sim.now)
        self.messages_sent += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        self.sim.schedule(self._link_latency(src.address, dst), self._deliver, message, None)

    def rpc(
        self,
        src: NetworkNode,
        dst: Address,
        kind: str,
        payload: Dict[str, Any],
        on_reply: Optional[ReplyCallback],
        on_timeout: Optional[FailureCallback],
        timeout_ms: Optional[float],
    ) -> None:
        """Request/response with timeout.

        The destination handler runs when the request arrives; its return
        value travels back and ``on_reply`` fires at the source one link
        latency later.  If the destination is dead (at delivery time) the
        request vanishes and ``on_timeout`` fires ``timeout_ms`` after the
        send -- the caller cannot tell *why* there was no answer, only that
        there was none, matching real failure detection.

        Callbacks are suppressed if the *source* has died in the meantime
        (a dead peer processes nothing, including its own timers).
        """
        if not src.alive:
            return
        if timeout_ms is None:
            timeout_ms = self.default_timeout_ms
        message = Message(
            src.address, dst, kind, payload,
            sent_at=self.sim.now, request_id=next(self._request_ids),
        )
        self.messages_sent += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        context = _RpcContext(src, on_reply, on_timeout)
        self.sim.schedule(timeout_ms, context.fire_timeout)
        self.sim.schedule(self._link_latency(src.address, dst), self._deliver, message, context)

    def _delivery_drop_cause(self, src: Address, dst: Address) -> Optional[str]:
        """Why a delivery on link src -> dst is lost right now, if at all."""
        if self.faults is not None:
            cause = self.faults.drop_cause(src, dst)
            if cause is not None:
                return cause
        if self._lost():
            return "loss"
        return None

    def _deliver(self, message: Message, context: Optional["_RpcContext"]) -> None:
        dst_node = self._nodes[message.dst] if 0 <= message.dst < len(self._nodes) else None
        if dst_node is None or not dst_node.alive:
            self._drop("dead_dst", message.kind, message.dst)
            return
        cause = self._delivery_drop_cause(message.src, message.dst)
        if cause is not None:
            self._drop(cause, message.kind, message.dst)
            return
        reply = dst_node.on_message(message)
        if context is not None:
            self.messages_sent += 1
            self.sim.schedule(
                self._link_latency(message.dst, message.src),
                self._deliver_reply,
                context,
                message.dst,
                reply if reply is not None else {},
            )

    def _deliver_reply(
        self,
        context: "_RpcContext",
        replier: Address,
        payload: Dict[str, Any],
    ) -> None:
        cause = self._delivery_drop_cause(replier, context.src.address)
        if cause is not None:
            self._drop(cause, "(reply)", context.src.address)
            return
        context.fire_reply(payload)


class _RpcContext:
    """Correlates one RPC's reply and timeout; whichever fires first wins."""

    __slots__ = ("src", "on_reply", "on_timeout", "settled")

    def __init__(
        self,
        src: NetworkNode,
        on_reply: Optional[ReplyCallback],
        on_timeout: Optional[FailureCallback],
    ) -> None:
        self.src = src
        self.on_reply = on_reply
        self.on_timeout = on_timeout
        self.settled = False

    def fire_reply(self, payload: Dict[str, Any]) -> None:
        if self.settled or not self.src.alive:
            return
        self.settled = True
        if self.on_reply is not None:
            self.on_reply(payload)

    def fire_timeout(self) -> None:
        if self.settled or not self.src.alive:
            return
        self.settled = True
        if self.on_timeout is not None:
            self.on_timeout()
