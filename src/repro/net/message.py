"""Message envelope.

Every unit of communication in the simulation is a :class:`Message`.  The
payload is an arbitrary dict owned by the protocol layer; the envelope only
carries addressing and correlation metadata.

``Message`` is a plain ``__slots__`` class rather than a dataclass: at
paper scale hundreds of thousands of envelopes are allocated per run, and
slots shave both per-instance memory and attribute-access time on the
delivery hot path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.types import Address


class Message:
    """One message in flight.

    Attributes:
        src: sender address.
        dst: destination address.
        kind: protocol-level message type (e.g. ``"gossip.shuffle"``).
        payload: protocol-owned content.
        sent_at: simulation time the message left the sender.
        request_id: correlation id set by the RPC layer (None for one-way).
    """

    __slots__ = ("src", "dst", "kind", "payload", "sent_at", "request_id")

    def __init__(
        self,
        src: Address,
        dst: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        sent_at: float = 0.0,
        request_id: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = {} if payload is None else payload
        self.sent_at = sent_at
        self.request_id = request_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        req = f", req={self.request_id}" if self.request_id is not None else ""
        return f"Message({self.src}->{self.dst} {self.kind!r} @{self.sent_at:.1f}{req})"
