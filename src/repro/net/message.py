"""Message envelope.

Every unit of communication in the simulation is a :class:`Message`.  The
payload is an arbitrary dict owned by the protocol layer; the envelope only
carries addressing and correlation metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.types import Address


@dataclass
class Message:
    """One message in flight.

    Attributes:
        src: sender address.
        dst: destination address.
        kind: protocol-level message type (e.g. ``"gossip.shuffle"``).
        payload: protocol-owned content.
        sent_at: simulation time the message left the sender.
        request_id: correlation id set by the RPC layer (None for one-way).
    """

    src: Address
    dst: Address
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0
    request_id: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        req = f", req={self.request_id}" if self.request_id is not None else ""
        return f"Message({self.src}->{self.dst} {self.kind!r} @{self.sent_at:.1f}{req})"
