"""Optional bandwidth model for payload transfers.

The base transport (:mod:`repro.net.transport`) is latency-only, matching
the paper's PeerSim setup (section 6.1): a message of any size arrives
after one link latency, so a content fetch is an atomic RPC and a serving
peer that crashes mid-download is invisible.  This module adds the missing
dimension for *large* objects:

* every peer has a finite **upload capacity** (kilobits per second) that
  is fair-shared across its concurrent outbound transfers, and
* each transfer is optionally capped by a **per-link rate**.

The model is strictly opt-in: ``Network.bandwidth`` stays ``None`` unless
:meth:`Network.install_bandwidth` is called, and with it off no events,
RNG draws, or wire formats change — the PR 6/7 determinism goldens stay
bit-identical.  Control messages are *always* latency-only; only the
swarming layer (:mod:`repro.cdn.swarm`) opens flows here for chunk
payloads.

Mechanics.  A :class:`Flow` models one outbound payload transfer.  Rates
are expressed in kbps, which conveniently equals bits-per-millisecond, so
``time_ms = size_bytes * 8 / rate_kbps``.  Fair sharing uses settle-then-
reschedule: whenever the flow set at a sender changes, elapsed progress
is credited to every active flow at the old rate, the new per-flow rate
``min(link_kbps or inf, upload_kbps / n_flows)`` is computed, and each
completion event is rescheduled.  All bookkeeping is driven by simulator
events, so runs are deterministic.

Slow uplinks.  A deterministic fraction of peers can be degraded to
``upload_kbps / slow_factor`` — membership is a pure function of the
model seed and the address (no shared RNG stream), so adding peers never
perturbs who is slow.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.types import Address

__all__ = ["BandwidthParams", "BandwidthModel", "Flow"]


@dataclass(frozen=True)
class BandwidthParams:
    """Knobs for the fair-share upload model.

    Attributes:
        upload_kbps: per-peer upload capacity, kilobits per second.
        link_kbps: optional per-link (per-flow) rate cap; 0 disables it.
        slow_fraction: fraction of peers with a degraded uplink.
        slow_factor: slow peers upload at ``upload_kbps / slow_factor``.
        seed: master seed for the deterministic slow-uplink draw.
    """

    upload_kbps: float = 8000.0
    link_kbps: float = 0.0
    slow_fraction: float = 0.0
    slow_factor: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.upload_kbps <= 0:
            raise ConfigError(f"upload_kbps must be positive (got {self.upload_kbps})")
        if self.link_kbps < 0:
            raise ConfigError(f"link_kbps must be >= 0 (got {self.link_kbps})")
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ConfigError(
                f"slow_fraction must be in [0, 1] (got {self.slow_fraction})"
            )
        if self.slow_factor < 1.0:
            raise ConfigError(f"slow_factor must be >= 1 (got {self.slow_factor})")


class Flow:
    """One outbound payload transfer, progressing at a fair-share rate."""

    __slots__ = (
        "src",
        "dst",
        "size_bytes",
        "remaining_bits",
        "rate_kbps",
        "started_at",
        "settled_at",
        "on_done",
        "on_abort",
        "done",
        "_handle",
    )

    def __init__(
        self,
        src: Address,
        dst: Address,
        size_bytes: int,
        now: float,
        on_done: Callable[["Flow"], None],
        on_abort: Optional[Callable[["Flow"], None]],
    ) -> None:
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.remaining_bits = float(size_bytes) * 8.0
        self.rate_kbps = 0.0
        self.started_at = now
        self.settled_at = now
        self.on_done = on_done
        self.on_abort = on_abort
        self.done = False
        self._handle = None


class BandwidthModel:
    """Fair-share scheduler for concurrent outbound transfers.

    Attach with :meth:`repro.net.transport.Network.install_bandwidth`.
    The swarming layer opens a flow per chunk payload via :meth:`start`;
    chunk *requests* and all other control traffic remain latency-only
    RPCs on the base transport.
    """

    def __init__(self, sim: Simulator, params: BandwidthParams) -> None:
        self.sim = sim
        self.params = params
        self._flows_by_src: Dict[Address, List[Flow]] = {}
        self._capacity: Dict[Address, float] = {}
        #: Counters (exported through ``swarm_stats()`` / bench reports).
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_aborted = 0
        self.bytes_completed = 0
        self.bytes_aborted = 0
        self.peak_concurrent = 0
        self.slow_peers = 0

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    def capacity_kbps(self, address: Address) -> float:
        """The (memoized) upload capacity of ``address``.

        Slow-uplink membership is a pure function of ``(seed, address)``
        via :func:`derive_seed`, so it is stable under population growth.
        """
        cached = self._capacity.get(address)
        if cached is not None:
            return cached
        p = self.params
        capacity = p.upload_kbps
        if p.slow_fraction > 0.0:
            draw = random.Random(derive_seed(p.seed, f"uplink:{address}")).random()
            if draw < p.slow_fraction:
                capacity = p.upload_kbps / p.slow_factor
                self.slow_peers += 1
        self._capacity[address] = capacity
        return capacity

    def is_slow(self, address: Address) -> bool:
        return self.capacity_kbps(address) < self.params.upload_kbps

    # ------------------------------------------------------------------
    # flow lifecycle
    # ------------------------------------------------------------------

    def start(
        self,
        src: Address,
        dst: Address,
        size_bytes: int,
        on_done: Callable[[Flow], None],
        on_abort: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Open a flow of ``size_bytes`` from ``src``; returns its handle.

        ``on_done(flow)`` fires when the last bit lands; ``on_abort(flow)``
        fires instead if the sender dies (:meth:`abort_uploads_of`) or the
        flow is cancelled mid-transfer.
        """
        if size_bytes <= 0:
            raise ConfigError(f"flow size must be positive (got {size_bytes})")
        now = self.sim.now
        flow = Flow(src, dst, size_bytes, now, on_done, on_abort)
        self._settle(src)
        flows = self._flows_by_src.setdefault(src, [])
        flows.append(flow)
        self.flows_started += 1
        if len(flows) > self.peak_concurrent:
            self.peak_concurrent = len(flows)
        self._reschedule(src)
        return flow

    def cancel(self, flow: Flow) -> None:
        """Drop ``flow`` without invoking either callback (idempotent)."""
        if flow.done:
            return
        flow.done = True
        self._discard(flow)

    def abort_uploads_of(self, address: Address) -> int:
        """Abort every in-flight upload from ``address`` (seeder death).

        Each aborted flow's ``on_abort`` callback fires synchronously so
        downloaders can fail over per-chunk.  Returns the abort count.
        """
        flows = self._flows_by_src.get(address)
        if not flows:
            return 0
        self._settle(address)
        victims = list(flows)
        for flow in victims:
            flow.done = True
            if flow._handle is not None:
                self.sim.cancel(flow._handle)
                flow._handle = None
            self.flows_aborted += 1
            self.bytes_aborted += flow.size_bytes
        del self._flows_by_src[address]
        for flow in victims:
            if flow.on_abort is not None:
                flow.on_abort(flow)
        return len(victims)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _settle(self, src: Address) -> None:
        """Credit progress at the current rates up to ``sim.now``."""
        flows = self._flows_by_src.get(src)
        if not flows:
            return
        now = self.sim.now
        for flow in flows:
            elapsed = now - flow.settled_at
            if elapsed > 0.0 and flow.rate_kbps > 0.0:
                # kbps == bits per millisecond, so this is just bits.
                flow.remaining_bits = max(
                    0.0, flow.remaining_bits - elapsed * flow.rate_kbps
                )
            flow.settled_at = now
        return

    def _reschedule(self, src: Address) -> None:
        """Recompute fair shares and re-arm every completion event."""
        flows = self._flows_by_src.get(src)
        if not flows:
            return
        share = self.capacity_kbps(src) / len(flows)
        link = self.params.link_kbps
        rate = min(share, link) if link > 0.0 else share
        for flow in flows:
            flow.rate_kbps = rate
            if flow._handle is not None:
                self.sim.cancel(flow._handle)
            delay = flow.remaining_bits / rate
            if not math.isfinite(delay):
                raise ConfigError(f"non-finite flow delay for {src}->{flow.dst}")
            flow._handle = self.sim.schedule(delay, self._complete, flow)
        return

    def _complete(self, flow: Flow) -> None:
        if flow.done:
            return
        flow.done = True
        flow._handle = None
        # The firing event is always current (membership changes re-arm
        # it), so the flow has fully drained modulo float epsilon.
        flow.remaining_bits = 0.0
        self._settle(flow.src)
        self._discard(flow)
        self.flows_completed += 1
        self.bytes_completed += flow.size_bytes
        flow.on_done(flow)

    def _discard(self, flow: Flow) -> None:
        if flow._handle is not None:
            self.sim.cancel(flow._handle)
            flow._handle = None
        flows = self._flows_by_src.get(flow.src)
        if not flows:
            return
        try:
            flows.remove(flow)
        except ValueError:
            return
        if flows:
            self._settle(flow.src)
            self._reschedule(flow.src)
        else:
            del self._flows_by_src[flow.src]

    def active_flows(self, src: Address) -> int:
        flows = self._flows_by_src.get(src)
        return len(flows) if flows else 0

    def stats(self) -> Dict[str, float]:
        return {
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_aborted": self.flows_aborted,
            "bytes_completed": self.bytes_completed,
            "bytes_aborted": self.bytes_aborted,
            "peak_concurrent": self.peak_concurrent,
            "slow_peers": self.slow_peers,
        }
