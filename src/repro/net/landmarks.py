"""Landmark-based locality binning.

Flower-CDN groups peers into *k* physical localities "using a landmark
technique" (paper section 3.1, citing Ratnasamy et al., INFOCOM 2002).  The
idea: a small set of well-known landmark hosts exists; a joining peer probes
its latency to each landmark and derives its locality from the result.  Peers
that are physically close obtain the same locality label without any global
coordination.

We implement the nearest-landmark variant: ``locality = argmin_i probe(i)``.
With one landmark per geographic cluster this recovers the ground-truth
clusters of :class:`~repro.net.topology.ClusteredTopology` almost perfectly
(the property tests quantify this), while on a structureless topology it
produces an arbitrary -- but still consistent -- partition, which is exactly
what the locality ablation needs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.errors import TopologyError
from repro.net.topology import ClusteredTopology, Topology
from repro.types import Address, LocalityId

#: Measured latency from a peer to landmark *i*.
ProbeFunction = Callable[[Address, int], float]


class LandmarkBinner:
    """Assign each peer a locality by probing k landmarks.

    Args:
        num_localities: the number of landmarks, k (paper uses 6).
        probe: ``probe(address, landmark_index) -> latency_ms``.
    """

    def __init__(self, num_localities: int, probe: ProbeFunction) -> None:
        if num_localities < 1:
            raise TopologyError(f"need at least one locality (got {num_localities})")
        self.num_localities = num_localities
        self._probe = probe
        self._cache: Dict[Address, LocalityId] = {}

    @classmethod
    def for_clustered(cls, topology: ClusteredTopology) -> "LandmarkBinner":
        """Landmarks placed at the cluster centres of a clustered topology.

        This models the common deployment where landmarks are well-spread
        infrastructure hosts (one per region).
        """

        def probe(address: Address, landmark: int) -> float:
            return topology.latency_at(
                topology.position(address), topology.centers[landmark]
            )

        return cls(topology.num_clusters, probe)

    @classmethod
    def for_addresses(
        cls, topology: Topology, landmark_addresses: Sequence[Address]
    ) -> "LandmarkBinner":
        """Landmarks hosted at designated registered peers."""
        landmarks = list(landmark_addresses)
        if not landmarks:
            raise TopologyError("need at least one landmark address")
        for address in landmarks:
            if not topology.knows(address):
                raise TopologyError(f"landmark address {address} is not registered")

        def probe(address: Address, landmark: int) -> float:
            return topology.latency(address, landmarks[landmark])

        return cls(len(landmarks), probe)

    def landmark_vector(self, address: Address) -> List[float]:
        """The full vector of probed latencies (one per landmark)."""
        return [self._probe(address, i) for i in range(self.num_localities)]

    def locality_of(self, address: Address) -> LocalityId:
        """The peer's locality: the index of its nearest landmark.

        The result is cached: localities are determined once at join time,
        like a real peer would do, and never flap afterwards.
        """
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        vector = self.landmark_vector(address)
        locality = min(range(self.num_localities), key=vector.__getitem__)
        self._cache[address] = locality
        return locality

    def forget(self, address: Address) -> None:
        """Drop the cached locality (used when recycling peer identities)."""
        self._cache.pop(address, None)
