"""World construction and experiment execution.

:func:`build_world` assembles one complete simulated deployment --
simulator, latency topology, landmark binner, origin servers, CDN system,
churn process -- exactly as section 6.1 describes; :func:`run_experiment`
runs it to the horizon and summarises the metrics.

Determinism: the whole run is a pure function of ``(protocol, config,
seed)``; every stochastic choice draws from a named stream of the
simulator's RNG registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cdn.base import CdnSystem
from repro.cdn.flower.search import (
    KeywordSearchEngine,
    KeywordSpace,
    SearchProbeWorkload,
)
from repro.cdn.flower.stats import collect_swarm_stats
from repro.cdn.flower.system import FlowerSystem
from repro.cdn.petalup.system import PetalUpSystem
from repro.cdn.squirrel.homestore import HomeStoreSquirrelSystem
from repro.cdn.squirrel.system import SquirrelSystem
from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.net.faults import FaultController
from repro.net.landmarks import LandmarkBinner
from repro.net.topology import ClusteredTopology, Topology, UniformRandomTopology
from repro.net.transport import Network, NetworkNode
from repro.sim.clock import minutes, seconds
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog
from repro.workload.churn import ChurnModel
from repro.workload.openloop import ArrivalProfile, OpenLoopWorkload

#: protocol name -> system class
PROTOCOLS = {
    "flower": FlowerSystem,
    "petalup": PetalUpSystem,
    "squirrel": SquirrelSystem,
    "squirrel-home": HomeStoreSquirrelSystem,
}


@dataclass
class World:
    """One fully assembled deployment, ready to run."""

    sim: Simulator
    topology: Topology
    network: Network
    binner: LandmarkBinner
    catalog: Catalog
    system: CdnSystem
    churn: ChurnModel
    config: ExperimentConfig
    faults: Optional[FaultController] = None
    search_probes: Optional[SearchProbeWorkload] = None
    openloop: Optional[OpenLoopWorkload] = None

    def run(self, until_ms: Optional[float] = None) -> None:
        """Advance the simulation (defaults to the configured horizon)."""
        self.sim.run(until=until_ms if until_ms is not None else self.config.duration_ms)


def _make_topology(config: ExperimentConfig, sim: Simulator) -> Topology:
    if config.topology == "clustered":
        return ClusteredTopology(
            sim.rng("topology"),
            num_clusters=config.num_localities,
            latency_min_ms=config.latency_min_ms,
            latency_max_ms=config.latency_max_ms,
        )
    return UniformRandomTopology(
        seed=sim.seed,
        latency_min_ms=config.latency_min_ms,
        latency_max_ms=config.latency_max_ms,
    )


def _make_binner(
    config: ExperimentConfig,
    topology: Topology,
    network: Network,
) -> LandmarkBinner:
    if isinstance(topology, ClusteredTopology):
        return LandmarkBinner.for_clustered(topology)
    # Structureless topology: host k landmark nodes and bin against them
    # (the ablation case -- the partition is consistent but carries no
    # latency information).
    landmarks = [NetworkNode(network) for __ in range(config.num_localities)]
    return LandmarkBinner.for_addresses(
        network.topology, [node.address for node in landmarks]
    )


def build_world(
    protocol: str,
    config: ExperimentConfig,
    seed: int = 0,
) -> World:
    """Assemble a deployment without running it (examples & tests use this
    to poke at intermediate states)."""
    try:
        system_cls = PROTOCOLS[protocol]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
    if protocol == "petalup":
        # PetalUp-CDN needs its split knobs on; fill in the defaults when
        # the caller did not choose them explicitly.
        from repro.cdn.petalup.system import DEFAULT_LOAD_LIMIT, DEFAULT_MAX_INSTANCES

        if config.directory_load_limit is None:
            config = config.replace(directory_load_limit=DEFAULT_LOAD_LIMIT)
        if config.max_instances < 2:
            config = config.replace(max_instances=DEFAULT_MAX_INSTANCES)
    sim = Simulator(seed=seed)
    topology = _make_topology(config, sim)
    network = Network(
        sim, topology, default_timeout_ms=3.0 * config.latency_max_ms
    )
    if config.message_loss_rate > 0.0:
        network.configure_loss(config.message_loss_rate, sim.rng("loss"))
    binner = _make_binner(config, topology, network)
    catalog = Catalog(
        num_websites=config.num_websites,
        objects_per_website=config.objects_per_website,
        num_active_websites=config.num_active_websites,
    )
    system = system_cls(
        sim, network, binner, catalog, config.protocol_params()
    )
    if config.swarming:
        # Chunked swarming transfers: attach the seeded object-size model
        # (shared with the origin servers for byte accounting) and, when
        # configured, the fair-share bandwidth model.  Both are strictly
        # opt-in: off, no model is built and runs stay bit-identical to
        # the atomic-fetch goldens.
        from repro.workload.objectsize import ObjectSizeModel

        system.install_sizes(
            ObjectSizeModel(
                mean_kb=config.object_mean_kb,
                alpha=config.object_alpha,
                max_kb=config.object_max_kb,
                chunk_kb=config.swarm_chunk_kb,
                seed=seed,
            )
        )
    if config.bandwidth_kbps > 0.0:
        from repro.net.bandwidth import BandwidthModel, BandwidthParams

        network.install_bandwidth(
            BandwidthModel(
                sim,
                BandwidthParams(
                    upload_kbps=config.bandwidth_kbps,
                    link_kbps=config.bandwidth_link_kbps,
                    slow_fraction=config.bandwidth_slow_fraction,
                    slow_factor=config.bandwidth_slow_factor,
                    seed=seed,
                ),
            )
        )
    search_probes: Optional[SearchProbeWorkload] = None
    if config.search_keywords > 0 and isinstance(system, FlowerSystem):
        # Keyword-search extension (section 5.4).  Installed before the
        # initial population so seed directories attach their posting
        # lists on activation; the probe workload draws from a dedicated
        # stream and so never perturbs the protocol's own sequences.
        system.search_engine = KeywordSearchEngine(
            KeywordSpace(num_keywords=config.search_keywords)
        )
        if config.search_probe_period_s > 0:
            search_probes = SearchProbeWorkload(
                sim,
                system,
                period_ms=seconds(config.search_probe_period_s),
                rng=sim.rng("search_probes"),
            )
    system.setup_initial_population()
    churn = ChurnModel(
        sim,
        sim.rng("churn"),
        num_identities=config.num_identities,
        mean_uptime_ms=minutes(config.mean_uptime_min),
        target_population=config.population,
        on_arrival=system.on_arrival,
        on_departure=system.on_departure,
    )
    for identity in getattr(system, "seed_identities", []):
        churn.seed_online(identity)
    churn.start()
    openloop: Optional[OpenLoopWorkload] = None
    profile = ArrivalProfile.from_config(config)
    if profile is not None:
        # Open-loop overload traffic (own "openloop" RNG stream).  A rate
        # of zero builds nothing: no events, no draws, golden streams
        # untouched.
        openloop = OpenLoopWorkload(sim, system, profile)
        openloop.start()
    faults: Optional[FaultController] = None
    if config.fault_schedule:
        # Dedicated "faults" RNG stream: injecting faults perturbs no other
        # component's random sequence, so fault runs stay comparable with
        # fault-free runs of the same seed.
        faults = FaultController(
            sim, network, rng=sim.rng("faults"), locality_of=binner.locality_of
        )
        faults.apply(config.fault_schedule)
    return World(
        sim=sim,
        topology=topology,
        network=network,
        binner=binner,
        catalog=catalog,
        system=system,
        churn=churn,
        config=config,
        faults=faults,
        search_probes=search_probes,
        openloop=openloop,
    )


def run_experiment(
    protocol: str,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentResult:
    """Run one full experiment and summarise it.

    Args:
        protocol: "flower", "petalup" or "squirrel".
        config: experiment parameters (defaults to the paper's Table 1 at
            P = 3000 -- expect a multi-minute run; tests and examples pass
            :meth:`ExperimentConfig.scaled`).
        seed: master RNG seed.
        workers: worker processes.  1 (the default) runs the legacy
            single-simulator path, bit-identical to the golden traces;
            > 1 delegates to the sharded engine
            (:func:`repro.experiments.sharded.run_sharded_experiment`),
            which partitions the world by locality and is its own
            deterministic model (invariant in the worker count, but not
            stream-identical to the single-simulator build).
    """
    config = config or ExperimentConfig()
    if workers != 1:
        # Local import: the sharded engine depends on this module's siblings.
        from repro.experiments.sharded import run_sharded_experiment

        return run_sharded_experiment(protocol, config, seed=seed, workers=workers)
    world = build_world(protocol, config, seed)
    world.run()
    system = world.system
    extra = {
        "online_peers": system.online_peers,
        "message_counts": dict(world.network.kind_counts),
        "drop_counts": dict(world.network.drop_counts),
    }
    if isinstance(system, FlowerSystem):
        extra["directories"] = system.directory_count()
        extra["expired_members"] = system.expired_members
        if (
            config.openloop_rate_qps > 0
            or config.directory_queue_limit > 0
            or config.overload_shedding
        ):
            extra["overload"] = system.stats().overload.to_dict()
    if config.swarming:
        extra["swarm"] = collect_swarm_stats(system).to_dict()
    if world.openloop is not None:
        extra["openloop"] = dict(world.openloop.stats)
    if isinstance(system, SquirrelSystem):
        extra["ring_size"] = system.ring_size()
    if isinstance(system, HomeStoreSquirrelSystem):
        extra["forced_replicas"] = system.total_forced_replicas()
    return ExperimentResult.from_metrics(
        protocol=protocol,
        seed=seed,
        population=config.population,
        duration_hours=config.duration_hours,
        metrics=system.metrics,
        events_executed=world.sim.events_executed,
        messages_sent=world.network.messages_sent,
        arrivals=world.churn.arrivals,
        departures=world.churn.departures,
        extra=extra,
    )


def run_chaos_experiment(
    protocol: str,
    config: Optional[ExperimentConfig] = None,
    chaos_seed: int = 0,
    seed: int = 0,
    intensity: float = 1.0,
    results_dir: Optional[str] = "results/chaos",
    halt_on_violation: bool = False,
):
    """Run one randomized chaos plan with the invariant auditor online.

    Convenience front door to :mod:`repro.chaos`: generates the plan for
    ``(chaos_seed, intensity)`` from the config's shape (horizon,
    localities, websites, population) and executes it under audit.  For
    full control -- explicit plans, bundle replay, fingerprints -- use
    :func:`repro.chaos.run_chaos` directly.

    Returns:
        A :class:`repro.chaos.runner.ChaosRunReport`.
    """
    # Local import: repro.chaos builds on this module (build_world).
    from repro.chaos import generate_plan, run_chaos

    config = config or ExperimentConfig.scaled()
    plan = generate_plan(
        chaos_seed,
        horizon_ms=config.duration_ms,
        num_localities=config.num_localities,
        num_websites=config.num_websites,
        intensity=intensity,
        population=config.population,
    )
    return run_chaos(
        protocol,
        config,
        plan,
        seed=seed,
        results_dir=results_dir,
        halt_on_violation=halt_on_violation,
    )


def run_recovery_experiment(
    protocol: str,
    config: ExperimentConfig,
    fault_start_ms: float,
    fault_end_ms: float,
    seed: int = 0,
    window_ms: Optional[float] = None,
    epsilon: float = 0.05,
):
    """Run a fault experiment and measure how the protocol rides it out.

    The config's ``fault_schedule`` defines *what* is injected; the
    ``fault_start_ms`` / ``fault_end_ms`` pair tells the report which
    window to treat as the fault phase (e.g. partition start and heal).

    Returns:
        ``(result, recovery)`` -- the usual
        :class:`~repro.experiments.results.ExperimentResult` plus a
        :class:`~repro.metrics.recovery.RecoveryReport`.
    """
    from repro.metrics.recovery import RecoveryReport, track_issued_queries

    world = build_world(protocol, config, seed)
    issued = track_issued_queries(world.sim)
    world.run()
    system = world.system
    recovery = RecoveryReport(
        system.metrics.records,
        fault_start_ms=fault_start_ms,
        fault_end_ms=fault_end_ms,
        horizon_ms=config.duration_ms,
        window_ms=window_ms if window_ms is not None else minutes(30),
        issued_times=issued,
        epsilon=epsilon,
    )
    extra = {
        "online_peers": system.online_peers,
        "message_counts": dict(world.network.kind_counts),
        "drop_counts": dict(world.network.drop_counts),
        "availability": recovery.availability,
    }
    if isinstance(system, FlowerSystem):
        extra["directories"] = system.directory_count()
        extra["expired_members"] = system.expired_members
    if isinstance(system, SquirrelSystem):
        extra["ring_size"] = system.ring_size()
    result = ExperimentResult.from_metrics(
        protocol=protocol,
        seed=seed,
        population=config.population,
        duration_hours=config.duration_hours,
        metrics=system.metrics,
        events_executed=world.sim.events_executed,
        messages_sent=world.network.messages_sent,
        arrivals=world.churn.arrivals,
        departures=world.churn.departures,
        extra=extra,
    )
    return result, recovery


def run_directory_recovery_experiment(
    protocol: str,
    config: ExperimentConfig,
    fault_start_ms: float,
    fault_end_ms: float,
    seed: int = 0,
    window_ms: Optional[float] = None,
    epsilon: float = 0.05,
    localities: Optional[list] = None,
):
    """Like :func:`run_recovery_experiment`, plus directory-index metrics.

    Attaches a :class:`~repro.metrics.recovery.DirectoryRecoveryTracker`
    before the run, so the result's ``extra["directory_recovery"]`` block
    carries time-to-full-index, cold-window miss count and replica
    staleness at takeover -- the replica-aware metrics the warm-failover
    A/B (cold ``directory_replication_k = 0`` vs warm ``k >= 1``)
    compares.  Flower-family protocols only.

    Returns:
        ``(result, recovery, directory_recovery)`` -- the usual pair plus
        the tracker's :meth:`~repro.metrics.recovery.DirectoryRecoveryTracker.summary`
        dict.
    """
    from repro.metrics.recovery import (
        DirectoryRecoveryTracker,
        RecoveryReport,
        track_issued_queries,
    )

    world = build_world(protocol, config, seed)
    if not isinstance(world.system, FlowerSystem):
        raise ConfigError(
            "directory recovery metrics need a Flower-family protocol"
        )
    issued = track_issued_queries(world.sim)
    tracker = DirectoryRecoveryTracker(
        world, fault_start_ms=fault_start_ms, localities=localities
    )
    world.run()
    system = world.system
    recovery = RecoveryReport(
        system.metrics.records,
        fault_start_ms=fault_start_ms,
        fault_end_ms=fault_end_ms,
        horizon_ms=config.duration_ms,
        window_ms=window_ms if window_ms is not None else minutes(30),
        issued_times=issued,
        epsilon=epsilon,
    )
    directory_recovery = tracker.summary(system.metrics.records)
    extra = {
        "online_peers": system.online_peers,
        "message_counts": dict(world.network.kind_counts),
        "drop_counts": dict(world.network.drop_counts),
        "availability": recovery.availability,
        "directories": system.directory_count(),
        "expired_members": system.expired_members,
        "directory_recovery": directory_recovery,
        "replication": system.stats().replication.to_dict(),
    }
    result = ExperimentResult.from_metrics(
        protocol=protocol,
        seed=seed,
        population=config.population,
        duration_hours=config.duration_hours,
        metrics=system.metrics,
        events_executed=world.sim.events_executed,
        messages_sent=world.network.messages_sent,
        arrivals=world.churn.arrivals,
        departures=world.churn.departures,
        extra=extra,
    )
    return result, recovery, directory_recovery
