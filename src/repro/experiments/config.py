"""Experiment configuration: the paper's Table 1, parameter for parameter.

===========================  =======================  =====================
Paper parameter (Table 1)    Field                    Paper value
===========================  =======================  =====================
Latency (ms)                 latency_min_ms/max_ms    10-500
Nb of localities (k)         num_localities           6
Nb of websites (|W|)         num_websites             100
Mean population size (P)     population               2000/3000/4000/5000
Total network size           peer_pool_factor         P x 1.3
Mean uptime of a peer (m)    mean_uptime_min          60 min
Nb of objects/website        objects_per_website      500
Query rate at a peer         query_interval_min       1 query / 6 min
Push threshold               push_threshold           0.5
Gossip/keepalive period      gossip_period_min        1 hour
(active websites)            num_active_websites      6
(experiment length)          duration_hours           24 h
===========================  =======================  =====================

:meth:`ExperimentConfig.paper` returns the full-scale configuration;
:meth:`ExperimentConfig.scaled` returns a proportionally reduced one that
exercises identical code paths in seconds (used by tests and the default
benchmark runs; ``REPRO_SCALE=full`` switches the benches to paper scale).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cdn.base import ProtocolParams
from repro.dht.ring import RingParams
from repro.errors import ConfigError
from repro.sim.clock import minutes, seconds


class _SubConfig:
    """Shared plumbing of the typed sub-config views.

    Each subclass declares ``_FLAT``: its own field name -> the flat
    :class:`ExperimentConfig` field it mirrors.  The flat fields remain
    the single source of truth (serialization, hashing, ``replace`` and
    the chaos-bundle JSON shape are untouched); the views only group
    them for construction and readable access.
    """

    _FLAT: Dict[str, str] = {}

    def as_flat(self) -> Dict[str, Any]:
        """This view's values as flat ``ExperimentConfig`` kwargs."""
        return {flat: getattr(self, name) for name, flat in self._FLAT.items()}

    @classmethod
    def _from_config(cls, config: "ExperimentConfig"):
        return cls(**{name: getattr(config, flat) for name, flat in cls._FLAT.items()})


@dataclass(frozen=True)
class ReplicationConfig(_SubConfig):
    """Warm directory failover (section 5.3)."""

    k: int = 0
    anti_entropy: int = 4

    _FLAT = {
        "k": "directory_replication_k",
        "anti_entropy": "directory_replication_anti_entropy",
    }


@dataclass(frozen=True)
class OverloadConfig(_SubConfig):
    """Open-loop traffic, admission queues, shedding, hints, rebalancing."""

    rate_qps: float = 0.0
    diurnal_amplitude: float = 0.0
    diurnal_period_hours: float = 24.0
    surges: tuple = ()
    queue_limit: int = 0
    service_ms: float = 40.0
    shedding: bool = False
    redirect_hints: bool = False
    hint_ttl_ms: float = 60_000.0
    rebalance: bool = False
    rebalance_cooldown_rounds: int = 2
    rebalance_budget_kb: float = 1024.0
    rebalance_max_keys: int = 4

    _FLAT = {
        "rate_qps": "openloop_rate_qps",
        "diurnal_amplitude": "openloop_diurnal_amplitude",
        "diurnal_period_hours": "openloop_diurnal_period_hours",
        "surges": "openloop_surges",
        "queue_limit": "directory_queue_limit",
        "service_ms": "directory_service_ms",
        "shedding": "overload_shedding",
        "redirect_hints": "redirect_hints",
        "hint_ttl_ms": "hint_ttl_ms",
        "rebalance": "rebalance",
        "rebalance_cooldown_rounds": "rebalance_cooldown_rounds",
        "rebalance_budget_kb": "rebalance_budget_kb",
        "rebalance_max_keys": "rebalance_max_keys",
    }


@dataclass(frozen=True)
class SearchConfig(_SubConfig):
    """Keyword-search extension (paper section 7)."""

    keywords: int = 0
    probe_period_s: float = 0.0

    _FLAT = {
        "keywords": "search_keywords",
        "probe_period_s": "search_probe_period_s",
    }


@dataclass(frozen=True)
class SwarmConfig(_SubConfig):
    """Chunked swarming transfers, object sizes and the bandwidth model."""

    enabled: bool = False
    parallel: int = 4
    sources: int = 4
    resume: bool = True
    replicate: int = 0
    stall_ms: float = 8000.0
    retry_ms: float = 200.0
    chunk_kb: int = 64
    object_mean_kb: float = 64.0
    object_alpha: float = 1.5
    object_max_kb: float = 4096.0
    bandwidth_kbps: float = 0.0
    bandwidth_link_kbps: float = 0.0
    bandwidth_slow_fraction: float = 0.0
    bandwidth_slow_factor: float = 8.0

    _FLAT = {
        "enabled": "swarming",
        "parallel": "swarm_parallel",
        "sources": "swarm_sources",
        "resume": "swarm_resume",
        "replicate": "swarm_replicate",
        "stall_ms": "swarm_stall_ms",
        "retry_ms": "swarm_retry_ms",
        "chunk_kb": "swarm_chunk_kb",
        "object_mean_kb": "object_mean_kb",
        "object_alpha": "object_alpha",
        "object_max_kb": "object_max_kb",
        "bandwidth_kbps": "bandwidth_kbps",
        "bandwidth_link_kbps": "bandwidth_link_kbps",
        "bandwidth_slow_fraction": "bandwidth_slow_fraction",
        "bandwidth_slow_factor": "bandwidth_slow_factor",
    }


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that defines one simulation run (see module docstring).

    Implementation knobs beyond Table 1:

    Attributes:
        chord_bits: identifier-space width of every Chord ring.
        chord_successor_list: successor-list length r.
        chord_maintenance_s: period of the combined stabilization tick.
        topology: ``"clustered"`` (the default, locality structure present)
            or ``"uniform"`` (no structure -- the locality ablation).
        summary_kind: ``"exact"`` or ``"bloom"`` content summaries.
        directory_load_limit / max_instances: PetalUp-CDN's split knobs
            (None / 1 = plain Flower-CDN).
        directory_collaboration: same-website directory collaboration.
        rpc_retries: retry budget of directory-facing RPCs and (paired with
            the dring's ``probe_retries``) Chord probes; 0 restores the
            seed's single-shot behaviour.
        directory_replication_k: warm-failover replication degree -- each
            directory replicates its versioned state to this many D-ring
            successors plus one in-petal heir (0 = off, the default, which
            keeps runs bit-identical to the non-replicated build).
        directory_replication_anti_entropy: full-snapshot anti-entropy
            every Nth replica-sync round.
        search_keywords: keyword-space size of the optional search
            extension (paper section 7); > 0 installs a
            :class:`~repro.cdn.flower.search.KeywordSearchEngine` on
            Flower-family systems (0 = off, the default -- required for
            golden-stream compatibility).
        search_probe_period_s: period of the synthetic search-probe
            workload driving the availability experiments (0 = no
            probes; needs ``search_keywords > 0``).
        fault_schedule: tuple of fault specs from :mod:`repro.net.faults`
            (:class:`~repro.net.faults.BurstyLossSpec`,
            :class:`~repro.net.faults.PartitionSpec`,
            :class:`~repro.net.faults.LatencySpikeSpec`,
            :class:`~repro.net.faults.MassFailureSpec`), applied by the
            runner through a :class:`~repro.net.faults.FaultController`
            on its own deterministic RNG stream.  Empty = no injected
            faults (uniform ``message_loss_rate`` still applies).
        openloop_rate_qps: aggregate open-loop arrival rate (queries per
            second across the whole system) of the overload workload
            (:mod:`repro.workload.openloop`).  0 = off, the default: the
            closed-loop per-peer query process of Table 1 is the only
            traffic and runs stay bit-identical to the goldens.
        openloop_diurnal_amplitude: relative amplitude in [0, 1) of the
            sinusoidal diurnal modulation of the open-loop rate.
        openloop_diurnal_period_hours: period of that diurnal cycle.
        openloop_surges: regionally-correlated flash crowds riding the
            open-loop process -- a tuple of plain-number tuples
            ``(start_ms, ramp_ms, peak_multiplier, decay_ms, locality,
            hot_website, hot_probability)`` (``locality``/``hot_website``
            of -1 mean "all"/"none"); kept as primitives so configs stay
            hashable and JSON-serializable (chaos reproducer bundles).
        directory_queue_limit: bounded per-directory admission queue
            depth (0 = off -- no admission control, the paper's
            unbounded behaviour).
        directory_service_ms: virtual service time per admitted
            directory request (read only with a queue limit).
        overload_shedding: replica-aware PetalUp splits and direct
            member shedding to the warm ring successor (off = the
            paper's empty-view split + instance scan).
        redirect_hints: queue-aware redirect hints -- directories
            piggyback admission-queue depths on replies/keepalives and
            gossip a per-petal load vector over the replication channel;
            clients pre-route to the least-loaded live instance before
            being shed (needs ``directory_queue_limit > 0``; off = no
            hint computed or shipped, bit-identical runs).
        hint_ttl_ms: how long a harvested load hint stays actionable;
            older entries are ignored instead of extrapolated.
        rebalance / rebalance_cooldown_rounds / rebalance_budget_kb /
            rebalance_max_keys: shedding-aware content rebalancing --
            directories spill their top-Gini-contributing hot keys to
            under-loaded members under overload pressure, bounded by a
            cooldown and a per-pass byte budget (see
            :class:`~repro.cdn.base.ProtocolParams`).

    Constructor: the historical flat kwargs keep working verbatim; the
    typed sub-config views (``replication=ReplicationConfig(...)``,
    ``overload=...``, ``search=...``, ``swarm=...``) expand into the same
    flat fields, so serialization (``config_to_dict`` / ``from_dict``),
    hashing and ``replace`` are unchanged.
        swarming: chunked multi-source transfers with per-chunk failover
            (:mod:`repro.cdn.swarm`).  Off = the paper's atomic-fetch
            model, bit-identical to the pre-swarming goldens.
        swarm_parallel / swarm_sources / swarm_resume / swarm_replicate /
            swarm_stall_ms / swarm_retry_ms: see
            :class:`~repro.cdn.base.ProtocolParams`.
        object_mean_kb / object_alpha / object_max_kb / swarm_chunk_kb:
            the seeded bounded-Pareto object-size model
            (:mod:`repro.workload.objectsize`); only built when
            ``swarming`` is on.
        bandwidth_kbps: per-peer upload capacity of the optional
            fair-share bandwidth model (:mod:`repro.net.bandwidth`).
            0 = off, the default: links stay latency-only.
        bandwidth_link_kbps: optional per-flow rate cap (0 = none).
        bandwidth_slow_fraction / bandwidth_slow_factor: deterministic
            fraction of peers whose uplink is ``capacity / factor``.
    """

    population: int = 3000
    peer_pool_factor: float = 1.3
    mean_uptime_min: float = 60.0
    duration_hours: float = 24.0
    num_websites: int = 100
    objects_per_website: int = 500
    num_active_websites: int = 6
    num_localities: int = 6
    latency_min_ms: float = 10.0
    latency_max_ms: float = 500.0
    query_interval_min: float = 6.0
    gossip_period_min: float = 60.0
    push_threshold: float = 0.5
    zipf_exponent: float = 0.8
    chord_bits: int = 32
    chord_successor_list: int = 8
    chord_maintenance_s: float = 120.0
    topology: str = "clustered"
    summary_kind: str = "exact"
    directory_load_limit: Optional[int] = None
    max_instances: int = 1
    directory_collaboration: bool = False
    peer_cache_capacity: Optional[int] = None
    message_loss_rate: float = 0.0
    rpc_retries: int = 2
    directory_replication_k: int = 0
    directory_replication_anti_entropy: int = 4
    search_keywords: int = 0
    search_probe_period_s: float = 0.0
    fault_schedule: tuple = ()
    openloop_rate_qps: float = 0.0
    openloop_diurnal_amplitude: float = 0.0
    openloop_diurnal_period_hours: float = 24.0
    openloop_surges: tuple = ()
    directory_queue_limit: int = 0
    directory_service_ms: float = 40.0
    overload_shedding: bool = False
    swarming: bool = False
    swarm_parallel: int = 4
    swarm_sources: int = 4
    swarm_resume: bool = True
    swarm_replicate: int = 0
    swarm_stall_ms: float = 8000.0
    swarm_retry_ms: float = 200.0
    swarm_chunk_kb: int = 64
    object_mean_kb: float = 64.0
    object_alpha: float = 1.5
    object_max_kb: float = 4096.0
    bandwidth_kbps: float = 0.0
    bandwidth_link_kbps: float = 0.0
    bandwidth_slow_fraction: float = 0.0
    bandwidth_slow_factor: float = 8.0
    redirect_hints: bool = False
    hint_ttl_ms: float = 60_000.0
    rebalance: bool = False
    rebalance_cooldown_rounds: int = 2
    rebalance_budget_kb: float = 1024.0
    rebalance_max_keys: int = 4

    def __init__(
        self,
        *args: Any,
        replication: Optional[ReplicationConfig] = None,
        overload: Optional[OverloadConfig] = None,
        search: Optional[SearchConfig] = None,
        swarm: Optional[SwarmConfig] = None,
        **kwargs: Any,
    ) -> None:
        """Accept the historical flat kwargs, typed sub-configs, or both.

        Hand-written (the dataclass machinery keeps every generated
        method -- ``fields``, equality, hashing, ``replace`` -- because
        the flat fields are unchanged): sub-config views expand into
        their flat kwargs first, then assignment proceeds exactly as the
        generated initializer would.  A field named both ways with
        different values is a :class:`ConfigError`, never a silent pick.
        """
        cls_fields = dataclasses.fields(self)
        names = [f.name for f in cls_fields]
        if len(args) > len(names):
            raise TypeError(
                f"ExperimentConfig takes at most {len(names)} positional "
                f"arguments ({len(args)} given)"
            )
        for name, value in zip(names, args):
            if name in kwargs:
                raise TypeError(
                    f"ExperimentConfig got multiple values for argument {name!r}"
                )
            kwargs[name] = value
        for group in (replication, overload, search, swarm):
            if group is None:
                continue
            for flat, value in group.as_flat().items():
                if flat in kwargs and kwargs[flat] != value:
                    raise ConfigError(
                        f"conflicting values for {flat!r}: flat kwarg "
                        f"{kwargs[flat]!r} vs sub-config {value!r}"
                    )
                kwargs[flat] = value
        unknown = set(kwargs) - set(names)
        if unknown:
            raise TypeError(
                f"ExperimentConfig got unexpected keyword arguments: "
                f"{sorted(unknown)}"
            )
        for f in cls_fields:
            object.__setattr__(self, f.name, kwargs.get(f.name, f.default))
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.rpc_retries < 0:
            raise ConfigError("rpc_retries must be >= 0")
        if self.directory_replication_k < 0:
            raise ConfigError("directory_replication_k must be >= 0")
        if self.directory_replication_anti_entropy < 1:
            raise ConfigError("directory_replication_anti_entropy must be >= 1")
        if self.search_keywords < 0:
            raise ConfigError("search_keywords must be >= 0")
        if self.search_probe_period_s < 0:
            raise ConfigError("search_probe_period_s must be >= 0")
        if self.search_probe_period_s > 0 and self.search_keywords < 1:
            raise ConfigError("search probes need search_keywords >= 1")
        if not isinstance(self.fault_schedule, tuple):
            # Keep the config hashable (benchmark caches key on it).
            object.__setattr__(self, "fault_schedule", tuple(self.fault_schedule))
        if self.openloop_rate_qps < 0:
            raise ConfigError("openloop_rate_qps must be >= 0")
        if not 0.0 <= self.openloop_diurnal_amplitude < 1.0:
            raise ConfigError("openloop_diurnal_amplitude must be in [0, 1)")
        if self.openloop_diurnal_period_hours <= 0:
            raise ConfigError("openloop_diurnal_period_hours must be positive")
        if not isinstance(self.openloop_surges, tuple):
            object.__setattr__(
                self,
                "openloop_surges",
                tuple(tuple(surge) for surge in self.openloop_surges),
            )
        for surge in self.openloop_surges:
            if len(surge) != 7:
                raise ConfigError(
                    "openloop_surges entries are (start_ms, ramp_ms, "
                    "peak_multiplier, decay_ms, locality, hot_website, "
                    "hot_probability)"
                )
        if self.directory_queue_limit < 0:
            raise ConfigError("directory_queue_limit must be >= 0")
        if self.directory_service_ms <= 0:
            raise ConfigError("directory_service_ms must be positive")
        if self.redirect_hints and self.directory_queue_limit < 1:
            raise ConfigError("redirect_hints need directory_queue_limit >= 1")
        if self.hint_ttl_ms <= 0:
            raise ConfigError("hint_ttl_ms must be positive")
        if self.rebalance_cooldown_rounds < 0:
            raise ConfigError("rebalance_cooldown_rounds must be >= 0")
        if self.rebalance_budget_kb <= 0:
            raise ConfigError("rebalance_budget_kb must be positive")
        if self.rebalance_max_keys < 1:
            raise ConfigError("rebalance_max_keys must be >= 1")
        if self.swarm_chunk_kb < 1:
            raise ConfigError("swarm_chunk_kb must be >= 1")
        if self.object_mean_kb <= 0:
            raise ConfigError("object_mean_kb must be positive")
        if self.object_alpha <= 1.0:
            raise ConfigError("object_alpha must be > 1")
        if self.object_max_kb < self.object_mean_kb:
            raise ConfigError("object_max_kb must be >= object_mean_kb")
        if self.bandwidth_kbps < 0 or self.bandwidth_link_kbps < 0:
            raise ConfigError("bandwidth rates must be >= 0")
        if not 0.0 <= self.bandwidth_slow_fraction <= 1.0:
            raise ConfigError("bandwidth_slow_fraction must be in [0, 1]")
        if self.bandwidth_slow_factor < 1.0:
            raise ConfigError("bandwidth_slow_factor must be >= 1")
        if self.population < 1:
            raise ConfigError("population must be positive")
        if not 0.0 <= self.message_loss_rate < 1.0:
            raise ConfigError("message_loss_rate must be in [0, 1)")
        if self.peer_pool_factor < 1.0:
            raise ConfigError("peer_pool_factor must be >= 1 (pool >= population)")
        if self.duration_hours <= 0 or self.mean_uptime_min <= 0:
            raise ConfigError("durations must be positive")
        if self.topology not in ("clustered", "uniform"):
            raise ConfigError(f"unknown topology {self.topology!r}")
        if self.num_active_websites > self.num_websites:
            raise ConfigError("more active websites than websites")
        seeds = self.num_websites * self.num_localities
        if seeds > self.num_identities:
            raise ConfigError(
                f"identity pool ({self.num_identities}) smaller than the "
                f"initial directory population ({seeds}); raise population "
                f"or shrink num_websites x num_localities"
            )

    # ------------------------------------------------------------- derived
    @property
    def num_identities(self) -> int:
        """Total network size: the identity pool (paper: P x 1.3)."""
        return int(round(self.population * self.peer_pool_factor))

    @property
    def duration_ms(self) -> float:
        return self.duration_hours * 3_600_000.0

    # ------------------------------------------------------ typed views
    @property
    def replication(self) -> ReplicationConfig:
        """The warm-failover fields as a typed view."""
        return ReplicationConfig._from_config(self)

    @property
    def overload(self) -> OverloadConfig:
        """The overload-plane fields as a typed view."""
        return OverloadConfig._from_config(self)

    @property
    def search(self) -> SearchConfig:
        """The search-extension fields as a typed view."""
        return SearchConfig._from_config(self)

    @property
    def swarm(self) -> SwarmConfig:
        """The swarming/bandwidth fields as a typed view."""
        return SwarmConfig._from_config(self)

    def protocol_params(self) -> ProtocolParams:
        """The CDN-layer parameter object derived from this config."""
        return ProtocolParams(
            query_interval_ms=minutes(self.query_interval_min),
            gossip_period_ms=minutes(self.gossip_period_min),
            keepalive_period_ms=minutes(self.gossip_period_min),
            push_threshold=self.push_threshold,
            zipf_exponent=self.zipf_exponent,
            summary_kind=self.summary_kind,
            directory_load_limit=self.directory_load_limit,
            max_instances=self.max_instances,
            directory_collaboration=self.directory_collaboration,
            cache_capacity=self.peer_cache_capacity,
            rpc_retries=self.rpc_retries,
            replication_k=self.directory_replication_k,
            replication_anti_entropy_rounds=self.directory_replication_anti_entropy,
            directory_queue_limit=self.directory_queue_limit,
            directory_service_ms=self.directory_service_ms,
            overload_shedding=self.overload_shedding,
            redirect_hints=self.redirect_hints,
            hint_ttl_ms=self.hint_ttl_ms,
            rebalance=self.rebalance,
            rebalance_cooldown_rounds=self.rebalance_cooldown_rounds,
            rebalance_budget_kb=self.rebalance_budget_kb,
            rebalance_max_keys=self.rebalance_max_keys,
            rebalance_nominal_kb=self.object_mean_kb,
            swarming=self.swarming,
            swarm_parallel=self.swarm_parallel,
            swarm_sources=self.swarm_sources,
            swarm_resume=self.swarm_resume,
            swarm_replicate=self.swarm_replicate,
            swarm_stall_ms=self.swarm_stall_ms,
            swarm_retry_ms=self.swarm_retry_ms,
            dring=RingParams(
                bits=self.chord_bits,
                successor_list_size=self.chord_successor_list,
                maintenance_period_ms=seconds(self.chord_maintenance_s),
                rpc_timeout_ms=2.4 * self.latency_max_ms,
                probe_retries=min(1, self.rpc_retries),
            ),
        )

    # ------------------------------------------------------------ presets
    @classmethod
    def paper(cls, population: int = 3000, **overrides) -> "ExperimentConfig":
        """The paper's full Table 1 setup at the given population."""
        return cls(population=population, **overrides)

    @classmethod
    def scaled(
        cls,
        population: int = 240,
        duration_hours: float = 6.0,
        **overrides,
    ) -> "ExperimentConfig":
        """A reduced-scale setup exercising the same code paths.

        Websites, localities and catalog shrink proportionally so petal
        dynamics (peers per petal, directory load) stay comparable; protocol
        periods are untouched.
        """
        defaults = dict(
            population=population,
            duration_hours=duration_hours,
            num_websites=12,
            num_active_websites=3,
            num_localities=3,
            objects_per_website=100,
            chord_maintenance_s=60.0,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def replace(self, **overrides) -> "ExperimentConfig":
        """A copy with some fields overridden."""
        return dataclasses.replace(self, **overrides)
