"""Result records of one experiment run.

:class:`ExperimentResult` is a plain, JSON-serializable summary: the three
paper metrics, the outcome breakdown, the hit-ratio-over-time curve
(Fig. 3) and the latency / distance distributions (Figs. 4 and 5).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.metrics.collector import SERVED_OUTCOMES, MetricsCollector
from repro.metrics.distribution import Distribution, WeightedDistribution
from repro.metrics.timeseries import RatioSeries
from repro.sim.clock import HOUR


@dataclass
class ExperimentResult:
    """Summary of one run.

    Attributes:
        protocol: "flower", "petalup" or "squirrel".
        seed: master RNG seed of the run.
        population: the configured mean population P.
        duration_hours: simulated horizon.
        queries: total queries issued.
        hit_ratio: fraction served from the P2P system (paper metric 1).
        mean_lookup_latency_ms: paper metric 2 (mean over all queries).
        mean_transfer_ms: paper metric 3 (mean over all queries).
        outcome_counts: queries per outcome kind.
        hit_ratio_curve: (hour, cumulative hit ratio) points (Figure 3).
        lookup_cdf / transfer_cdf: (ms, cumulative fraction) points
            (Figures 4 and 5).
        transfer_cdf_bytes: (ms, cumulative *byte* fraction) points --
            the transfer-distance CDF weighted by object size under the
            heavy-tailed size model (Figure 5, byte-weighted view).
        mean_transfer_bytes_ms: byte-weighted mean transfer distance.
        events_executed / messages_sent: simulator effort accounting.
        arrivals / departures: churn volume.
        extra: protocol-specific counters (directory count, ring size, ...).
    """

    protocol: str
    seed: int
    population: int
    duration_hours: float
    queries: int
    hit_ratio: float
    mean_lookup_latency_ms: float
    mean_transfer_ms: float
    outcome_counts: Dict[str, int]
    hit_ratio_curve: List[Tuple[float, float]]
    lookup_cdf: List[Tuple[float, float]]
    transfer_cdf: List[Tuple[float, float]]
    events_executed: int = 0
    messages_sent: int = 0
    arrivals: int = 0
    departures: int = 0
    transfer_cdf_bytes: List[Tuple[float, float]] = field(default_factory=list)
    mean_transfer_bytes_ms: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_metrics(
        cls,
        protocol: str,
        seed: int,
        population: int,
        duration_hours: float,
        metrics: MetricsCollector,
        curve_window_hours: float = 1.0,
        **kwargs: Any,
    ) -> "ExperimentResult":
        """Build the summary from a populated metrics collector."""
        series = RatioSeries()
        for record in metrics.records:
            # The hit-ratio curve covers served queries only; failed
            # (terminal-but-not-served) records are ledger bookkeeping.
            if record.outcome in SERVED_OUTCOMES:
                series.observe(record.time, record.is_hit)
        horizon = duration_hours * HOUR
        window = curve_window_hours * HOUR
        curve = [
            (point.time / HOUR, point.ratio)
            for point in (
                series.cumulative(window, horizon) if horizon >= window else []
            )
        ]
        lookup = Distribution(metrics.lookup_latencies())
        transfer = Distribution(metrics.transfer_distances())
        # Byte-weighted transfer view: each served record weighted by its
        # object's size under the (deterministic, seed-keyed) heavy-tailed
        # model.  Computed post-hoc so latency-only runs get it too.
        from repro.workload.objectsize import ObjectSizeModel

        sizes = ObjectSizeModel(seed=seed)
        weighted = WeightedDistribution(
            (record.transfer_ms, sizes.size_bytes(record.object_key))
            for record in metrics.records
            if record.outcome in SERVED_OUTCOMES
        )
        return cls(
            protocol=protocol,
            seed=seed,
            population=population,
            duration_hours=duration_hours,
            queries=len(metrics),
            hit_ratio=metrics.hit_ratio(),
            mean_lookup_latency_ms=metrics.mean_lookup_latency_ms(),
            mean_transfer_ms=metrics.mean_transfer_ms(),
            outcome_counts={
                outcome: metrics.outcome_count(outcome)
                for outcome in sorted(
                    {record.outcome for record in metrics.records}
                )
            },
            hit_ratio_curve=curve,
            lookup_cdf=lookup.cdf_points(250),
            transfer_cdf=transfer.cdf_points(250),
            transfer_cdf_bytes=weighted.cdf_points(250),
            mean_transfer_bytes_ms=weighted.mean(),
            **kwargs,
        )

    # ------------------------------------------------------------ serialize
    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "seed": self.seed,
            "population": self.population,
            "duration_hours": self.duration_hours,
            "queries": self.queries,
            "hit_ratio": self.hit_ratio,
            "mean_lookup_latency_ms": self.mean_lookup_latency_ms,
            "mean_transfer_ms": self.mean_transfer_ms,
            "outcome_counts": dict(self.outcome_counts),
            "hit_ratio_curve": [list(p) for p in self.hit_ratio_curve],
            "lookup_cdf": [list(p) for p in self.lookup_cdf],
            "transfer_cdf": [list(p) for p in self.transfer_cdf],
            "transfer_cdf_bytes": [list(p) for p in self.transfer_cdf_bytes],
            "mean_transfer_bytes_ms": self.mean_transfer_bytes_ms,
            "events_executed": self.events_executed,
            "messages_sent": self.messages_sent,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "extra": dict(self.extra),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary_line(self) -> str:
        """One-line human summary for harness output."""
        return (
            f"{self.protocol:>9}  P={self.population:<5} "
            f"hit={self.hit_ratio:5.3f}  "
            f"lookup={self.mean_lookup_latency_ms:7.1f} ms  "
            f"transfer={self.mean_transfer_ms:6.1f} ms  "
            f"queries={self.queries}"
        )
