"""Experiment harness: Table 1 configuration, runner, scenarios, results.

- :mod:`repro.experiments.config` -- :class:`ExperimentConfig`, mirroring
  the paper's Table 1 parameter for parameter;
- :mod:`repro.experiments.runner` -- builds a world (simulator, topology,
  landmark binner, churn, CDN system) and runs it to the horizon;
- :mod:`repro.experiments.scenarios` -- one function per paper figure /
  table (Fig. 3, Fig. 4, Fig. 5, Table 2) plus the ablations;
- :mod:`repro.experiments.results` -- JSON-serializable result records.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import build_world, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "build_world",
    "run_experiment",
    "scenarios",
]


def __getattr__(name):
    # `scenarios` is exposed lazily: it imports repro.analysis, which
    # imports repro.experiments.results -- eager importing here would make
    # that a cycle whenever repro.analysis is imported first.
    if name == "scenarios":
        import importlib

        module = importlib.import_module("repro.experiments.scenarios")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
