"""Programmatic builders for every figure and table of the paper.

The benchmark harness prints tables; this module returns *data* -- one
function per paper artefact, each a plain dict that serializes cleanly.
Use these from notebooks, scripts or the CLI when you want the numbers
rather than the rendered report::

    from repro.experiments import scenarios

    fig3 = scenarios.fig3_hit_ratio(config, seed=1)
    fig3["flower"]     # [(hour, cumulative hit ratio), ...]
    fig3["crossover_hour"]

    table2 = scenarios.table2_scalability([2000, 3000], seed=1)
    table2["rows"]     # the paper's row dicts
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.compare import shape_checks
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.metrics.distribution import (
    LOOKUP_LATENCY_EDGES,
    TRANSFER_DISTANCE_EDGES,
)


def _headline_pair(
    config: ExperimentConfig, seed: int
) -> Dict[str, ExperimentResult]:
    return {
        "flower": run_experiment("flower", config, seed=seed),
        "squirrel": run_experiment("squirrel", config, seed=seed),
    }


def _crossover_hour(
    flower_curve: List[tuple], squirrel_curve: List[tuple]
) -> Optional[float]:
    for (hour, f_ratio), (__, s_ratio) in zip(flower_curve, squirrel_curve):
        if f_ratio > s_ratio:
            return hour
    return None


def _bucket_fractions(cdf: List[tuple], edges: Iterable[float]) -> Dict[str, float]:
    def below(threshold: float) -> float:
        best = 0.0
        for value, fraction in cdf:
            if value <= threshold:
                best = fraction
        return best

    buckets: Dict[str, float] = {}
    previous, prev_fraction = 0.0, 0.0
    for edge in edges:
        fraction = below(edge)
        label = f"<={edge:g}" if previous == 0.0 else f"{previous:g}-{edge:g}"
        buckets[label] = fraction - prev_fraction
        previous, prev_fraction = edge, fraction
    buckets[f">{previous:g}"] = 1.0 - prev_fraction
    return buckets


def fig3_hit_ratio(config: ExperimentConfig, seed: int = 1) -> Dict:
    """Figure 3: hit-ratio-over-time curves plus the crossover point."""
    pair = _headline_pair(config, seed)
    return {
        "flower": pair["flower"].hit_ratio_curve,
        "squirrel": pair["squirrel"].hit_ratio_curve,
        "final": {
            name: result.hit_ratio for name, result in pair.items()
        },
        "crossover_hour": _crossover_hour(
            pair["flower"].hit_ratio_curve, pair["squirrel"].hit_ratio_curve
        ),
        "shape_checks": [
            (check.name, check.passed)
            for check in shape_checks(pair["flower"], pair["squirrel"])
        ],
    }


def fig4_lookup_latency(config: ExperimentConfig, seed: int = 1) -> Dict:
    """Figure 4: lookup-latency bucket fractions at the paper's edges."""
    pair = _headline_pair(config, seed)
    return {
        name: _bucket_fractions(result.lookup_cdf, LOOKUP_LATENCY_EDGES)
        for name, result in pair.items()
    } | {
        "means_ms": {
            name: result.mean_lookup_latency_ms for name, result in pair.items()
        }
    }


def fig5_transfer_distance(config: ExperimentConfig, seed: int = 1) -> Dict:
    """Figure 5: transfer-distance bucket fractions at the paper's edges."""
    pair = _headline_pair(config, seed)
    return {
        name: _bucket_fractions(result.transfer_cdf, TRANSFER_DISTANCE_EDGES)
        for name, result in pair.items()
    } | {
        "means_ms": {
            name: result.mean_transfer_ms for name, result in pair.items()
        }
    }


def table2_scalability(
    populations: Iterable[int],
    seed: int = 1,
    config_factory=None,
) -> Dict:
    """Table 2: the scalability sweep.

    Args:
        populations: the P values to sweep (paper: 2000..5000).
        seed: master seed shared by every run.
        config_factory: ``population -> ExperimentConfig``; defaults to
            :meth:`ExperimentConfig.paper`.
    """
    if config_factory is None:
        config_factory = lambda population: ExperimentConfig.paper(population)
    rows: List[Dict] = []
    for population in populations:
        config = config_factory(population)
        for protocol in ("squirrel", "flower"):
            result = run_experiment(protocol, config, seed=seed)
            rows.append(
                {
                    "population": population,
                    "approach": protocol,
                    "hit_ratio": result.hit_ratio,
                    "lookup_ms": result.mean_lookup_latency_ms,
                    "transfer_ms": result.mean_transfer_ms,
                }
            )
    flower_rows = [row for row in rows if row["approach"] == "flower"]
    squirrel_rows = [row for row in rows if row["approach"] == "squirrel"]
    last_f, last_s = flower_rows[-1], squirrel_rows[-1]
    return {
        "rows": rows,
        "lookup_factor_at_max_p": last_s["lookup_ms"] / max(last_f["lookup_ms"], 1e-9),
        "transfer_factor_at_max_p": last_s["transfer_ms"]
        / max(last_f["transfer_ms"], 1e-9),
        "flower_hit_trend": [row["hit_ratio"] for row in flower_rows],
    }
