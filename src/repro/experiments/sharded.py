"""Sharded experiment execution: build N shard worlds, run them in lockstep.

Front door: :func:`run_sharded_experiment` -- the sharded counterpart of
:func:`repro.experiments.runner.run_experiment`.  The world is partitioned
by locality into ``num_shards`` shards (default: one per locality, capped
by the address space), each shard gets its own complete stack -- simulator,
sharded network, origin-server replicas, Flower system, churn process,
fault controller -- and the conservative window scheduler of
:mod:`repro.sim.sharded` drives them to the horizon, locally or across
forked worker processes.

Determinism: a shard's full event stream is a pure function of
``(config, seed, shard_id, num_shards)``.  Worker count only changes which
process hosts a shard, never what the shard computes -- the invariance
tests pin per-shard stream fingerprints at workers=1/2/4.

The sharded model is *not* stream-identical to the single-process build
(different topology construction, exact binning, per-shard origin servers,
bus-floored cross-shard arrivals); ``workers=1`` on the CLI therefore keeps
routing through the legacy single-simulator path, bit-identical to the
golden traces, and the sharded engine is its own model with its own pinned
goldens.

Timeout inflation: every cross-shard hop can be floored to the next window
barrier, so a round trip stretches by up to ``2 * window_ms`` beyond pure
link latency.  The dring RPC timeout and the transport default timeout are
widened by exactly that slack, keeping failure detection sound (no spurious
timeouts from bus scheduling alone).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.metrics.collector import MetricsCollector
from repro.net.faults import FaultController
from repro.net.shardnet import (
    MAX_SHARDS,
    ShardedBinner,
    ShardedNetwork,
    ShardedTopology,
    ShardMap,
    drain_outbox,
)
from repro.sim.clock import minutes, seconds
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.sim.sharded import StreamFingerprint, run_windows_parallel
from repro.workload.catalog import Catalog
from repro.workload.churn import ChurnModel

#: Protocols the sharded engine supports.  Flower's structure is the
#: parallelism argument (petal traffic is locality-internal); squirrel's
#: single global all-peer ring has no thin cut to shard along.
SHARDABLE_PROTOCOLS = ("flower",)


def default_num_shards(config: ExperimentConfig) -> int:
    """One shard per locality, folded down to fit the address space."""
    for candidate in range(min(config.num_localities, MAX_SHARDS), 0, -1):
        if config.num_localities % candidate == 0:
            return candidate
    return 1


def default_window_ms(config: ExperimentConfig) -> float:
    """Conservative lookahead window: half the maximum link latency.

    Any window <= latency_max keeps the cross-shard round trip under
    ``2 * (latency_max + window)``; half the maximum halves the worst
    added delivery delay while keeping the barrier count manageable.
    """
    return config.latency_max_ms / 2.0


def _split(total: int, num_shards: int, shard_id: int) -> int:
    """Shard *shard_id*'s share of *total*, remainder to the lowest ids."""
    return total // num_shards + (1 if shard_id < total % num_shards else 0)


class ShardCell:
    """One shard's fully assembled world, driven by the window scheduler."""

    def __init__(
        self,
        config: ExperimentConfig,
        master_seed: int,
        shard_map: ShardMap,
        shard_id: int,
        window_ms: float,
        fingerprint: bool,
    ) -> None:
        self.shard_id = shard_id
        slack_ms = 2.0 * window_ms
        params = config.protocol_params()
        params = dataclasses.replace(
            params,
            dring=dataclasses.replace(
                params.dring,
                rpc_timeout_ms=params.dring.rpc_timeout_ms + slack_ms,
            ),
        )
        self.sim = Simulator(seed=derive_seed(master_seed, f"shard-{shard_id}"))
        self.fingerprint = StreamFingerprint(self.sim) if fingerprint else None
        topology = ShardedTopology(
            shard_map,
            topology_seed=master_seed,
            latency_min_ms=config.latency_min_ms,
            latency_max_ms=config.latency_max_ms,
        )
        self.network = ShardedNetwork(
            self.sim,
            topology,
            shard_map,
            shard_id,
            default_timeout_ms=3.0 * config.latency_max_ms + slack_ms,
        )
        if config.message_loss_rate > 0.0:
            self.network.configure_loss(config.message_loss_rate, self.sim.rng("loss"))
        binner = ShardedBinner(shard_map)
        catalog = Catalog(
            num_websites=config.num_websites,
            objects_per_website=config.objects_per_website,
            num_active_websites=config.num_active_websites,
        )
        # Local import: ShardedFlowerSystem -> FlowerSystem -> cdn.base is a
        # heavier dependency chain than this module needs at import time.
        from repro.cdn.flower.sharded import ShardedFlowerSystem

        self.system = ShardedFlowerSystem(
            self.sim, self.network, binner, catalog, params, shard_map, shard_id
        )
        self.search_probes = None
        if config.search_keywords > 0:
            from repro.cdn.flower.search import (
                KeywordSearchEngine,
                KeywordSpace,
                SearchProbeWorkload,
            )

            self.system.search_engine = KeywordSearchEngine(
                KeywordSpace(num_keywords=config.search_keywords)
            )
            if config.search_probe_period_s > 0:
                self.search_probes = SearchProbeWorkload(
                    self.sim,
                    self.system,
                    period_ms=seconds(config.search_probe_period_s),
                    rng=self.sim.rng("search_probes"),
                )
        self.system.setup_initial_population()
        self.churn = ChurnModel(
            self.sim,
            self.sim.rng("churn"),
            num_identities=_split(config.num_identities, shard_map.num_shards, shard_id),
            mean_uptime_ms=minutes(config.mean_uptime_min),
            target_population=_split(config.population, shard_map.num_shards, shard_id),
            on_arrival=self.system.on_arrival,
            on_departure=self.system.on_departure,
        )
        for identity in self.system.seed_identities:
            self.churn.seed_online(identity)
        self.churn.start()
        self.faults: Optional[FaultController] = None
        if config.fault_schedule:
            self.faults = FaultController(
                self.sim,
                self.network,
                rng=self.sim.rng("faults"),
                locality_of=binner.locality_of,
            )
            self.faults.apply(config.fault_schedule)

    # ------------------------------------------------- window-scheduler API
    def run_to(self, until_ms: float) -> None:
        self.sim.run(until=until_ms)

    def drain(self) -> List[tuple]:
        return drain_outbox(self.network)

    def inject(self, entries: List[tuple], barrier_ms: float) -> None:
        self.network.inject_entries(entries, barrier_ms)

    def finalize(self) -> Dict[str, Any]:
        """The shard's results as a plain picklable payload."""
        system = self.system
        return {
            "shard_id": self.shard_id,
            "records": list(system.metrics.records),
            "events_executed": self.sim.events_executed,
            "peak_pending_events": self.sim.peak_pending_events,
            "messages_sent": self.network.messages_sent,
            "kind_counts": dict(self.network.kind_counts),
            "drop_counts": dict(self.network.drop_counts),
            "bus_entries_out": self.network.bus_entries_out,
            "bus_entries_in": self.network.bus_entries_in,
            "arrivals": self.churn.arrivals,
            "departures": self.churn.departures,
            "online_peers": system.online_peers,
            "directories": system.directory_count(),
            "expired_members": system.expired_members,
            "fingerprint": (
                self.fingerprint.hexdigest() if self.fingerprint is not None else None
            ),
        }


class _CellBuilder:
    """Builds one worker's cells; module-level so fork workers can run it."""

    def __init__(
        self,
        config: ExperimentConfig,
        master_seed: int,
        shard_map: ShardMap,
        window_ms: float,
        fingerprint: bool,
    ) -> None:
        self.config = config
        self.master_seed = master_seed
        self.shard_map = shard_map
        self.window_ms = window_ms
        self.fingerprint = fingerprint

    def __call__(self, shard_ids: List[int]) -> Dict[int, ShardCell]:
        return {
            shard_id: ShardCell(
                self.config,
                self.master_seed,
                self.shard_map,
                shard_id,
                self.window_ms,
                self.fingerprint,
            )
            for shard_id in shard_ids
        }


def validate_sharded(
    protocol: str,
    config: ExperimentConfig,
    workers: int,
    num_shards: Optional[int] = None,
) -> int:
    """Check a sharded run's shape; return the resolved shard count.

    Raises :class:`~repro.errors.ConfigError` with an actionable message on
    any mismatch (unsupported protocol/topology, worker count that does not
    divide the shard map, population too small to split).
    """
    if protocol not in SHARDABLE_PROTOCOLS:
        raise ConfigError(
            f"sharded execution (workers > 1) supports protocols "
            f"{list(SHARDABLE_PROTOCOLS)}; {protocol!r} has no locality "
            f"partition to shard along -- rerun with --workers 1"
        )
    if config.topology != "clustered":
        raise ConfigError(
            "sharded execution needs the clustered topology (localities are "
            "the shard unit); rerun with --workers 1"
        )
    resolved = num_shards if num_shards is not None else default_num_shards(config)
    # ShardMap re-validates shard/locality divisibility with its own errors.
    shard_map = ShardMap(resolved, config.num_localities, config.num_websites)
    if workers < 1:
        raise ConfigError(f"workers must be >= 1 (got {workers})")
    if resolved % workers != 0:
        raise ConfigError(
            f"workers={workers} does not divide the {resolved}-shard map "
            f"cleanly; choose a divisor of {resolved} (shards = one per "
            f"locality group, {config.num_localities} localities here)"
        )
    if config.population < resolved:
        raise ConfigError(
            f"population {config.population} cannot be split over "
            f"{resolved} shards; raise population or lower num_shards"
        )
    seeds_per_shard = config.num_websites * shard_map.localities_per_shard
    min_identities = _split(config.num_identities, resolved, resolved - 1)
    if seeds_per_shard > min_identities:
        raise ConfigError(
            f"per-shard identity pool ({min_identities}) smaller than the "
            f"per-shard seed population ({seeds_per_shard}); raise "
            f"population or shrink num_websites x num_localities"
        )
    return resolved


def run_sharded_experiment(
    protocol: str,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    workers: int = 1,
    num_shards: Optional[int] = None,
    window_ms: Optional[float] = None,
    fingerprint: bool = False,
) -> ExperimentResult:
    """Run one experiment on the sharded engine and merge the results.

    Args:
        protocol: must be in :data:`SHARDABLE_PROTOCOLS`.
        config: experiment parameters (defaults to paper Table 1).
        seed: master RNG seed; shard ``s`` derives its own stream space
            from ``derive_seed(seed, "shard-s")``.
        workers: worker processes; must divide the shard count.  1 runs
            every shard in-process (no IPC, same results by construction).
        num_shards: shard count (default: one per locality, folded to fit
            the packed address space of :data:`repro.net.shardnet.MAX_SHARDS`).
        window_ms: conservative window (default: latency_max / 2).
        fingerprint: also compute per-shard SHA-256 stream fingerprints
            (slows the run; used by the invariance tests).
    """
    config = config or ExperimentConfig()
    resolved = validate_sharded(protocol, config, workers, num_shards)
    shard_map = ShardMap(resolved, config.num_localities, config.num_websites)
    window = window_ms if window_ms is not None else default_window_ms(config)
    if window <= 0:
        raise ConfigError(f"window_ms must be positive (got {window})")
    builder = _CellBuilder(config, seed, shard_map, window, fingerprint)
    payloads = run_windows_parallel(
        builder, resolved, workers, config.duration_ms, window
    )
    return merge_shard_results(
        protocol, config, seed, payloads, workers, resolved, window
    )


def merge_shard_results(
    protocol: str,
    config: ExperimentConfig,
    seed: int,
    payloads: Dict[int, Dict[str, Any]],
    workers: int,
    num_shards: int,
    window_ms: float,
) -> ExperimentResult:
    """Fold per-shard payloads into one :class:`ExperimentResult`.

    Query records are merged in full sort order (QueryRecord is a tuple;
    time leads the key), so the merged metrics are independent of shard
    iteration order and worker count.
    """
    ordered = [payloads[sid] for sid in sorted(payloads)]
    records = sorted(record for payload in ordered for record in payload["records"])
    metrics = MetricsCollector()
    for record in records:
        metrics.record(record)
    kind_counts: Dict[str, int] = {}
    drop_counts: Dict[str, int] = {}
    for payload in ordered:
        for kind, count in payload["kind_counts"].items():
            kind_counts[kind] = kind_counts.get(kind, 0) + count
        for cause, count in payload["drop_counts"].items():
            drop_counts[cause] = drop_counts.get(cause, 0) + count
    extra = {
        "online_peers": sum(p["online_peers"] for p in ordered),
        "message_counts": kind_counts,
        "drop_counts": drop_counts,
        "directories": sum(p["directories"] for p in ordered),
        "expired_members": sum(p["expired_members"] for p in ordered),
        "sharded": {
            "num_shards": num_shards,
            "workers": workers,
            "window_ms": window_ms,
            "bus_entries": sum(p["bus_entries_out"] for p in ordered),
            "peak_pending_events": max(p["peak_pending_events"] for p in ordered),
            "events_per_shard": {
                str(p["shard_id"]): p["events_executed"] for p in ordered
            },
            "fingerprints": {
                str(p["shard_id"]): p["fingerprint"] for p in ordered
            },
        },
    }
    return ExperimentResult.from_metrics(
        protocol=protocol,
        seed=seed,
        population=config.population,
        duration_hours=config.duration_hours,
        metrics=metrics,
        events_executed=sum(p["events_executed"] for p in ordered),
        messages_sent=sum(p["messages_sent"] for p in ordered),
        arrivals=sum(p["arrivals"] for p in ordered),
        departures=sum(p["departures"] for p in ordered),
        extra=extra,
    )
