"""Content summaries exchanged during gossip.

Content peers "periodically exchange contacts ... and summaries of their
stored content" (paper section 3.1).  A summary answers one question --
*does this peer (probably) store object o?* -- and must be cheap to ship in
a gossip message.  Two implementations:

:class:`ExactSummary`
    A plain set of object keys.  Exact answers; size linear in the number of
    stored objects.  The default: a browsing peer stores at most a few
    hundred objects, so exactness is affordable and keeps hit accounting
    crisp.

:class:`BloomSummary`
    A Bloom filter: constant size, no false negatives, tunable false-positive
    rate.  A false positive makes a peer fetch from a provider that turns out
    not to have the object -- the ablation benchmarks quantify that cost.

Both are value objects: :meth:`snapshot` produces an immutable copy suitable
for handing to another peer (simulated peers share one address space, so
sharing a mutable set would let the future leak into the past).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Set

from repro.errors import CDNError
from repro.types import ObjectKey


class ExactSummary:
    """Exact set-of-keys summary with copy-on-write snapshots.

    ``snapshot()`` used to eagerly copy the whole key set -- once per gossip
    exchange per peer, i.e. thousands of copies per simulated hour.  Instead,
    a snapshot now *shares* the underlying set and both sides are marked
    shared; the first subsequent ``add`` on either side copies before
    writing.  Receivers only ever call ``contains``, so in the common case
    no copy is ever made and a snapshot is O(1).
    """

    __slots__ = ("_keys", "_shared")

    kind = "exact"

    def __init__(self, keys: Iterable[ObjectKey] = ()) -> None:
        self._keys: Set[ObjectKey] = set(keys)
        self._shared = False

    def add(self, key: ObjectKey) -> None:
        if self._shared:
            self._keys = set(self._keys)  # copy-on-write
            self._shared = False
        self._keys.add(key)

    def contains(self, key: ObjectKey) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def snapshot(self) -> "ExactSummary":
        """An immutable-by-sharing value copy, O(1) until someone writes."""
        self._shared = True
        copy = ExactSummary.__new__(ExactSummary)
        copy._keys = self._keys
        copy._shared = True
        return copy

    def keys(self) -> Set[ObjectKey]:
        """The exact key set (used by directory peers to rebuild indexes)."""
        return set(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactSummary({len(self._keys)} keys)"


class BloomSummary:
    """Bloom-filter summary: no false negatives, bounded false positives.

    Args:
        num_bits: filter width in bits.
        num_hashes: hash functions k.

    ``expected_fpr(n)`` gives the theoretical false-positive rate after *n*
    insertions: ``(1 - e^(-k*n/m))^k``.
    """

    kind = "bloom"

    def __init__(self, num_bits: int = 2048, num_hashes: int = 4) -> None:
        if num_bits < 8 or num_hashes < 1:
            raise CDNError(
                f"invalid Bloom parameters (bits={num_bits}, hashes={num_hashes})"
            )
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = 0  # an int used as a bit set
        self._count = 0

    def _positions(self, key: ObjectKey) -> List[int]:
        digest = hashlib.sha256(f"{key[0]}/{key[1]}".encode("utf-8")).digest()
        positions = []
        for i in range(self.num_hashes):
            chunk = digest[4 * i: 4 * i + 4]
            positions.append(int.from_bytes(chunk, "big") % self.num_bits)
        return positions

    def add(self, key: ObjectKey) -> None:
        for position in self._positions(key):
            self._bits |= 1 << position
        self._count += 1

    def contains(self, key: ObjectKey) -> bool:
        return all(self._bits >> p & 1 for p in self._positions(key))

    def __len__(self) -> int:
        return self._count

    def snapshot(self) -> "BloomSummary":
        copy = BloomSummary(self.num_bits, self.num_hashes)
        copy._bits = self._bits
        copy._count = self._count
        return copy

    def expected_fpr(self, n_items: int) -> float:
        """Theoretical false-positive rate after *n_items* insertions."""
        import math

        k, m = self.num_hashes, self.num_bits
        return (1.0 - math.exp(-k * n_items / m)) ** k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomSummary({self._count} keys, {self.num_bits} bits)"


def make_summary(kind: str) -> "ExactSummary | BloomSummary":
    """Factory keyed by config string (``"exact"`` or ``"bloom"``)."""
    if kind == "exact":
        return ExactSummary()
    if kind == "bloom":
        return BloomSummary()
    raise CDNError(f"unknown summary kind {kind!r}")
