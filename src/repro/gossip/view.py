"""Age-annotated partial membership views.

Each content peer of ``petal(ws, loc)`` maintains a ``view(ws, loc)``: a set
of contacts -- addresses of other content peers of the same petal -- each
carrying an *age* (gossip rounds since the contact was last known fresh).
Ages drive Cyclon's replacement policy: the oldest contact is the one gossip
reaches out to, so dead entries are probed and evicted quickly.

The paper deliberately does **not** cap the view size ("we do not limit the
view size of a content peer and allow it to grow with the size of its
petal"); eviction of unavailable contacts bounds it naturally.  A capacity
is still supported because PetalUp-CDN's directory peers measure their load
as the number of content peers in their view and split when it exceeds a
limit (section 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.types import Address


@dataclass
class Contact:
    """One view entry: a peer we believe is in our petal.

    Attributes:
        address: the contact's network address.
        age: gossip rounds since this entry was known fresh (0 = fresh).
    """

    address: Address
    age: int = 0

    def aged(self, delta: int = 1) -> "Contact":
        return Contact(self.address, self.age + delta)


class PartialView:
    """A peer's partial view of its petal, keyed by address.

    Merge rule everywhere: when the same address appears twice, the entry
    with the *smaller* age wins (fresher information).
    """

    def __init__(self, owner: Address, capacity: Optional[int] = None) -> None:
        self.owner = owner
        self.capacity = capacity
        self._contacts: Dict[Address, Contact] = {}

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._contacts)

    def __contains__(self, address: Address) -> bool:
        return address in self._contacts

    def __iter__(self):
        return iter(self._contacts.values())

    def addresses(self) -> List[Address]:
        return list(self._contacts)

    def contacts(self) -> List[Contact]:
        return list(self._contacts.values())

    def get(self, address: Address) -> Optional[Contact]:
        return self._contacts.get(address)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._contacts) >= self.capacity

    # --------------------------------------------------------------- updates
    def add(self, contact: Contact) -> bool:
        """Insert or refresh a contact (younger age wins).

        The owner's own address is never stored.  Returns True if the view
        changed.  When at capacity, new addresses displace the oldest entry
        only if they are fresher; otherwise they are dropped.
        """
        if contact.address == self.owner:
            return False
        existing = self._contacts.get(contact.address)
        if existing is not None:
            if contact.age < existing.age:
                existing.age = contact.age
                return True
            return False
        if self.full:
            oldest = self.oldest()
            if oldest is None or oldest.age <= contact.age:
                return False
            del self._contacts[oldest.address]
        self._contacts[contact.address] = Contact(contact.address, contact.age)
        return True

    def merge(self, contacts: Iterable[Contact]) -> int:
        """Add many contacts; return how many changed the view."""
        return sum(1 for contact in contacts if self.add(contact))

    def remove(self, address: Address) -> bool:
        """Evict a contact (e.g. it was found unavailable)."""
        return self._contacts.pop(address, None) is not None

    def increase_ages(self, delta: int = 1) -> None:
        """Age every entry by *delta* (start of a gossip round)."""
        for contact in self._contacts.values():
            contact.age += delta

    def refresh(self, address: Address) -> None:
        """Reset a contact's age to 0 (we just heard from it)."""
        contact = self._contacts.get(address)
        if contact is not None:
            contact.age = 0

    # -------------------------------------------------------------- selection
    def oldest(self) -> Optional[Contact]:
        """The entry with the largest age (gossip's exchange target)."""
        if not self._contacts:
            return None
        return max(self._contacts.values(), key=lambda c: c.age)

    def sample(
        self,
        rng: random.Random,
        count: int,
        exclude: Optional[Set[Address]] = None,
    ) -> List[Contact]:
        """Up to *count* distinct contacts, uniformly, minus *exclude*."""
        pool = [
            contact
            for contact in self._contacts.values()
            if exclude is None or contact.address not in exclude
        ]
        if len(pool) <= count:
            return list(pool)
        return rng.sample(pool, count)

    def random_address(self, rng: random.Random) -> Optional[Address]:
        """One uniformly random contact address, or None if empty."""
        if not self._contacts:
            return None
        return rng.choice(list(self._contacts))

    def clear(self) -> None:
        self._contacts.clear()
