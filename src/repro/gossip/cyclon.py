"""Cyclon-style shuffle protocol (Voulgaris, Gavidia & van Steen, 2005).

Flower-CDN's petal maintenance is "inspired of P2P membership protocols
proven to be highly robust in face of churn" [17 = Cyclon].  Each gossip
round, a peer:

1. ages its whole view by one;
2. picks its *oldest* contact as the exchange target (so the entries most
   likely to be stale are probed first);
3. sends the target a sample of its view plus a fresh entry for itself;
4. merges the contacts the target sends back, preferring fresher ages;
5. on timeout, evicts the target -- the paper's "when a peer selects a
   contact for gossip and finds it unavailable, the peer removes the contact
   from its view, which naturally bounds the view size".

The CDN layer piggybacks application data on every exchange -- content
summaries (section 3.1) and dir-info reconciliation (section 5.1) -- through
the ``local_data`` / ``on_peer_data`` hooks, so this module stays a pure
membership protocol.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.gossip.view import Contact, PartialView
from repro.net.message import Message
from repro.net.transport import NetworkNode
from repro.types import Address

#: Produces the application payload piggybacked on a shuffle.
DataProvider = Callable[[], Dict[str, Any]]

#: Receives the application payload of the exchange partner.
DataConsumer = Callable[[Address, Dict[str, Any]], None]

#: Notified when a contact is evicted because it did not answer.
DeathListener = Callable[[Address], None]


def pack_contacts(contacts: List[Contact]) -> List[tuple]:
    """Wire format of a contact list: [(address, age), ...]."""
    return [(c.address, c.age) for c in contacts]


def unpack_contacts(raw: List[tuple]) -> List[Contact]:
    """Inverse of :func:`pack_contacts`."""
    return [Contact(address, age) for address, age in raw]


class CyclonProtocol:
    """The gossip behaviour of one peer over one view.

    Args:
        host: network endpoint (must forward ``gossip.shuffle`` messages
            to :meth:`handle_shuffle`).
        view: the partial view to maintain.
        rng: random stream for sampling.
        shuffle_size: number of contacts sent per exchange.
        local_data: hook producing piggybacked application data.
        on_peer_data: hook consuming the partner's application data.
        on_contact_dead: hook fired when a target is evicted on timeout.
    """

    def __init__(
        self,
        host: NetworkNode,
        view: PartialView,
        rng: random.Random,
        shuffle_size: int = 5,
        local_data: Optional[DataProvider] = None,
        on_peer_data: Optional[DataConsumer] = None,
        on_contact_dead: Optional[DeathListener] = None,
    ) -> None:
        self.host = host
        self.view = view
        self.rng = rng
        self.shuffle_size = shuffle_size
        self.local_data = local_data
        self.on_peer_data = on_peer_data
        self.on_contact_dead = on_contact_dead
        self.rounds_started = 0
        self.exchanges_completed = 0
        self.evictions = 0

    # -------------------------------------------------------------- initiator
    def gossip_round(self) -> None:
        """One proactive gossip round (call periodically)."""
        if not self.host.alive:
            return
        self.rounds_started += 1
        self.view.increase_ages()
        target = self.view.oldest()
        if target is None:
            return
        sample = self.view.sample(
            self.rng, self.shuffle_size - 1, exclude={target.address}
        )
        payload: Dict[str, Any] = {
            "contacts": pack_contacts(sample + [Contact(self.host.address, 0)]),
        }
        if self.local_data is not None:
            payload["data"] = self.local_data()
        self.host.rpc(
            target.address,
            "gossip.shuffle",
            payload,
            on_reply=lambda reply: self._on_shuffle_reply(target.address, reply),
            on_timeout=lambda: self._on_target_dead(target.address),
        )

    def _on_shuffle_reply(self, target: Address, reply: Dict[str, Any]) -> None:
        self.exchanges_completed += 1
        self.view.refresh(target)
        self.view.merge(unpack_contacts(reply.get("contacts", [])))
        if self.on_peer_data is not None and "data" in reply:
            self.on_peer_data(target, reply["data"])
        self.host.sim.emit("gossip.exchange", initiator=self.host.address, target=target)

    def _on_target_dead(self, target: Address) -> None:
        self.evictions += 1
        self.view.remove(target)
        self.host.sim.emit("gossip.evict", by=self.host.address, dead=target)
        if self.on_contact_dead is not None:
            self.on_contact_dead(target)

    # -------------------------------------------------------------- responder
    def handle_shuffle(self, message: Message) -> Dict[str, Any]:
        """Respond to a shuffle: merge their sample, return ours."""
        incoming = unpack_contacts(message.payload.get("contacts", []))
        reply_sample = self.view.sample(
            self.rng, self.shuffle_size, exclude={message.src}
        )
        self.view.merge(incoming)
        self.view.refresh(message.src)
        reply: Dict[str, Any] = {
            "contacts": pack_contacts(reply_sample + [Contact(self.host.address, 0)]),
        }
        if self.on_peer_data is not None and "data" in message.payload:
            self.on_peer_data(message.src, message.payload["data"])
        if self.local_data is not None:
            reply["data"] = self.local_data()
        return reply
