"""Gossip substrate: partial views, Cyclon-style shuffles, content summaries.

Petals -- the unstructured half of Flower-CDN -- are maintained "via low-cost
gossip techniques which are inspired of P2P membership protocols [Cyclon]
proven to be highly robust in face of churn" (paper section 3).  This package
provides the reusable pieces:

- :mod:`repro.gossip.view` -- the age-annotated partial view each content
  peer keeps of its petal, with the paper's eviction rule (contacts found
  unavailable are removed, which "naturally bounds the view size");
- :mod:`repro.gossip.cyclon` -- the shuffle protocol driver, generic over
  the extra data CDN peers piggyback on each exchange (content summaries
  and dir-info, sections 3.1 and 5.1);
- :mod:`repro.gossip.summaries` -- content summaries: an exact set-based
  summary and a Bloom-filter summary for the bandwidth-conscious variant.
"""

from repro.gossip.cyclon import CyclonProtocol
from repro.gossip.summaries import BloomSummary, ExactSummary, make_summary
from repro.gossip.view import Contact, PartialView

__all__ = [
    "Contact",
    "PartialView",
    "CyclonProtocol",
    "ExactSummary",
    "BloomSummary",
    "make_summary",
]
