"""Shared primitive types and identifiers.

Centralizing these aliases keeps signatures readable across packages and
documents the small vocabulary the whole system shares.
"""

from __future__ import annotations

from typing import NewType, Tuple

#: A network address: the unique integer handed out by ``Network.register``.
Address = int

#: A Chord identifier (point on the m-bit ring).
ChordId = int

#: Index of a website in the catalog (0 .. num_websites - 1).
WebsiteId = int

#: Index of an object within its website (0 .. objects_per_website - 1).
ObjectIndex = int

#: A fully qualified content object: (website, object index).
ObjectKey = Tuple[WebsiteId, ObjectIndex]

#: A locality index produced by landmark binning (0 .. k - 1).
LocalityId = int

#: A petal is identified by (website, locality) -- paper section 3.1.
PetalKey = Tuple[WebsiteId, LocalityId]

#: Position coordinates in the synthetic latency space.
Coordinate = Tuple[float, float]

NodeName = NewType("NodeName", str)
