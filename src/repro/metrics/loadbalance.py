"""Load-balance summary statistics for the overload reports.

The cloud-heavy benchmark compares how evenly directory work and content
serving spread across the population with and without replica-aware
shedding; the Gini coefficient is the single-number summary it gates on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, TypeVar

K = TypeVar("K")


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative load distribution.

    0.0 means perfectly even load, values toward 1.0 mean one node does
    all the work.  Degenerate inputs (empty, or all-zero load) are
    perfectly even by convention.  Uses the standard sorted-rank form
    ``G = 2 * sum(i * x_i) / (n * sum(x)) - (n + 1) / n`` with 1-based
    ranks over ascending values.
    """
    ordered = sorted(float(value) for value in values)
    if ordered and ordered[0] < 0.0:
        raise ValueError("gini() expects non-negative load values")
    n = len(ordered)
    total = sum(ordered)
    if n == 0 or total <= 0.0:
        return 0.0
    weighted = sum(rank * value for rank, value in enumerate(ordered, start=1))
    return 2.0 * weighted / (n * total) - (n + 1) / n


def top_gini_contributors(counts: Dict[K, float], limit: int) -> List[K]:
    """The keys contributing most to the Gini of a count distribution.

    In the sorted-rank form each value's contribution grows with
    ``x_i * (2 * rank_i - n - 1)``, which over fixed *n* is maximized by
    the largest counts -- so the top contributors are simply the keys
    with the highest counts.  Returns up to *limit* keys, highest count
    first, ties broken by key order (deterministic); keys with
    non-positive counts never qualify.
    """
    if limit < 1:
        return []
    ranked = sorted(
        ((count, key) for key, count in counts.items() if count > 0),
        key=lambda item: (-item[0], item[1]),
    )
    return [key for _count, key in ranked[:limit]]
