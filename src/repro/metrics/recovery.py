"""Recovery metrics for fault-injection experiments.

The paper argues Flower-CDN is "highly robust" but only measures steady
churn; the fault-injection subsystem (:mod:`repro.net.faults`) produces the
harder scenarios -- partitions, bursty loss, mass failures -- and this
module measures how a protocol rides through them:

- **availability** -- the fraction of *issued* queries that were answered
  at all.  Normally every query terminates at the origin server, but a
  partition can cut a peer off from everything including the server, so
  unanswered queries are precisely the partition's availability cost;
- **phase hit ratios** -- the P2P hit ratio before the fault, while it is
  active, and after it heals, computed from the same
  :class:`~repro.metrics.collector.QueryRecord` stream as the paper's
  Figure 3;
- **time to recover** -- how long after the heal the windowed hit ratio
  first returns to within ``epsilon`` of its pre-fault baseline.

Phase attribution convention: a query belongs to the phase it *completed*
in (records are stamped at completion); issued counts use the issue time
(the ``"cdn.query"`` trace event).  A query issued pre-fault but answered
during it therefore counts against the fault phase's hit ratio -- exactly
the failure it experienced.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import CDNError
from repro.metrics.collector import SERVED_OUTCOMES, QueryRecord
from repro.metrics.report import render_table
from repro.metrics.timeseries import RatioPoint, RatioSeries
from repro.sim.clock import minutes


def track_issued_queries(sim) -> List[float]:
    """Subscribe to ``"cdn.query"`` and return the (live) issue-time list.

    Call *before* running the world; the returned list grows as the
    simulation executes and can be handed to :class:`RecoveryReport`.
    """
    issued: List[float] = []
    sim.trace.subscribe("cdn.query", lambda event: issued.append(event.time))
    return issued


class PhaseStats(NamedTuple):
    """Query accounting of one fault phase."""

    name: str
    start_ms: float
    end_ms: float
    issued: int
    answered: int
    hits: int

    @property
    def hit_ratio(self) -> float:
        """P2P hit ratio of the queries answered in this phase."""
        return self.hits / self.answered if self.answered else 0.0

    @property
    def availability(self) -> float:
        """Answered / issued within the phase (1.0 when nothing issued).

        Clamped at 1.0: answered queries are phased by completion time but
        issued counts by issue time, so a query straddling a phase boundary
        can make a busy phase's ratio edge past one.
        """
        if not self.issued:
            return 1.0
        return min(1.0, self.answered / self.issued)


class RecoveryReport:
    """Fault-phase breakdown + time-to-recover of one experiment run.

    Args:
        records: completed-query records (time-ordered, as the collector
            produces them).
        issued_times: issue timestamps from :func:`track_issued_queries`
            (``None``: assume every answered query was issued in-phase).
        fault_start_ms / fault_end_ms: the fault window (e.g. partition
            start and heal times).
        horizon_ms: experiment end.
        window_ms: width of the hit-ratio windows used for the timeseries
            and the recovery detection.
        epsilon: recovery slack -- recovered means the windowed hit ratio
            reaches ``pre-fault ratio - epsilon``.
    """

    def __init__(
        self,
        records: Sequence[QueryRecord],
        fault_start_ms: float,
        fault_end_ms: float,
        horizon_ms: float,
        window_ms: float,
        issued_times: Optional[Iterable[float]] = None,
        epsilon: float = 0.05,
    ) -> None:
        if not 0.0 <= fault_start_ms < fault_end_ms <= horizon_ms:
            raise CDNError("need 0 <= fault start < heal <= horizon")
        if window_ms <= 0 or epsilon < 0:
            raise CDNError("window must be positive and epsilon >= 0")
        # Failed (terminal-but-not-served) records close the lifecycle
        # ledger but were never *answered*: they stay in the issued count
        # and out of the answered/hit accounting, i.e. they are precisely
        # the availability cost this report measures.
        self.records = [r for r in records if r.outcome in SERVED_OUTCOMES]
        self.fault_start_ms = fault_start_ms
        self.fault_end_ms = fault_end_ms
        self.horizon_ms = horizon_ms
        self.window_ms = window_ms
        self.epsilon = epsilon
        self.issued_times = (
            sorted(issued_times)
            if issued_times is not None
            else sorted(r.time for r in self.records)
        )
        self._series = RatioSeries()
        for record in self.records:
            self._series.observe(record.time, record.is_hit)

    # ---------------------------------------------------------------- phases
    def _phase(self, name: str, start: float, end: float) -> PhaseStats:
        answered = [r for r in self.records if start <= r.time < end]
        issued = sum(1 for t in self.issued_times if start <= t < end)
        return PhaseStats(
            name=name,
            start_ms=start,
            end_ms=end,
            issued=issued,
            answered=len(answered),
            hits=sum(1 for r in answered if r.is_hit),
        )

    @property
    def pre(self) -> PhaseStats:
        return self._phase("pre-fault", 0.0, self.fault_start_ms)

    @property
    def during(self) -> PhaseStats:
        return self._phase("fault", self.fault_start_ms, self.fault_end_ms)

    @property
    def post(self) -> PhaseStats:
        # Half-open [heal, horizon]; include the horizon edge itself.
        return self._phase("post-heal", self.fault_end_ms, self.horizon_ms + 1e-9)

    def phases(self) -> List[PhaseStats]:
        return [self.pre, self.during, self.post]

    # ---------------------------------------------------------- availability
    @property
    def availability(self) -> float:
        """Overall fraction of issued queries that completed."""
        issued = len(self.issued_times)
        return len(self.records) / issued if issued else 1.0

    @property
    def unanswered(self) -> int:
        return max(0, len(self.issued_times) - len(self.records))

    # -------------------------------------------------------------- recovery
    def timeseries(self) -> List[RatioPoint]:
        """Windowed hit-ratio curve over the whole horizon."""
        if len(self._series) == 0:
            return []
        return self._series.windowed(self.window_ms, self.horizon_ms)

    def time_to_recover_ms(self) -> Optional[float]:
        """Time from the heal until the hit ratio is back to baseline.

        The baseline is the pre-fault phase hit ratio; recovery is the end
        of the first post-heal window with at least one answered query
        whose windowed ratio is >= baseline - epsilon.  ``None`` when the
        run never recovers (or sees no post-heal queries); ``0.0`` when
        the fault never depressed the ratio below the slack at all.
        """
        baseline = self.pre.hit_ratio - self.epsilon
        for point in self.timeseries():
            if point.time <= self.fault_end_ms or point.total == 0:
                continue
            if point.ratio >= baseline:
                return max(0.0, point.time - self.window_ms - self.fault_end_ms)
        return None

    # --------------------------------------------------------------- report
    def render(self) -> str:
        rows = [
            [
                phase.name,
                f"{phase.start_ms / 3_600_000.0:.1f}-{phase.end_ms / 3_600_000.0:.1f} h",
                phase.issued,
                phase.answered,
                f"{phase.hit_ratio:.1%}",
                f"{phase.availability:.1%}",
            ]
            for phase in self.phases()
        ]
        table = render_table(
            ["phase", "window", "issued", "answered", "hit ratio", "availability"],
            rows,
            title="fault phases",
        )
        ttr = self.time_to_recover_ms()
        ttr_text = "never" if ttr is None else f"{ttr / 60_000.0:.1f} min"
        footer = (
            f"availability: {self.availability:.1%} "
            f"({self.unanswered} unanswered); "
            f"time to recover (eps={self.epsilon:.0%}): {ttr_text}"
        )
        return table + "\n" + footer


class DirectoryRecoveryTracker:
    """Replica-aware recovery instrumentation for directory faults.

    The query-level :class:`RecoveryReport` sees only the *symptom* of a
    directory wipe (the hit-ratio dip); this tracker measures the *cause*
    -- how long the directory index itself stays cold -- so the warm
    failover of section 5.3 can be compared against the paper's cold
    replacement directly:

    - **time to full index** -- how long after ``fault_start_ms`` the
      combined member view of the tracked localities' live directories is
      back to ``threshold`` x its pre-fault size.  A cold replacement
      re-learns members one keepalive period at a time; a warm takeover
      restores the view from a replica in one merge;
    - **cold-window misses** -- queries from the tracked localities that
      went to the origin (or failed outright) while the index was below
      threshold: the user-visible cost of the cold window;
    - **replica staleness at takeover** -- from the
      ``flower.replica_adopted`` trace events: how far behind real time
      the adopted replicas were (0 for replication-off runs, which adopt
      nothing).

    Attach *before* ``world.run()``; it schedules a baseline snapshot 1 ms
    before the fault and polls the live index every ``poll_ms`` thereafter.
    The polling callbacks read state only -- no RNG draws, no emits -- so
    instrumented runs execute the same protocol trajectory as bare ones.
    """

    def __init__(
        self,
        world,
        fault_start_ms: float,
        localities: Optional[Iterable[int]] = None,
        poll_ms: float = minutes(2),
        threshold: float = 0.9,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise CDNError("threshold must be in (0, 1]")
        if poll_ms <= 0:
            raise CDNError("poll_ms must be positive")
        self.system = world.system
        self.sim = world.sim
        self.horizon_ms = world.config.duration_ms
        self.fault_start_ms = fault_start_ms
        self.localities = frozenset(localities) if localities is not None else None
        self.poll_ms = poll_ms
        self.threshold = threshold
        self.baseline: Optional[int] = None
        self.dipped_at: Optional[float] = None
        self.recovered_at: Optional[float] = None
        #: (time, combined member-view size) polls, starting at the baseline.
        self.index_curve: List[Tuple[float, int]] = []
        #: payload dicts of every ``flower.replica_adopted`` event.
        self.adoptions: List[Dict] = []
        self.sim.trace.subscribe(
            "flower.replica_adopted",
            lambda event: self.adoptions.append(dict(event.payload, time=event.time)),
        )
        delay = max(0.0, fault_start_ms - 1.0 - self.sim.now)
        self.sim.schedule(delay, self._capture_baseline)

    # ------------------------------------------------------------- sampling
    def _tracked_index_size(self) -> int:
        total = 0
        for peer in self.system.peers.values():
            role = getattr(peer, "directory", None)
            if role is None or not peer.alive:
                continue
            if self.localities is not None and role.locality not in self.localities:
                continue
            total += role.load
        return total

    def _capture_baseline(self) -> None:
        self.baseline = self._tracked_index_size()
        self.index_curve.append((self.sim.now, self.baseline))
        self.sim.schedule(self.poll_ms, self._poll)

    def _poll(self) -> None:
        now = self.sim.now
        if now > self.horizon_ms:
            return
        size = self._tracked_index_size()
        self.index_curve.append((now, size))
        floor = self.threshold * (self.baseline or 0)
        if size < floor:
            # The fault actually emptied the index; the cold window is
            # open from this moment until the view climbs back.
            if self.dipped_at is None:
                self.dipped_at = now
        elif self.dipped_at is not None and self.recovered_at is None:
            self.recovered_at = now
            return  # stop polling; the curve served its purpose
        self.sim.schedule(self.poll_ms, self._poll)

    # -------------------------------------------------------------- results
    def time_to_full_index_ms(self) -> Optional[float]:
        """Length of the cold window: index dip -> back above threshold.

        ``0.0`` when the index never dropped below threshold at all (a
        warm takeover can be faster than one poll period); ``None`` when
        it dipped and never climbed back before the horizon.
        """
        if self.dipped_at is None:
            return 0.0
        if self.recovered_at is None:
            return None
        return max(0.0, self.recovered_at - self.dipped_at)

    def cold_window_misses(self, records: Sequence[QueryRecord]) -> int:
        """Queries the cold window pushed to the origin (or lost).

        Counts non-hit records from the tracked localities completed
        between the index dip and its recovery (fault start to horizon
        when the index never recovered; zero-width when it never dipped).
        """
        if self.dipped_at is None:
            return 0
        start = self.dipped_at
        end = self.recovered_at if self.recovered_at is not None else self.horizon_ms
        count = 0
        for record in records:
            if not start <= record.time < end:
                continue
            if self.localities is not None and record.locality not in self.localities:
                continue
            if not record.is_hit:
                count += 1
        return count

    def takeover_staleness_ms(self) -> List[float]:
        """Replica staleness of every post-fault adoption (ms)."""
        return [
            adoption["staleness_ms"]
            for adoption in self.adoptions
            if adoption["time"] >= self.fault_start_ms
        ]

    def summary(self, records: Sequence[QueryRecord]) -> Dict:
        """One JSON-friendly dict with every tracked metric."""
        ttfi = self.time_to_full_index_ms()
        staleness = self.takeover_staleness_ms()
        return {
            "baseline_index": self.baseline,
            "time_to_full_index_ms": ttfi,
            "cold_window_misses": self.cold_window_misses(records),
            "replicas_adopted": len(self.adoptions),
            "takeover_staleness_ms": {
                "count": len(staleness),
                "mean": sum(staleness) / len(staleness) if staleness else 0.0,
                "max": max(staleness) if staleness else 0.0,
            },
            "index_curve": [(t, s) for t, s in self.index_curve],
        }
