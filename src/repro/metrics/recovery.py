"""Recovery metrics for fault-injection experiments.

The paper argues Flower-CDN is "highly robust" but only measures steady
churn; the fault-injection subsystem (:mod:`repro.net.faults`) produces the
harder scenarios -- partitions, bursty loss, mass failures -- and this
module measures how a protocol rides through them:

- **availability** -- the fraction of *issued* queries that were answered
  at all.  Normally every query terminates at the origin server, but a
  partition can cut a peer off from everything including the server, so
  unanswered queries are precisely the partition's availability cost;
- **phase hit ratios** -- the P2P hit ratio before the fault, while it is
  active, and after it heals, computed from the same
  :class:`~repro.metrics.collector.QueryRecord` stream as the paper's
  Figure 3;
- **time to recover** -- how long after the heal the windowed hit ratio
  first returns to within ``epsilon`` of its pre-fault baseline.

Phase attribution convention: a query belongs to the phase it *completed*
in (records are stamped at completion); issued counts use the issue time
(the ``"cdn.query"`` trace event).  A query issued pre-fault but answered
during it therefore counts against the fault phase's hit ratio -- exactly
the failure it experienced.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Sequence

from repro.errors import CDNError
from repro.metrics.collector import SERVED_OUTCOMES, QueryRecord
from repro.metrics.report import render_table
from repro.metrics.timeseries import RatioPoint, RatioSeries


def track_issued_queries(sim) -> List[float]:
    """Subscribe to ``"cdn.query"`` and return the (live) issue-time list.

    Call *before* running the world; the returned list grows as the
    simulation executes and can be handed to :class:`RecoveryReport`.
    """
    issued: List[float] = []
    sim.trace.subscribe("cdn.query", lambda event: issued.append(event.time))
    return issued


class PhaseStats(NamedTuple):
    """Query accounting of one fault phase."""

    name: str
    start_ms: float
    end_ms: float
    issued: int
    answered: int
    hits: int

    @property
    def hit_ratio(self) -> float:
        """P2P hit ratio of the queries answered in this phase."""
        return self.hits / self.answered if self.answered else 0.0

    @property
    def availability(self) -> float:
        """Answered / issued within the phase (1.0 when nothing issued).

        Clamped at 1.0: answered queries are phased by completion time but
        issued counts by issue time, so a query straddling a phase boundary
        can make a busy phase's ratio edge past one.
        """
        if not self.issued:
            return 1.0
        return min(1.0, self.answered / self.issued)


class RecoveryReport:
    """Fault-phase breakdown + time-to-recover of one experiment run.

    Args:
        records: completed-query records (time-ordered, as the collector
            produces them).
        issued_times: issue timestamps from :func:`track_issued_queries`
            (``None``: assume every answered query was issued in-phase).
        fault_start_ms / fault_end_ms: the fault window (e.g. partition
            start and heal times).
        horizon_ms: experiment end.
        window_ms: width of the hit-ratio windows used for the timeseries
            and the recovery detection.
        epsilon: recovery slack -- recovered means the windowed hit ratio
            reaches ``pre-fault ratio - epsilon``.
    """

    def __init__(
        self,
        records: Sequence[QueryRecord],
        fault_start_ms: float,
        fault_end_ms: float,
        horizon_ms: float,
        window_ms: float,
        issued_times: Optional[Iterable[float]] = None,
        epsilon: float = 0.05,
    ) -> None:
        if not 0.0 <= fault_start_ms < fault_end_ms <= horizon_ms:
            raise CDNError("need 0 <= fault start < heal <= horizon")
        if window_ms <= 0 or epsilon < 0:
            raise CDNError("window must be positive and epsilon >= 0")
        # Failed (terminal-but-not-served) records close the lifecycle
        # ledger but were never *answered*: they stay in the issued count
        # and out of the answered/hit accounting, i.e. they are precisely
        # the availability cost this report measures.
        self.records = [r for r in records if r.outcome in SERVED_OUTCOMES]
        self.fault_start_ms = fault_start_ms
        self.fault_end_ms = fault_end_ms
        self.horizon_ms = horizon_ms
        self.window_ms = window_ms
        self.epsilon = epsilon
        self.issued_times = (
            sorted(issued_times)
            if issued_times is not None
            else sorted(r.time for r in self.records)
        )
        self._series = RatioSeries()
        for record in self.records:
            self._series.observe(record.time, record.is_hit)

    # ---------------------------------------------------------------- phases
    def _phase(self, name: str, start: float, end: float) -> PhaseStats:
        answered = [r for r in self.records if start <= r.time < end]
        issued = sum(1 for t in self.issued_times if start <= t < end)
        return PhaseStats(
            name=name,
            start_ms=start,
            end_ms=end,
            issued=issued,
            answered=len(answered),
            hits=sum(1 for r in answered if r.is_hit),
        )

    @property
    def pre(self) -> PhaseStats:
        return self._phase("pre-fault", 0.0, self.fault_start_ms)

    @property
    def during(self) -> PhaseStats:
        return self._phase("fault", self.fault_start_ms, self.fault_end_ms)

    @property
    def post(self) -> PhaseStats:
        # Half-open [heal, horizon]; include the horizon edge itself.
        return self._phase("post-heal", self.fault_end_ms, self.horizon_ms + 1e-9)

    def phases(self) -> List[PhaseStats]:
        return [self.pre, self.during, self.post]

    # ---------------------------------------------------------- availability
    @property
    def availability(self) -> float:
        """Overall fraction of issued queries that completed."""
        issued = len(self.issued_times)
        return len(self.records) / issued if issued else 1.0

    @property
    def unanswered(self) -> int:
        return max(0, len(self.issued_times) - len(self.records))

    # -------------------------------------------------------------- recovery
    def timeseries(self) -> List[RatioPoint]:
        """Windowed hit-ratio curve over the whole horizon."""
        if len(self._series) == 0:
            return []
        return self._series.windowed(self.window_ms, self.horizon_ms)

    def time_to_recover_ms(self) -> Optional[float]:
        """Time from the heal until the hit ratio is back to baseline.

        The baseline is the pre-fault phase hit ratio; recovery is the end
        of the first post-heal window with at least one answered query
        whose windowed ratio is >= baseline - epsilon.  ``None`` when the
        run never recovers (or sees no post-heal queries); ``0.0`` when
        the fault never depressed the ratio below the slack at all.
        """
        baseline = self.pre.hit_ratio - self.epsilon
        for point in self.timeseries():
            if point.time <= self.fault_end_ms or point.total == 0:
                continue
            if point.ratio >= baseline:
                return max(0.0, point.time - self.window_ms - self.fault_end_ms)
        return None

    # --------------------------------------------------------------- report
    def render(self) -> str:
        rows = [
            [
                phase.name,
                f"{phase.start_ms / 3_600_000.0:.1f}-{phase.end_ms / 3_600_000.0:.1f} h",
                phase.issued,
                phase.answered,
                f"{phase.hit_ratio:.1%}",
                f"{phase.availability:.1%}",
            ]
            for phase in self.phases()
        ]
        table = render_table(
            ["phase", "window", "issued", "answered", "hit ratio", "availability"],
            rows,
            title="fault phases",
        )
        ttr = self.time_to_recover_ms()
        ttr_text = "never" if ttr is None else f"{ttr / 60_000.0:.1f} min"
        footer = (
            f"availability: {self.availability:.1%} "
            f"({self.unanswered} unanswered); "
            f"time to recover (eps={self.epsilon:.0%}): {ttr_text}"
        )
        return table + "\n" + footer
