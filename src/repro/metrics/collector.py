"""Per-query measurement records.

Every query issued in an experiment produces exactly one
:class:`QueryRecord`, stamped with how it was served:

==================  ============================================== =========
outcome             meaning                                        P2P hit?
==================  ============================================== =========
``hit_local``       found in the peer's own cache (never counted
                    as a query by the paper's workload -- peers
                    only query what they lack -- but kept for
                    completeness and examples)                     yes
``hit_summary``     served by a petal neighbour known through
                    gossip content summaries (Flower)              yes
``hit_directory``   a directory peer redirected to a provider
                    (Flower D-ring or Squirrel home node)          yes
``hit_transfer``    directory peers of the same website
                    collaborated (Flower, section 3.2)             yes
``hit_home``        served by a home-node replica (Squirrel's
                    home-store strategy, section 2)                yes
``hit_swarm``       chunked multi-source transfer completed
                    entirely from petal holders (swarming
                    extension; only occurs with ``swarming``)      yes
``miss_server``     no copy found: fetched from the origin server  no
``miss_failed``     routing failed (lookup error / timeout);
                    fetched from the origin server                 no
``miss_degraded``   a chunked transfer lost its P2P sources and
                    fetched the *remaining* chunks (or, cold,
                    the whole object again) from the origin
                    (swarming extension)                           no
``failed_crash``    the querier crashed before the query could
                    terminate; finalized by the crash sweep so
                    the lifecycle ledger never leaks              n/a
``failed_unreach.`` even the origin server was unreachable
                    (partition / loss burst exhausted the fetch
                    retry budget)                                 n/a
``shed_overload``   the directory's bounded admission queue was
                    full and the query was explicitly shed
                    (overload robustness extension; only occurs
                    with ``directory_queue_limit > 0``)           n/a
==================  ============================================== =========

Failed and shed outcomes are *terminal but not served*: they close the
query's lifecycle (every query terminates exactly once -- the chaos
auditor's ledger invariant) without entering the paper's hit/miss
economy.  The hit ratio and the latency/transfer distributions are
computed over served queries only, so fault-free runs are numerically
unchanged.  Shed queries are kept distinct from failures because they
are a deliberate *admission decision* under overload, not a fault: the
overload benches report them as lost goodput, the auditor checks every
one of them is terminally accounted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.errors import CDNError
from repro.types import LocalityId, ObjectKey, WebsiteId

#: Outcomes counted as "served from the P2P system".
HIT_OUTCOMES = frozenset(
    {
        "hit_local",
        "hit_summary",
        "hit_directory",
        "hit_transfer",
        "hit_home",
        "hit_swarm",
    }
)

#: Outcomes served (at least partly) by the origin web server.
MISS_OUTCOMES = frozenset({"miss_server", "miss_failed", "miss_degraded"})

#: Terminal-but-not-served outcomes (crash sweeps, unreachable origin).
#: They close the query-lifecycle ledger without counting as served
#: queries: excluded from the hit-ratio denominator and from the
#: latency/transfer distributions.
FAILED_OUTCOMES = frozenset({"failed_crash", "failed_unreachable"})

#: Queries explicitly rejected by a full directory admission queue
#: (overload extension).  Terminal but neither served nor failed: a shed
#: is a deliberate load-control decision, accounted separately.
SHED_OUTCOMES = frozenset({"shed_overload"})

#: Outcomes that entered the paper's hit/miss economy (served queries).
SERVED_OUTCOMES = HIT_OUTCOMES | MISS_OUTCOMES

ALL_OUTCOMES = SERVED_OUTCOMES | FAILED_OUTCOMES | SHED_OUTCOMES


class QueryRecord(NamedTuple):
    """The measured life of one query.

    A ``NamedTuple`` rather than a frozen dataclass: one record is built per
    query for the whole run, and a frozen dataclass pays an
    ``object.__setattr__`` call *per field* in ``__init__`` -- roughly an
    order of magnitude slower to construct.  The API (keyword construction,
    immutability, field access, eq/repr) is unchanged.

    Attributes:
        time: simulation time the query completed (ms).
        website / object_key / locality: what was asked, from where.
        outcome: how it was served (see module docstring).
        lookup_latency_ms: time from issuing the query to reaching the
            destination that provides the object.
        transfer_ms: one-way network latency from the querier to that
            provider (the paper's transfer distance).
        hops: DHT hops used, if the query was routed over a ring.
    """

    time: float
    website: WebsiteId
    object_key: ObjectKey
    locality: LocalityId
    outcome: str
    lookup_latency_ms: float
    transfer_ms: float
    hops: int = 0

    @property
    def is_hit(self) -> bool:
        return self.outcome in HIT_OUTCOMES


class MetricsCollector:
    """Accumulates query records and answers the paper's three metrics."""

    def __init__(self) -> None:
        self.records: List[QueryRecord] = []
        self._outcome_counts: Dict[str, int] = {}

    def record(self, record: QueryRecord) -> None:
        if record.outcome not in ALL_OUTCOMES:
            raise CDNError(f"unknown query outcome {record.outcome!r}")
        self.records.append(record)
        self._outcome_counts[record.outcome] = (
            self._outcome_counts.get(record.outcome, 0) + 1
        )

    # ------------------------------------------------------------- summaries
    def __len__(self) -> int:
        return len(self.records)

    def outcome_count(self, outcome: str) -> int:
        return self._outcome_counts.get(outcome, 0)

    @property
    def hits(self) -> int:
        return sum(self._outcome_counts.get(o, 0) for o in HIT_OUTCOMES)

    @property
    def misses(self) -> int:
        return sum(self._outcome_counts.get(o, 0) for o in MISS_OUTCOMES)

    @property
    def failures(self) -> int:
        """Terminal failures (never served): crash sweeps, unreachable origin."""
        return sum(self._outcome_counts.get(o, 0) for o in FAILED_OUTCOMES)

    @property
    def sheds(self) -> int:
        """Queries explicitly shed by a full directory admission queue."""
        return sum(self._outcome_counts.get(o, 0) for o in SHED_OUTCOMES)

    def hit_ratio(self) -> float:
        """Fraction of *served* queries answered from the P2P system.

        Failed (terminal-but-not-served) queries are excluded from the
        denominator, so this is numerically identical to the historical
        ``hits / len(records)`` on any run without failures.
        """
        served = self.hits + self.misses
        return self.hits / served if served else 0.0

    def mean_lookup_latency_ms(self, hits_only: bool = False) -> float:
        values = self.lookup_latencies(hits_only=hits_only)
        return sum(values) / len(values) if values else 0.0

    def mean_transfer_ms(self, hits_only: bool = False) -> float:
        values = self.transfer_distances(hits_only=hits_only)
        return sum(values) / len(values) if values else 0.0

    # ----------------------------------------------------------- projections
    #
    # Failed records carry no meaningful latency/transfer measurements
    # (there was no provider), so the distributions cover served queries.
    def lookup_latencies(self, hits_only: bool = False) -> List[float]:
        return [
            r.lookup_latency_ms
            for r in self.records
            if (r.is_hit if hits_only else r.outcome in SERVED_OUTCOMES)
        ]

    def transfer_distances(self, hits_only: bool = False) -> List[float]:
        return [
            r.transfer_ms
            for r in self.records
            if (r.is_hit if hits_only else r.outcome in SERVED_OUTCOMES)
        ]

    def filtered(
        self,
        website: Optional[WebsiteId] = None,
        locality: Optional[LocalityId] = None,
        outcomes: Optional[Iterable[str]] = None,
    ) -> List[QueryRecord]:
        wanted = frozenset(outcomes) if outcomes is not None else None
        return [
            r
            for r in self.records
            if (website is None or r.website == website)
            and (locality is None or r.locality == locality)
            and (wanted is None or r.outcome in wanted)
        ]
