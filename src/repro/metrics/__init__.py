"""Evaluation metrics (paper section 6).

The paper evaluates with three metrics:

1. **Hit ratio** -- "the fraction of queries successfully served from the
   P2P system";
2. **Lookup latency** -- "the latency taken to resolve a query and reach
   the destination that will provide the requested object";
3. **Transfer distance** -- "the network distance, in latency, from the
   querying peer to the peer that will provide the requested object".

:mod:`repro.metrics.collector` records one :class:`QueryRecord` per query;
:mod:`repro.metrics.timeseries` produces the hit-ratio-over-time curve of
Figure 3; :mod:`repro.metrics.distribution` produces the bucketed latency /
distance distributions of Figures 4 and 5; :mod:`repro.metrics.report`
renders Table-2-style text tables; :mod:`repro.metrics.recovery` measures
availability and time-to-recover in fault-injection experiments;
:mod:`repro.metrics.loadbalance` summarises how evenly load spreads
(Gini coefficient) for the overload reports.
"""

from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.metrics.distribution import Distribution
from repro.metrics.loadbalance import gini
from repro.metrics.overhead import OverheadReport
from repro.metrics.recovery import PhaseStats, RecoveryReport, track_issued_queries
from repro.metrics.report import render_table
from repro.metrics.timeseries import RatioSeries

__all__ = [
    "MetricsCollector",
    "QueryRecord",
    "Distribution",
    "RatioSeries",
    "OverheadReport",
    "PhaseStats",
    "RecoveryReport",
    "track_issued_queries",
    "render_table",
    "gini",
]
