"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's Table 2 reports;
this module owns the (deliberately dependency-free) column formatting.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Args:
        headers: column names.
        rows: row values; each row must match the header width.
        title: optional title line printed above the table.
    """
    formatted: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in formatted))
        if formatted
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
