"""Bucketed distributions, CDFs and percentiles (Figures 4 and 5).

The paper reports latency and distance *distributions*: "66 % of our queries
are resolved within 150 ms while 75 % of Squirrel's queries take more than
1200 ms" (Fig. 4) and "the percentage of queries served from a distance
within 100 ms is 62 % for Flower-CDN and 22 % for Squirrel" (Fig. 5).
:class:`Distribution` answers exactly those questions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.errors import CDNError

#: Bucket edges (ms) used to mirror the paper's Figure 4 bar chart.
LOOKUP_LATENCY_EDGES = (150.0, 300.0, 600.0, 900.0, 1200.0)

#: Bucket edges (ms) used to mirror the paper's Figure 5 bar chart.
TRANSFER_DISTANCE_EDGES = (50.0, 100.0, 150.0, 200.0, 300.0)


class Distribution:
    """An immutable empirical distribution over non-negative samples."""

    def __init__(self, samples: Sequence[float]) -> None:
        self._sorted: List[float] = sorted(samples)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def empty(self) -> bool:
        return not self._sorted

    # ------------------------------------------------------------- moments
    def mean(self) -> float:
        if self.empty:
            return 0.0
        return sum(self._sorted) / len(self._sorted)

    def minimum(self) -> float:
        return self._sorted[0] if self._sorted else 0.0

    def maximum(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (nearest-rank), q in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise CDNError(f"percentile must be in [0, 100] (got {q})")
        if self.empty:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(self._sorted)))
        return self._sorted[rank - 1]

    def median(self) -> float:
        return self.percentile(50.0)

    # ---------------------------------------------------------------- shape
    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold) -- e.g. "resolved within 150 ms"."""
        if self.empty:
            return 0.0
        import bisect

        return bisect.bisect_right(self._sorted, threshold) / len(self._sorted)

    def fraction_above(self, threshold: float) -> float:
        """P(X > threshold) -- e.g. "take more than 1200 ms"."""
        return 1.0 - self.fraction_below(threshold)

    def histogram(self, edges: Sequence[float]) -> Dict[str, float]:
        """Fractions per bucket, edges ascending; adds a final overflow
        bucket ``> last_edge``.  Bucket labels mirror the paper's figures:
        ``<=150``, ``150-300``, ..., ``>1200``.
        """
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise CDNError("histogram edges must be strictly ascending")
        if self.empty:
            return {}
        buckets: Dict[str, float] = {}
        previous = 0.0
        previous_fraction = 0.0
        for edge in edges:
            fraction = self.fraction_below(edge)
            label = f"<={edge:g}" if previous == 0.0 else f"{previous:g}-{edge:g}"
            buckets[label] = fraction - previous_fraction
            previous, previous_fraction = edge, fraction
        buckets[f">{previous:g}"] = 1.0 - previous_fraction
        return buckets

    def cdf_points(self, num_points: int = 50) -> List[tuple]:
        """(value, cumulative fraction) pairs for plotting."""
        if self.empty:
            return []
        n = len(self._sorted)
        step = max(1, n // num_points)
        points = [
            (self._sorted[i], (i + 1) / n) for i in range(0, n, step)
        ]
        if points[-1] != (self._sorted[-1], 1.0):
            points.append((self._sorted[-1], 1.0))
        return points


class WeightedDistribution:
    """An empirical distribution whose samples carry weights.

    Used for the *byte-weighted* transfer-distance view (Figure 5
    extension): with heavy-tailed object sizes, "62% of queries within
    100 ms" can hide most of the *traffic* coming from far away -- here
    each sample (a transfer distance) is weighted by the bytes it moved,
    so ``fraction_below(100)`` answers "what fraction of bytes travelled
    within 100 ms".
    """

    def __init__(self, samples: Sequence[tuple]) -> None:
        pairs = sorted((float(v), float(w)) for v, w in samples if w > 0)
        self._values: List[float] = [v for v, _ in pairs]
        self._cumulative: List[float] = []
        total = 0.0
        for _, weight in pairs:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def __len__(self) -> int:
        return len(self._values)

    @property
    def empty(self) -> bool:
        return not self._values

    def total_weight(self) -> float:
        return self._total

    def mean(self) -> float:
        """The weight-averaged sample value."""
        if self.empty:
            return 0.0
        weighted = self._cumulative[0] * self._values[0]
        for i in range(1, len(self._values)):
            weighted += (
                self._cumulative[i] - self._cumulative[i - 1]
            ) * self._values[i]
        return weighted / self._total

    def fraction_below(self, threshold: float) -> float:
        """Weight fraction of samples <= threshold."""
        if self.empty:
            return 0.0
        import bisect

        index = bisect.bisect_right(self._values, threshold)
        if index == 0:
            return 0.0
        return self._cumulative[index - 1] / self._total

    def cdf_points(self, num_points: int = 50) -> List[tuple]:
        """(value, cumulative weight fraction) pairs for plotting."""
        if self.empty:
            return []
        n = len(self._values)
        step = max(1, n // num_points)
        points = [
            (self._values[i], self._cumulative[i] / self._total)
            for i in range(0, n, step)
        ]
        last = (self._values[-1], 1.0)
        if points[-1] != last:
            points.append(last)
        return points
