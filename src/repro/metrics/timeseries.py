"""Hit ratio over time (Figure 3).

Figure 3 plots "the evolution of hit ratio with time" over 24 simulated
hours.  :class:`RatioSeries` ingests (time, success) observations and can
report the curve two ways:

- **cumulative** -- hit ratio of everything seen up to each window edge
  (a smoothed, monotone-converging curve: what the paper plots);
- **windowed** -- the hit ratio within each window (noisier, useful for
  spotting regime changes such as a directory-peer failure).
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.errors import CDNError


class RatioPoint(NamedTuple):
    time: float
    ratio: float
    total: int


class RatioSeries:
    """(time, bool) observations -> ratio-over-time curves."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._successes: List[bool] = []

    def observe(self, time: float, success: bool) -> None:
        if self._times and time < self._times[-1]:
            raise CDNError("observations must arrive in time order")
        self._times.append(time)
        self._successes.append(success)

    def __len__(self) -> int:
        return len(self._times)

    def overall(self) -> float:
        if not self._times:
            return 0.0
        return sum(self._successes) / len(self._successes)

    def cumulative(self, window_ms: float, until: float) -> List[RatioPoint]:
        """Cumulative ratio sampled every *window_ms* up to *until*."""
        self._validate(window_ms, until)
        points: List[RatioPoint] = []
        index = 0
        hits = 0
        edge = window_ms
        n = len(self._times)
        while edge <= until + 1e-9:
            while index < n and self._times[index] <= edge:
                hits += 1 if self._successes[index] else 0
                index += 1
            ratio = hits / index if index else 0.0
            points.append(RatioPoint(edge, ratio, index))
            edge += window_ms
        return points

    def windowed(self, window_ms: float, until: float) -> List[RatioPoint]:
        """Per-window ratio sampled every *window_ms* up to *until*."""
        self._validate(window_ms, until)
        points: List[RatioPoint] = []
        index = 0
        edge = window_ms
        n = len(self._times)
        while edge <= until + 1e-9:
            hits = 0
            count = 0
            while index < n and self._times[index] <= edge:
                hits += 1 if self._successes[index] else 0
                count += 1
                index += 1
            ratio = hits / count if count else 0.0
            points.append(RatioPoint(edge, ratio, count))
            edge += window_ms
        return points

    @staticmethod
    def _validate(window_ms: float, until: float) -> None:
        if window_ms <= 0:
            raise CDNError(f"window must be positive (got {window_ms})")
        if until < window_ms:
            raise CDNError("horizon must cover at least one window")
