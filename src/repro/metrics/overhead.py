"""Message-overhead accounting.

The paper's design goal is "an acceptable level of performance ... while
minimizing the incurred overhead" (section 1).  This module classifies
every message kind the protocols send into three categories and reports
maintenance cost per query -- the number the goal is about:

- **maintenance**: ring stabilization, gossip shuffles, keepalives, pushes,
  liveness hints -- traffic that flows even when nobody queries;
- **query**: routing, directory questions and fetch traffic caused by
  queries;
- **other**: anything unclassified (should stay empty; the tests check).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.metrics.report import render_table

#: message-kind prefix -> category.
_PREFIX_CATEGORIES = (
    ("chord.", "maintenance"),
    ("gossip.", "maintenance"),
    ("flower.keepalive", "maintenance"),
    ("flower.push", "maintenance"),
    ("flower.dead_provider", "maintenance"),
    ("flower.promote", "maintenance"),
    ("flower.handoff", "maintenance"),
    ("flower.register", "maintenance"),
    ("flower.query", "query"),
    ("flower.fetch", "query"),
    ("squirrel.dead", "maintenance"),
    ("squirrel.query", "query"),
    ("squirrel.fetch", "query"),
    ("squirrel.homefetch", "query"),
    ("squirrel.store", "query"),
    ("server.fetch", "query"),
)


def classify(kind: str) -> str:
    """Category of one message kind."""
    for prefix, category in _PREFIX_CATEGORIES:
        if kind.startswith(prefix):
            return category
    return "other"


class OverheadReport:
    """Aggregated view over a network's per-kind message counters.

    Args:
        kind_counts: per-message-kind send counters (``Network.kind_counts``).
        queries: number of queries served.
        drop_counts: optional per-cause drop breakdown
            (``Network.drop_counts``: loss / dead_dst / partition), so fault
            experiments can attribute where their traffic went.
    """

    def __init__(
        self,
        kind_counts: Mapping[str, int],
        queries: int,
        drop_counts: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.kind_counts = dict(kind_counts)
        self.queries = queries
        self.drop_counts: Dict[str, int] = dict(drop_counts or {})
        self.categories: Dict[str, int] = {"maintenance": 0, "query": 0, "other": 0}
        for kind, count in self.kind_counts.items():
            self.categories[classify(kind)] += count

    @property
    def total_dropped(self) -> int:
        return sum(self.drop_counts.values())

    @property
    def total(self) -> int:
        return sum(self.kind_counts.values())

    @property
    def maintenance_per_query(self) -> float:
        """Maintenance messages paid per query served."""
        if self.queries == 0:
            return float(self.categories["maintenance"])
        return self.categories["maintenance"] / self.queries

    @property
    def query_messages_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.categories["query"] / self.queries

    def top_kinds(self, count: int = 10) -> Dict[str, int]:
        """The heaviest message kinds, descending."""
        ordered = sorted(self.kind_counts.items(), key=lambda kv: -kv[1])
        return dict(ordered[:count])

    def render(self) -> str:
        rows = [
            [category, total, f"{total / max(self.total, 1):.1%}"]
            for category, total in sorted(
                self.categories.items(), key=lambda kv: -kv[1]
            )
            if total
        ]
        summary = render_table(
            ["category", "messages", "share"],
            rows,
            title=f"message overhead ({self.total:,} messages, "
            f"{self.queries:,} queries)",
        )
        detail = render_table(
            ["message kind", "count"],
            [[kind, count] for kind, count in self.top_kinds().items()],
            title="heaviest message kinds",
        )
        footer = (
            f"maintenance messages per query: {self.maintenance_per_query:.1f}; "
            f"query-path messages per query: {self.query_messages_per_query:.1f}"
        )
        report = summary + "\n\n" + detail + "\n" + footer
        if self.total_dropped:
            drops = render_table(
                ["drop cause", "messages", "share"],
                [
                    [cause, count, f"{count / self.total_dropped:.1%}"]
                    for cause, count in sorted(
                        self.drop_counts.items(), key=lambda kv: -kv[1]
                    )
                    if count
                ],
                title=f"dropped messages ({self.total_dropped:,})",
            )
            report += "\n\n" + drops
        return report
