"""Protocol-independent CDN machinery.

Three things live here:

- :class:`ProtocolParams` -- every protocol knob of Table 1 plus the
  implementation knobs (timeouts, retry delays, PetalUp limits), decoupled
  from the experiment-level configuration so the CDN layer does not depend
  on :mod:`repro.experiments`;
- :class:`BasePeer` -- the life of one participant: arrival / crash /
  re-join, the periodic query process, and the query *accounting* shared by
  every protocol (when a query completes, compute lookup latency and
  transfer distance the same way for Flower and Squirrel, so the comparison
  is apples-to-apples);
- :class:`CdnSystem` -- the per-protocol orchestrator the experiment runner
  drives through ``on_arrival`` / ``on_departure`` callbacks from the churn
  model.

Measurement conventions (metrics of section 6):

- **lookup latency** = time from issuing the query until the fetch request
  *reaches* the node that will provide the object (provider or origin
  server), i.e. completion time minus the final one-way reply latency;
- **transfer distance** = one-way latency between the querier and that
  provider.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cdn.server import OriginServer
from repro.cdn.storage import ContentStore
from repro.dht.ring import RingParams
from repro.errors import CDNError
from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.net.landmarks import LandmarkBinner
from repro.net.transport import Network, NetworkNode
from repro.sim.clock import minutes, seconds
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.types import Address, ObjectKey, WebsiteId
from repro.workload.catalog import Catalog
from repro.workload.queries import QueryStream
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class ProtocolParams:
    """CDN protocol knobs (Table 1 plus implementation parameters).

    Attributes:
        query_interval_ms: gap between a peer's queries (paper: 6 min).
        gossip_period_ms: petal gossip period (paper: 1 h).
        keepalive_period_ms: content-peer -> directory keepalive period
            (paper couples it to the gossip period: 1 h).
        push_threshold: fraction of content changes that triggers a push
            (paper: 0.5).
        zipf_exponent: object-popularity skew (Breslau et al.: ~0.8).
        summary_kind: ``"exact"`` or ``"bloom"`` content summaries.
        gossip_shuffle_size: contacts exchanged per gossip round.
        directory_load_limit: members per directory instance before PetalUp
            splits; ``None`` = unbounded (plain Flower-CDN).
        max_instances: maximum directory instances per petal (PetalUp's
            2**m; 1 = plain Flower-CDN).
        directory_collaboration: whether directory peers of the same website
            answer each other's misses (section 3.2 "may collaborate").
        member_expiry_rounds: keepalive rounds after which a silent content
            peer is expired from the directory index.
        scan_retry_delay_ms: client backoff before re-scanning D-ring when
            every directory instance was busy.
        cache_capacity: per-peer cache size in objects; ``None`` is the
            paper's unbounded assumption, a number enables LRU replacement
            (the cache-policy extension the paper scopes out).
        dring: Chord parameters of the D-ring (or Squirrel's global ring).
        squirrel_directory_capacity: per-object home-directory size
            (pointers to recent downloaders).
        rpc_retries: per-call retry budget of directory-facing RPCs
            (query / push / keepalive), via ``NetworkNode.retrying_rpc``;
            0 restores the seed's single-shot timeout behaviour where one
            lost message condemns the directory.
        rpc_backoff_ms: base backoff between those retries (doubled per
            attempt, deterministically jittered, capped).
        dir_failure_threshold: consecutive exhausted-retry RPC failures
            before a content peer declares its directory dead and starts
            the replacement protocol (section 5.2.1); values > 1 make a
            partition-stranded directory *suspect* first -- the peer keeps
            serving from gossip-learnt summaries and re-probes rather than
            electing a replacement that would race the heal.
        push_queue_limit: bounded drop-oldest buffer of push/keepalive
            updates queued while the directory is suspect; flushed
            (coalesced to the newest full summary) once it answers again.
        replication_k: number of D-ring successors each directory
            replicates its versioned (view, index) state to, plus one
            in-petal member heir (section 5.3 warm failover).  0 disables
            replication entirely -- no replica traffic, no extra RNG
            draws, runs bit-identical to the non-replicated build.
        replication_anti_entropy_rounds: every Nth replica-sync round
            ships a full snapshot instead of a delta (anti-entropy).
        directory_queue_limit: bounded admission queue (in requests) per
            directory instance.  0 disables admission control entirely --
            no queueing math runs, queries are never shed, the run stays
            bit-identical to the ungated build.  With a limit, a query
            arriving at a directory whose virtual backlog already holds
            this many requests is *shed* with an explicit redirect
            instead of silently piling up.
        directory_service_ms: mean service time one directory lookup
            occupies the admission queue for (only read when
            ``directory_queue_limit > 0``).
        overload_shedding: replica-aware PetalUp overload handling.
            When on, a splitting directory seeds the new instance with a
            deterministic partition of its member view (derived from the
            same versioned state the section 5.3 replicas carry), and an
            instance that stays overloaded sheds members directly to its
            warm ring successor instead of bouncing new clients through
            the section 4 instance scan.  Off by default: splits hand
            over an empty view, exactly the paper's behaviour.
        swarming: chunked multi-source transfers (:mod:`repro.cdn.swarm`).
            Off by default: fetches stay atomic RPCs, no object sizes are
            consulted, the run stays bit-identical to the pre-swarming
            build.  On, objects spanning more than one chunk are fetched
            in parallel from multiple holders with per-chunk failover.
        swarm_parallel: max concurrent chunk fetches per transfer.
        swarm_sources: max distinct sources a transfer asks manifests of.
        swarm_resume: keep completed chunks across source failures and
            re-request only what's missing (the robustness headline).
            Off = the cold baseline: any source failure discards all
            progress and refetches the whole object from the origin.
        swarm_replicate: petal members each full-object holder places
            chunk replicas on (0 disables placement).
        swarm_stall_ms: per-chunk stall deadline under the bandwidth
            model; a chunk still in flight after this long abandons its
            (slow) source and fails over.
        swarm_retry_ms: base per-chunk retry backoff (doubled per
            attempt, capped).
        redirect_hints: queue-aware redirect hints (overload extension).
            When on (and ``directory_queue_limit > 0``) directories
            piggyback their current admission-queue depth -- plus the
            depths gossiped to them by sibling instances over the
            replication channel -- on replies and keepalives, and clients
            use the hints to pre-route a query to the least-loaded live
            instance *before* the admission queue sheds it.  Off by
            default: no hint is computed, shipped, or harvested, and runs
            stay bit-identical to the hint-free build.
        hint_ttl_ms: how long a harvested load hint stays actionable.
            Queue depths are only meaningful while the overload that
            produced them persists; a hint older than this is ignored
            (and the entry dropped from routing decisions) rather than
            extrapolated.
        rebalance: shedding-aware content rebalancing.  When on, each
            directory tracks windowed per-key fetch counts and -- once
            overload pressure shows (sheds or a non-empty queue) -- spills
            the top-Gini-contributing hot keys to its least-loaded members
            (``flower.rebalance`` -> ``flower.fetch`` -> push), so
            subsequent fetches fan out.  Off by default: no counts are
            kept and no spill traffic exists.
        rebalance_cooldown_rounds: sweep rounds a directory stays quiet
            after one spill pass (bounds churn).
        rebalance_budget_kb: per-spill-pass byte budget; each spilled
            key costs its modeled size (or ``rebalance_nominal_kb``
            without a size model).
        rebalance_max_keys: most keys spilled in one pass.
        rebalance_nominal_kb: assumed per-object cost against the byte
            budget when no object-size model is installed.
    """

    query_interval_ms: float = minutes(6)
    gossip_period_ms: float = minutes(60)
    keepalive_period_ms: float = minutes(60)
    push_threshold: float = 0.5
    zipf_exponent: float = 0.8
    summary_kind: str = "exact"
    gossip_shuffle_size: int = 5
    directory_load_limit: Optional[int] = None
    max_instances: int = 1
    directory_collaboration: bool = False
    member_expiry_rounds: int = 2
    scan_retry_delay_ms: float = seconds(30)
    cache_capacity: Optional[int] = None
    dring: RingParams = field(default_factory=RingParams)
    squirrel_directory_capacity: int = 8
    rpc_retries: int = 2
    rpc_backoff_ms: float = 500.0
    dir_failure_threshold: int = 2
    push_queue_limit: int = 8
    replication_k: int = 0
    replication_anti_entropy_rounds: int = 4
    directory_queue_limit: int = 0
    directory_service_ms: float = 40.0
    overload_shedding: bool = False
    swarming: bool = False
    swarm_parallel: int = 4
    swarm_sources: int = 4
    swarm_resume: bool = True
    swarm_replicate: int = 0
    swarm_stall_ms: float = 8000.0
    swarm_retry_ms: float = 200.0
    redirect_hints: bool = False
    hint_ttl_ms: float = 60_000.0
    rebalance: bool = False
    rebalance_cooldown_rounds: int = 2
    rebalance_budget_kb: float = 1024.0
    rebalance_max_keys: int = 4
    rebalance_nominal_kb: float = 64.0

    def __post_init__(self) -> None:
        if self.query_interval_ms <= 0 or self.gossip_period_ms <= 0:
            raise CDNError("periods must be positive")
        if not 0.0 < self.push_threshold:
            raise CDNError("push threshold must be positive")
        if self.max_instances < 1:
            raise CDNError("max_instances must be >= 1")
        if self.directory_load_limit is not None and self.directory_load_limit < 1:
            raise CDNError("directory_load_limit must be >= 1 or None")
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise CDNError("cache_capacity must be >= 1 or None")
        if self.rpc_retries < 0:
            raise CDNError("rpc_retries must be >= 0")
        if self.dir_failure_threshold < 1:
            raise CDNError("dir_failure_threshold must be >= 1")
        if self.push_queue_limit < 1:
            raise CDNError("push_queue_limit must be >= 1")
        if self.replication_k < 0:
            raise CDNError("replication_k must be >= 0")
        if self.replication_anti_entropy_rounds < 1:
            raise CDNError("replication_anti_entropy_rounds must be >= 1")
        if self.directory_queue_limit < 0:
            raise CDNError("directory_queue_limit must be >= 0")
        if self.directory_service_ms <= 0:
            raise CDNError("directory_service_ms must be positive")
        if self.swarm_parallel < 1:
            raise CDNError("swarm_parallel must be >= 1")
        if self.swarm_sources < 1:
            raise CDNError("swarm_sources must be >= 1")
        if self.swarm_replicate < 0:
            raise CDNError("swarm_replicate must be >= 0")
        if self.swarm_stall_ms <= 0:
            raise CDNError("swarm_stall_ms must be positive")
        if self.swarm_retry_ms < 0:
            raise CDNError("swarm_retry_ms must be >= 0")
        if self.hint_ttl_ms <= 0:
            raise CDNError("hint_ttl_ms must be positive")
        if self.rebalance_cooldown_rounds < 0:
            raise CDNError("rebalance_cooldown_rounds must be >= 0")
        if self.rebalance_budget_kb <= 0:
            raise CDNError("rebalance_budget_kb must be positive")
        if self.rebalance_max_keys < 1:
            raise CDNError("rebalance_max_keys must be >= 1")
        if self.rebalance_nominal_kb <= 0:
            raise CDNError("rebalance_nominal_kb must be positive")


class BasePeer(NetworkNode):
    """One participant: identity, interest, cache, query process.

    Subclasses implement :meth:`_resolve_query` (protocol-specific) and the
    session hooks :meth:`_on_session_begin` / :meth:`_on_crash`.

    Query lifecycle ledger: every query registered by :meth:`resolve_query`
    is tracked in ``_open_queries`` until :meth:`_finish_query` finalizes it
    exactly once.  A crash finalizes all still-open queries with the
    terminal ``failed_crash`` outcome, and stale completion callbacks from a
    previous session (crash + re-join inside an RPC window) are suppressed
    -- the invariant auditor (:mod:`repro.chaos`) checks that no query is
    ever lost or double-resolved.
    """

    def __init__(
        self,
        system: "CdnSystem",
        identity: int,
        website: WebsiteId,
        cluster_hint: Optional[int] = None,
    ) -> None:
        super().__init__(system.network, cluster_hint)
        self.system = system
        self.identity = identity
        #: this peer's private random stream.  Resolved once: the registry
        #: returns a stable generator per name, and the former property
        #: rebuilt the name string and re-queried the registry on every
        #: draw of the query/gossip hot paths.
        self.rng: random.Random = self.sim.rng(f"peer-{identity}")
        self.website = website
        self.locality = system.binner.locality_of(self.address)
        self.store = ContentStore(capacity=system.params.cache_capacity)
        self.stream: Optional[QueryStream] = None
        self.queries_issued = 0
        self.sessions = 0
        self._query_process: Optional[PeriodicProcess] = None
        #: key -> issue time of queries not yet finalized (the ledger).
        self._open_queries: Dict[ObjectKey, float] = {}
        #: key -> active chunked transfer (empty unless ``swarming``).
        self._swarms: Dict[ObjectKey, object] = {}

    # ------------------------------------------------------------- lifecycle
    def begin_session(self) -> None:
        """Come online: start querying if the peer's website is active."""
        self.revive()
        self.sessions += 1
        if self.system.catalog.is_active(self.website):
            self._start_query_process()
        self._on_session_begin()

    def crash(self) -> None:
        """Fail abruptly (the paper's only departure mode)."""
        self._stop_query_process()
        if self._swarms:
            # Close our own in-flight chunked downloads (terminal "failed"
            # under I9); the ledger entries fall to the crash sweep below.
            for transfer in list(self._swarms.values()):
                transfer.abort()
        bandwidth = self.network.bandwidth
        if bandwidth is not None:
            # Seeder death: every chunk we were uploading aborts NOW, so
            # downloaders fail over per-chunk instead of waiting forever.
            bandwidth.abort_uploads_of(self.address)
        self._abort_open_queries()
        self._on_crash()
        self.fail()

    def _abort_open_queries(self) -> None:
        """Finalize every in-flight query with a terminal ``failed_crash``.

        Without this sweep a crash would leak open ledger entries: the
        in-flight RPC replies and timeouts of a dead peer are suppressed by
        the transport, so no completion path would ever run.  The paper
        never counts these as queries served, so they are recorded under
        the failed (neither-hit-nor-miss) outcome family.
        """
        if not self._open_queries:
            return
        sim = self.sim
        metrics = self.system.metrics
        tracing = sim.tracing("cdn.query_done")
        for key, started_at in self._open_queries.items():
            metrics.record(
                QueryRecord(
                    time=sim.now,
                    website=key[0],
                    object_key=key,
                    locality=self.locality,
                    outcome="failed_crash",
                    lookup_latency_ms=sim.now - started_at,
                    transfer_ms=0.0,
                    hops=0,
                )
            )
            if tracing:
                sim.emit(
                    "cdn.query_done",
                    outcome="failed_crash",
                    peer=self.address,
                    key=key,
                )
        self._open_queries.clear()

    def _on_session_begin(self) -> None:
        """Protocol hook: join overlays, register with the petal, ..."""

    def _on_crash(self) -> None:
        """Protocol hook: cancel protocol processes, shut down Chord, ..."""

    # ----------------------------------------------------------------- query
    def _start_query_process(self) -> None:
        if self.stream is None:
            self.stream = QueryStream(
                self.website,
                self.system.zipf,
                self.rng,
                already_held=self.store.held_indexes(self.website),
            )
        else:
            # Re-joining session: never re-query what the cache already has.
            self.stream.mark_held(self.store.held_indexes(self.website))
        if self.stream.exhausted:
            return
        interval = self.system.params.query_interval_ms
        self._query_process = PeriodicProcess(
            self.sim,
            interval,
            self._issue_query,
            initial_delay=self.rng.uniform(0.0, interval),
            jitter=0.1,
            rng=self.rng,
        )

    def _stop_query_process(self) -> None:
        if self._query_process is not None:
            self._query_process.cancel()
            self._query_process = None

    def _issue_query(self) -> None:
        if not self.alive:
            return
        key = self.stream.next_object() if self.stream else None
        if key is None:
            self._stop_query_process()
            return
        self.queries_issued += 1
        self.sim.emit("cdn.query", peer=self.address, key=key)
        self.resolve_query(key, started_at=self.sim.now)

    def resolve_query(self, key: ObjectKey, started_at: float) -> None:
        """Resolve *key*: open a ledger entry, then run the protocol.

        Template method: the ledger bookkeeping is shared, the actual
        resolution strategy lives in the protocol's :meth:`_resolve_query`.
        Every opened entry is closed exactly once -- by
        :meth:`_finish_query` on completion or by :meth:`_abort_open_queries`
        on crash.
        """
        self._open_queries[key] = started_at
        self._resolve_query(key, started_at)

    def _resolve_query(self, key: ObjectKey, started_at: float) -> None:
        """Protocol-specific resolution; must end in :meth:`_finish_query`."""
        raise NotImplementedError

    # ------------------------------------------------------------ accounting
    def _finish_query(
        self,
        key: ObjectKey,
        outcome: str,
        provider: Address,
        started_at: float,
        hops: int = 0,
    ) -> None:
        """Record the query's metrics and store the delivered object.

        Called from the reply handler of the successful fetch, so ``now``
        is completion time; the provider's reply travelled one link, hence
        ``lookup latency = now - started - one_way(querier, provider)``.

        Ledger discipline: the matching open entry is consumed; a
        completion whose entry is gone (or belongs to a different issue
        time) is *stale* -- a callback surviving a crash/re-join cycle --
        and is dropped instead of double-resolving the query.
        """
        if self._open_queries.get(key) != started_at:
            # Stale completion from a previous session of this peer: the
            # query was already finalized (failed_crash at crash time).
            # Observable so the auditor can assert it never double-counts.
            if self.sim.tracing("cdn.query_stale"):
                self.sim.emit(
                    "cdn.query_stale",
                    outcome=outcome,
                    peer=self.address,
                    key=key,
                )
            return
        del self._open_queries[key]
        transfer = self.network.latency(self.address, provider)
        lookup_latency = max(0.0, self.sim.now - started_at - transfer)
        if outcome == "hit_local":
            self.store.touch(key)
        __, evicted = self.store.add_with_evictions(key)
        if evicted:
            if self.stream is not None:
                # Evicted objects may legitimately be queried again.
                self.stream.forget(
                    {index for ws, index in evicted if ws == self.website}
                )
            self._on_evicted(evicted)
        self.system.metrics.record(
            QueryRecord(
                time=self.sim.now,
                website=key[0],
                object_key=key,
                locality=self.locality,
                outcome=outcome,
                lookup_latency_ms=lookup_latency,
                transfer_ms=transfer,
                hops=hops,
            )
        )
        self.sim.emit("cdn.query_done", outcome=outcome, peer=self.address, key=key)
        self._after_query(key, outcome)

    def _after_query(self, key: ObjectKey, outcome: str) -> None:
        """Protocol hook: push-threshold checks, summary updates, ..."""

    def _on_evicted(self, keys) -> None:
        """Protocol hook: cache replacement dropped *keys* (bounded-cache
        extension); summaries and indexes must stop advertising them."""

    def _fetch_from_server(
        self,
        key: ObjectKey,
        outcome: str,
        started_at: float,
        hops: int = 0,
    ) -> None:
        """Fall back to the origin web server (a P2P miss).

        Servers never fail in this model, but the *path* to them can: under
        an injected partition or loss burst the fetch may exhaust its retry
        budget.  The query is then finalized with the terminal
        ``failed_unreachable`` outcome rather than silently leaking an open
        ledger entry forever.  In fault-free runs the retry wrapper never
        times out, so the event stream is identical to a plain RPC.
        """
        server = self.system.servers[key[0]]
        params = self.system.params
        self.retrying_rpc(
            server.address,
            "server.fetch",
            {"key": key},
            on_reply=lambda payload: self._finish_query(
                key, outcome, server.address, started_at, hops
            ),
            on_give_up=lambda: self._fail_query(key, "failed_unreachable", started_at),
            retries=params.rpc_retries,
            backoff_ms=params.rpc_backoff_ms,
        )

    def _fail_query(self, key: ObjectKey, outcome: str, started_at: float) -> None:
        """Finalize an open query with a terminal failure outcome."""
        if self._open_queries.get(key) != started_at:
            return  # already finalized (crash sweep or a racing completion)
        del self._open_queries[key]
        self.system.metrics.record(
            QueryRecord(
                time=self.sim.now,
                website=key[0],
                object_key=key,
                locality=self.locality,
                outcome=outcome,
                lookup_latency_ms=self.sim.now - started_at,
                transfer_ms=0.0,
                hops=0,
            )
        )
        self.sim.emit("cdn.query_done", outcome=outcome, peer=self.address, key=key)


class CdnSystem:
    """Base orchestrator: identity -> peer bookkeeping and churn hooks.

    Subclasses provide :meth:`_make_peer` and
    :meth:`setup_initial_population`.
    """

    #: Protocol name used in reports ("flower", "petalup", "squirrel").
    name = "base"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        binner: LandmarkBinner,
        catalog: Catalog,
        params: ProtocolParams,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.binner = binner
        self.catalog = catalog
        self.params = params
        self.metrics = metrics or MetricsCollector()
        self.zipf = ZipfSampler(catalog.objects_per_website, params.zipf_exponent)
        self.servers: Dict[WebsiteId, OriginServer] = self._make_servers()
        self.peers: Dict[int, BasePeer] = {}
        self._websites: Dict[int, WebsiteId] = {}
        #: Object-size model (:class:`repro.workload.objectsize`); ``None``
        #: keeps every object a unit payload and swarming fully inert.
        self.sizes = None
        # --- swarming accounting (zero-cost while ``swarming`` is off) ---
        self.swarm_started = 0
        self.swarm_completed = 0
        self.swarm_degraded = 0
        self.swarm_failed = 0
        self.swarm_restarts = 0
        self.swarm_chunk_retries = 0
        self.swarm_p2p_bytes = 0
        self.swarm_origin_bytes = 0

    def _make_servers(self) -> Dict[WebsiteId, OriginServer]:
        """One origin server per website.  Sharded systems override this to
        register the servers in their shard's infrastructure address block
        (every shard hosts its own replica of the stateless server set)."""
        return {
            website: OriginServer(self.network, website)
            for website in self.catalog.websites()
        }

    # -------------------------------------------------------------- identity
    def website_of(self, identity: int) -> WebsiteId:
        """The website an identity is interested in, fixed for the whole
        experiment ("each peer is randomly assigned a website from |W| to
        which it has interest throughout the experiment")."""
        website = self._websites.get(identity)
        if website is None:
            website = self.sim.rng("interest").randrange(self.catalog.num_websites)
            self._websites[identity] = website
        return website

    def assign_website(self, identity: int, website: WebsiteId) -> None:
        """Pin an identity's interest (used when seeding directory peers)."""
        self.catalog.validate_website(website)
        existing = self._websites.get(identity)
        if existing is not None and existing != website:
            raise CDNError(
                f"identity {identity} already interested in website {existing}"
            )
        self._websites[identity] = website

    def peer_for(self, identity: int) -> BasePeer:
        """The peer object of *identity*, created on first contact."""
        peer = self.peers.get(identity)
        if peer is None:
            peer = self._make_peer(identity)
            self.peers[identity] = peer
        return peer

    def _make_peer(self, identity: int) -> BasePeer:
        raise NotImplementedError

    # ----------------------------------------------------------- churn hooks
    def on_arrival(self, identity: int) -> None:
        self.peer_for(identity).begin_session()

    def on_departure(self, identity: int) -> None:
        peer = self.peers.get(identity)
        if peer is not None and peer.alive:
            peer.crash()

    def setup_initial_population(self) -> None:
        """Create the population present at t=0 (protocol-specific)."""
        raise NotImplementedError

    # ------------------------------------------------------------ inspection
    @property
    def online_peers(self) -> int:
        return sum(1 for peer in self.peers.values() if peer.alive)

    def install_sizes(self, sizes) -> None:
        """Attach the object-size model (and share it with the origin
        servers so they can account bytes served)."""
        self.sizes = sizes
        for server in self.servers.values():
            server.sizes = sizes

    def swarm_stats(self) -> Dict[str, float]:
        """Deprecated: use ``stats().swarm`` (same data, typed)."""
        import warnings

        from repro.cdn.flower.stats import collect_swarm_stats

        warnings.warn(
            "CdnSystem.swarm_stats() is deprecated; use stats().swarm instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return collect_swarm_stats(self).to_dict()
