"""PetalUp-CDN (paper section 4).

PetalUp-CDN is Flower-CDN with elastic directory capacity: each petal may
be served by up to ``2**m`` directory-peer instances at successive D-ring
identifiers; an instance whose member view exceeds the load limit steers
new clients to the next instance, and -- when it is the last one -- selects
one of its content peers to join D-ring as the next instance.

All of that behaviour lives in :mod:`repro.cdn.flower` (the scan in
``FlowerPeer._contact_directory``, the split in
``FlowerPeer._maybe_promote_next``); this package contributes the system
class that turns it on via :class:`~repro.cdn.base.ProtocolParams`.
"""

from repro.cdn.petalup.system import PetalUpSystem, petalup_params

__all__ = ["PetalUpSystem", "petalup_params"]
