"""PetalUp-CDN system class.

The protocol mechanics (instance scan, load-triggered splits, view handoff)
are implemented on :class:`~repro.cdn.flower.peer.FlowerPeer`; PetalUp-CDN
is the configuration that activates them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.cdn.base import ProtocolParams
from repro.cdn.flower.system import FlowerSystem
from repro.errors import CDNError

#: The paper observes petals "never surpass 30" peers at the simulated
#: scales; PetalUp's default load limit splits a directory at that size.
DEFAULT_LOAD_LIMIT = 30

#: Default cap on instances per petal (the paper's 2**m).
DEFAULT_MAX_INSTANCES = 8


def petalup_params(
    base: Optional[ProtocolParams] = None,
    load_limit: int = DEFAULT_LOAD_LIMIT,
    max_instances: int = DEFAULT_MAX_INSTANCES,
) -> ProtocolParams:
    """Derive PetalUp-CDN parameters from a (Flower) parameter set."""
    if load_limit < 1:
        raise CDNError("load_limit must be >= 1")
    if max_instances < 2:
        raise CDNError("PetalUp-CDN needs max_instances >= 2")
    base = base or ProtocolParams()
    return dataclasses.replace(
        base,
        directory_load_limit=load_limit,
        max_instances=max_instances,
    )


class PetalUpSystem(FlowerSystem):
    """Flower-CDN with elastic, load-split directory instances."""

    name = "petalup"

    def __init__(self, sim, network, binner, catalog, params, metrics=None):
        if params.max_instances < 2 or params.directory_load_limit is None:
            raise CDNError(
                "PetalUpSystem requires max_instances >= 2 and a finite "
                "directory_load_limit; use petalup_params()"
            )
        super().__init__(sim, network, binner, catalog, params, metrics)

    # ------------------------------------------------------------- reports
    def petal_load_profile(self, website: int, locality: int):
        """Live per-instance admission-queue load of one petal.

        Rows ``(instance, address, queue_depth, queries_shed)`` sorted by
        instance position -- the ground truth the redirect-hint plane
        (``ProtocolParams.redirect_hints``) approximates at the clients,
        so tests and benches can compare a peer's gossiped ``load_hint``
        view against the real depths.
        """
        params = self.params
        rows = []
        for peer in self.directory_instances(website, locality).values():
            d = peer.directory
            if not peer.alive or d is None:
                continue
            if d.website != website or d.locality != locality:
                continue
            depth = d.queue_depth(self.sim.now, params.directory_service_ms)
            rows.append((d.instance, peer.address, depth, d.queries_shed))
        rows.sort()
        return rows

    def instance_count(self, website: int, locality: int) -> int:
        """How many directory instances currently serve one petal.

        O(instances) via the live directory registry the base system
        maintains at every role transition -- callers poll this inside
        simulation loops, where the previous full population scan was the
        dominant cost.
        """
        count = 0
        for peer in self.directory_instances(website, locality).values():
            d = peer.directory
            if (
                peer.alive
                and d is not None
                and d.website == website
                and d.locality == locality
            ):
                count += 1
        return count
