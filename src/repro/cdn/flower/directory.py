"""The directory role of a Flower-CDN peer.

A directory peer d(ws, loc) "knows about all content peers c(ws, loc) and
indexes their stored content in a directory-index" (section 3.2).  This
module owns that state:

- the **member view**: which content peers this instance manages, with ages
  refreshed by keepalive / push / query traffic and expired by the periodic
  sweep of section 5.1 ("discover and remove expired pointers");
- the **directory-index**: object key -> set of member addresses believed
  to hold a copy, rebuilt incrementally from push messages;
- **load accounting** for PetalUp-CDN: "the load at a directory peer is
  evaluated in terms of the number of content peers in its view and is
  compared against a predefined limit" (section 4).

The network behaviour (answering queries, reacting to pushes) lives on
:class:`~repro.cdn.flower.peer.FlowerPeer`, which holds one of these roles
while it serves as a directory.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dht.node import ChordNode
from repro.gossip.view import Contact, PartialView
from repro.types import Address, ChordId, LocalityId, ObjectKey, WebsiteId


class DirectoryRole:
    """Directory-index + member view of one directory instance.

    Args:
        owner_address: the hosting peer's network address.
        website / locality / instance: the petal slot this instance serves.
        position_id: the D-ring identifier of this slot.
    """

    def __init__(
        self,
        owner_address: Address,
        website: WebsiteId,
        locality: LocalityId,
        instance: int,
        position_id: ChordId,
    ) -> None:
        self.owner_address = owner_address
        self.website = website
        self.locality = locality
        self.instance = instance
        self.position_id = position_id
        self.chord: Optional[ChordNode] = None  # attached by the peer
        self.members = PartialView(owner=owner_address)
        self.member_keys: Dict[Address, Set[ObjectKey]] = {}
        self.index: Dict[ObjectKey, Set[Address]] = {}
        self.queries_handled = 0
        self.promoting = False  # a PetalUp split is in flight
        #: Bounded admission queue (overload extension).  A *virtual*
        #: queue: ``busy_until`` is the simulated time the last admitted
        #: request finishes service, so backlog and depth derive from it
        #: without per-request state.  Pure bookkeeping -- only read when
        #: ``directory_queue_limit > 0``; it never draws randomness or
        #: emits events on its own.
        self.busy_until = 0.0
        self.queries_shed = 0
        #: Foreign (collaboration-scan) requests shed at the lower
        #: two-class bound -- a subset of ``queries_shed``.
        self.foreign_shed = 0
        self.peak_queue_depth = 0
        #: Members handed off to the warm successor instance under
        #: sustained overload (replica-aware shedding, PetalUp extension).
        self.members_shed = 0
        #: Queue-aware redirect hints (overload extension).  Depths of
        #: sibling instances of this petal, gossiped to us over the
        #: replica-sync channel: ``address -> (depth, as_of_ms)``.  Pure
        #: state, only populated when ``redirect_hints`` is on.
        self.peer_loads: Dict[Address, Tuple[int, float]] = {}
        #: Shedding-aware content rebalancing (overload extension).
        #: Windowed per-key fetch counts over provider lookups; reset at
        #: every spill pass.  Pure state, only populated under
        #: ``rebalance``.
        self.fetch_counts: Dict[ObjectKey, int] = {}
        #: Sweep rounds left before the next spill pass may run.
        self.rebalance_cooldown = 0
        #: ``queries_shed`` watermark of the last spill decision -- spills
        #: only trigger while overload pressure is actually visible.
        self.rebalance_shed_mark = 0
        #: Keys this instance spilled to under-loaded members (total).
        self.keys_rebalanced = 0
        #: Monotonic state version + change journal (replication, section
        #: 5.3).  Pure state: maintaining these draws no randomness and
        #: emits no events, so replication-off runs stay bit-identical.
        self.version = 0
        self.changed: Dict[Address, int] = {}
        self.removed: Dict[Address, int] = {}
        #: True while the owner serves the slot without having won the
        #: ring position (partition-side takeover awaiting reconciliation).
        self.provisional = False
        #: Keyword-search posting lists (section 5.4).  ``search_space`` is
        #: attached lazily when the system runs a search engine and stays
        #: None otherwise, so plain builds maintain no posting state at
        #: all.  The posting journal reuses the member-view version counter
        #: (stamps only, no extra bumps): like the member journal this is
        #: pure state -- no randomness, no events.
        self.search_space = None
        self.postings: Dict[str, Set[ObjectKey]] = {}
        self.posting_changed: Dict[str, int] = {}
        self.posting_removed: Dict[str, int] = {}

    # ------------------------------------------------------------------ load
    @property
    def load(self) -> int:
        """Number of content peers in the member view (PetalUp's metric)."""
        return len(self.members)

    def overloaded(self, limit: Optional[int]) -> bool:
        return limit is not None and self.load >= limit

    # ------------------------------------------------------------- admission
    def queue_depth(self, now: float, service_ms: float) -> int:
        """Requests currently waiting or in service in the virtual queue."""
        backlog_ms = self.busy_until - now
        if backlog_ms <= 0.0:
            return 0
        return int(math.ceil(backlog_ms / service_ms))

    @staticmethod
    def foreign_limit(limit: int) -> int:
        """Admission bound for foreign (section 3.2 collaboration) scans.

        Two-class queue, shed-foreign-first: petal members may fill the
        whole queue, foreign sibling scans only up to this lower bound,
        so under pressure the last quarter of the queue (at least one
        slot) is reserved for the petal's own members.  Always >= 1: an
        idle directory never starves foreign scans.
        """
        return max(1, limit - max(1, limit // 4))

    def admit(self, now: float, service_ms: float, limit: int, foreign: bool = False):
        """Try to admit one request into the bounded queue.

        Returns ``(admitted, queue_wait_ms, depth)``: on admission the
        virtual backlog is extended by one service time and the caller
        owes its client a ``queue_wait_ms`` delay before the reply takes
        effect; on rejection (depth at the limit) nothing changes and the
        request must be shed with an explicit outcome.

        ``foreign`` requests (another directory's miss scanning us) are
        the lower class: they shed at :meth:`foreign_limit` so queue
        pressure from collaboration scans can never crowd out this
        petal's own members.
        """
        depth = self.queue_depth(now, service_ms)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        bound = self.foreign_limit(limit) if foreign else limit
        if depth >= bound:
            self.queries_shed += 1
            if foreign:
                self.foreign_shed += 1
            return False, 0.0, depth
        wait_ms = max(0.0, self.busy_until - now)
        self.busy_until = max(now, self.busy_until) + service_ms
        return True, wait_ms, depth

    # -------------------------------------------------------- redirect hints
    def note_peer_load(self, address: Address, depth: int, as_of: float) -> None:
        """Record a sibling instance's gossiped queue depth (freshest wins)."""
        current = self.peer_loads.get(address)
        if current is None or as_of >= current[1]:
            self.peer_loads[address] = (depth, as_of)

    def load_vector(self, now: float, service_ms: float) -> List[tuple]:
        """Own depth plus known sibling depths as ``(address, depth,
        age_ms)`` rows, deterministic order -- the wire form of the
        queue-aware redirect hint."""
        rows = [(self.owner_address, self.queue_depth(now, service_ms), 0.0)]
        for address in sorted(self.peer_loads):
            if address == self.owner_address:
                continue
            depth, as_of = self.peer_loads[address]
            rows.append((address, depth, now - as_of))
        return rows

    # ------------------------------------------------------ content rebalance
    def note_fetch(self, key: ObjectKey) -> None:
        """Count one provider lookup toward the hot-key window."""
        self.fetch_counts[key] = self.fetch_counts.get(key, 0) + 1

    # ------------------------------------------------------------ versioning
    def _mark_changed(self, address: Address) -> None:
        self.version += 1
        self.changed[address] = self.version
        self.removed.pop(address, None)

    def _mark_removed(self, address: Address) -> None:
        self.version += 1
        self.changed.pop(address, None)
        self.removed[address] = self.version

    def changed_since(self, base_version: int) -> List[Address]:
        """Members whose view/index entry changed after *base_version*."""
        return sorted(
            address
            for address, version in self.changed.items()
            if version > base_version
        )

    def removed_since(self, base_version: int) -> List[Address]:
        """Members evicted (tombstoned) after *base_version*."""
        return sorted(
            address
            for address, version in self.removed.items()
            if version > base_version
        )

    # ---------------------------------------------------- search postings
    def attach_search(self, space) -> None:
        """Attach a keyword space and (re)build posting lists from the
        index.  Idempotent; pure state (no randomness, no events)."""
        if space is self.search_space:
            return
        self.search_space = space
        self.postings = {}
        self.posting_changed = {}
        self.posting_removed = {}
        for key in self.index:
            self._posting_add(key)

    def _posting_add(self, key: ObjectKey) -> None:
        """A key just entered the index: list it under its keywords."""
        space = self.search_space
        if space is None:
            return
        for keyword in space.keywords_of(key):
            self.postings.setdefault(keyword, set()).add(key)
            self.posting_changed[keyword] = self.version
            self.posting_removed.pop(keyword, None)

    def _posting_drop(self, key: ObjectKey) -> None:
        """A key just left the index entirely: unlist it everywhere."""
        space = self.search_space
        if space is None:
            return
        for keyword in space.keywords_of(key):
            keys = self.postings.get(keyword)
            if keys is None:
                continue
            keys.discard(key)
            if keys:
                self.posting_changed[keyword] = self.version
            else:
                del self.postings[keyword]
                self.posting_changed.pop(keyword, None)
                self.posting_removed[keyword] = self.version

    def postings_changed_since(self, base_version: int) -> List[str]:
        """Keywords whose posting list changed after *base_version*."""
        return sorted(
            keyword
            for keyword, version in self.posting_changed.items()
            if version > base_version
        )

    def postings_removed_since(self, base_version: int) -> List[str]:
        """Keywords whose posting list emptied after *base_version*."""
        return sorted(
            keyword
            for keyword, version in self.posting_removed.items()
            if version > base_version
        )

    @property
    def search_version(self) -> int:
        """Version stamp of the newest posting-affecting change (0 when
        search is detached or the index never held a key)."""
        return max(
            max(self.posting_changed.values(), default=0),
            max(self.posting_removed.values(), default=0),
        )

    # -------------------------------------------------------------- members
    def add_member(self, address: Address, keys: Iterable[ObjectKey] = ()) -> None:
        """Register a content peer (fresh age) and index its keys."""
        if address == self.owner_address:
            return
        self.members.add(Contact(address, age=0))
        self.members.refresh(address)
        self._mark_changed(address)
        self.update_member_keys(address, keys)

    def has_member(self, address: Address) -> bool:
        return address in self.members

    def touch_member(self, address: Address) -> None:
        """Reset a member's age (keepalive / push / query contact)."""
        self.members.refresh(address)

    def remove_member(self, address: Address) -> None:
        """Evict a member and every index pointer to it."""
        if address in self.members or address in self.member_keys:
            self._mark_removed(address)
        self.members.remove(address)
        old = self.member_keys.pop(address, None)
        if old:
            for key in old:
                holders = self.index.get(key)
                if holders is not None:
                    holders.discard(address)
                    if not holders:
                        del self.index[key]
                        self._posting_drop(key)

    def update_member_keys(self, address: Address, keys: Iterable[ObjectKey]) -> None:
        """Apply a push: replace the member's key set in the index."""
        new = {tuple(key) for key in keys}
        old = self.member_keys.get(address, set())
        if new != old:
            self._mark_changed(address)
        for key in old - new:
            holders = self.index.get(key)
            if holders is not None:
                holders.discard(address)
                if not holders:
                    del self.index[key]
                    self._posting_drop(key)
        for key in new - old:
            holders = self.index.get(key)
            if holders is None:
                self.index[key] = {address}
                self._posting_add(key)
            else:
                holders.add(address)
        if new:
            self.member_keys[address] = new
        elif address in self.member_keys:
            del self.member_keys[address]

    def expire_members(self, max_age: int) -> List[Address]:
        """Sweep: evict members whose age exceeds *max_age*; return them.

        Ages advance by one per sweep; contact of any kind resets them.
        """
        self.members.increase_ages()
        expired = [c.address for c in self.members.contacts() if c.age > max_age]
        for address in expired:
            self.remove_member(address)
        return expired

    # ----------------------------------------------------------------- index
    def providers_of(self, key: ObjectKey) -> Set[Address]:
        return self.index.get(key, set())

    def pick_provider(
        self,
        key: ObjectKey,
        rng: random.Random,
        exclude: Optional[Set[Address]] = None,
    ) -> Optional[Address]:
        """A uniformly random indexed holder of *key* (load balancing)."""
        candidates = [
            address
            for address in self.index.get(key, ())
            if exclude is None or address not in exclude
        ]
        if not candidates:
            return None
        return rng.choice(candidates)

    def member_sample(self, rng: random.Random, count: int) -> List[Address]:
        """Random member addresses handed to joining clients as their
        initial petal view."""
        return [c.address for c in self.members.sample(rng, count)]

    def snapshot(self) -> Dict[str, object]:
        """Serializable copy of the index + view (voluntary-leave handoff,
        section 5.2.2)."""
        data: Dict[str, object] = {
            "version": self.version,
            "members": [(c.address, c.age) for c in self.members.contacts()],
            "member_keys": {
                address: sorted(keys) for address, keys in self.member_keys.items()
            },
        }
        if self.search_space is not None:
            data["postings"] = [
                (keyword, sorted(keys))
                for keyword, keys in sorted(self.postings.items())
            ]
        return data

    def adopt_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Install a predecessor's index + view (received at handoff)."""
        inherited = int(snapshot.get("version", 0))
        if inherited > self.version:
            self.version = inherited
        space = self.search_space
        postings = snapshot.get("postings") if space is not None else None
        if postings is not None:
            # The predecessor handed its posting lists over (section 5.4):
            # install them wholesale below instead of re-deriving keyword
            # sets key by key while the members are adopted.
            self.search_space = None
        try:
            for address, age in snapshot.get("members", []):
                if address != self.owner_address:
                    self.members.add(Contact(address, age))
                    self._mark_changed(address)
            for address, keys in snapshot.get("member_keys", {}).items():
                if address != self.owner_address:
                    self.update_member_keys(address, [tuple(k) for k in keys])
        finally:
            if postings is not None:
                self.search_space = space
                self._install_postings(postings)

    def _install_postings(self, postings: Iterable) -> None:
        """Adopt handed-off posting lists wholesale.

        Keys no longer in the index (e.g. the previous owner's own
        entries, dropped during adoption) are filtered out, and the
        journal restamps every surviving keyword at the current version so
        the next delta sync ships the adopted lists downstream.
        """
        indexed = set(self.index)
        self.postings = {}
        self.posting_changed = {}
        self.posting_removed = {}
        for keyword, keys in postings:
            live = {tuple(k) for k in keys} & indexed
            if live:
                self.postings[keyword] = live
                self.posting_changed[keyword] = self.version

    def merge_remote(
        self,
        members: Dict[Address, int],
        member_keys: Dict[Address, Iterable[ObjectKey]],
        remote_version: int,
    ) -> int:
        """Merge another claimant's state (split-brain heal, section 5.3).

        Per-entry dominance: a member unknown to us is adopted outright; a
        member both sides know is adopted from the remote side only when
        its remote age is *smaller* (fresher contact) or ages tie and the
        remote carries the higher state version.  Returns the number of
        entries adopted.  Afterwards our version jumps past both sides so
        replicas downstream observe a strictly newer state.
        """
        adopted = 0
        for address, age in members.items():
            if address == self.owner_address:
                continue
            mine = self.members.get(address)
            if mine is not None and not (
                age < mine.age or (age == mine.age and remote_version > self.version)
            ):
                continue
            self.members.add(Contact(address, age))
            self._mark_changed(address)
            keys = member_keys.get(address, ())
            if keys:
                self.update_member_keys(address, [tuple(k) for k in keys])
            adopted += 1
        if remote_version >= self.version:
            # Jump strictly past the remote claimant: replicas downstream
            # must be able to tell the merged state from either input.
            self.version = remote_version + 1
        return adopted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryRole(ws={self.website}, loc={self.locality}, "
            f"i={self.instance}, members={self.load}, "
            f"index={len(self.index)} keys)"
        )
