"""D-ring key management: (website, locality, instance) -> Chord identifier.

The paper's "novel key management service" (section 3.2) assigns each
directory peer a *deterministic* identifier derived from the website and
locality it serves, such that:

- directory peers of the same website occupy **successive identifiers** and
  are therefore neighbours on D-ring;
- PetalUp-CDN can interpose up to ``2**m`` instances per (website,
  locality), again at successive identifiers (section 4), so "scanning the
  existing directory peers" is a walk along ring successors.

Layout (most-significant to least-significant bits)::

    | website prefix           | locality        | instance      |
    | bits - loc_bits - i_bits | ceil(log2(k))   | ceil(log2(2^m)) |

The website prefix is a hash of the website identifier (a real deployment
hashes the website's URL); prefix collisions between websites are resolved
deterministically at construction by linear probing, so the mapping is
injective and stable for a given identifier space and website count.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.dht.idspace import IdSpace
from repro.errors import CDNError
from repro.types import ChordId, LocalityId, WebsiteId


class DRingKeyService:
    """Injective mapping between directory positions and ring identifiers."""

    def __init__(
        self,
        space: IdSpace,
        num_websites: int,
        num_localities: int,
        max_instances: int = 1,
    ) -> None:
        if num_websites < 1 or num_localities < 1 or max_instances < 1:
            raise CDNError("websites, localities and instances must be >= 1")
        self.space = space
        self.num_websites = num_websites
        self.num_localities = num_localities
        self.max_instances = max_instances
        self.instance_bits = max(1, math.ceil(math.log2(max_instances))) if max_instances > 1 else 0
        self.locality_bits = max(1, math.ceil(math.log2(num_localities))) if num_localities > 1 else 0
        self.arc_bits = self.instance_bits + self.locality_bits
        prefix_bits = space.bits - self.arc_bits
        if prefix_bits < math.ceil(math.log2(max(2, num_websites))) + 2:
            raise CDNError(
                f"identifier space too small: {space.bits} bits cannot hold "
                f"{num_websites} websites x {num_localities} localities x "
                f"{max_instances} instances"
            )
        self._prefix_count = 1 << prefix_bits
        self._website_prefix: Dict[WebsiteId, int] = {}
        self._prefix_website: Dict[int, WebsiteId] = {}
        for website in range(num_websites):
            prefix = space.hash_value(f"website:{website}") >> self.arc_bits
            while prefix in self._prefix_website:  # deterministic probing
                prefix = (prefix + 1) % self._prefix_count
            self._website_prefix[website] = prefix
            self._prefix_website[prefix] = website

    # ---------------------------------------------------------------- encode
    def position_id(
        self,
        website: WebsiteId,
        locality: LocalityId,
        instance: int = 0,
    ) -> ChordId:
        """The D-ring identifier of directory peer d_instance(ws, loc)."""
        if website not in self._website_prefix:
            raise CDNError(f"unknown website {website}")
        if not 0 <= locality < self.num_localities:
            raise CDNError(f"locality {locality} outside [0, {self.num_localities})")
        if not 0 <= instance < self.max_instances:
            raise CDNError(f"instance {instance} outside [0, {self.max_instances})")
        prefix = self._website_prefix[website]
        return (
            (prefix << self.arc_bits)
            | (locality << self.instance_bits)
            | instance
        )

    # ---------------------------------------------------------------- decode
    def decode(self, position: ChordId) -> Optional[Tuple[WebsiteId, LocalityId, int]]:
        """Inverse mapping, or None if *position* is not a directory id."""
        prefix = position >> self.arc_bits
        website = self._prefix_website.get(prefix)
        if website is None:
            return None
        remainder = position & ((1 << self.arc_bits) - 1)
        instance = remainder & ((1 << self.instance_bits) - 1)
        locality = remainder >> self.instance_bits
        if locality >= self.num_localities or instance >= self.max_instances:
            return None
        return (website, locality, instance)

    def same_website(self, a: ChordId, b: ChordId) -> bool:
        """Do two directory identifiers serve the same website?"""
        return (a >> self.arc_bits) == (b >> self.arc_bits)

    def petal_of(self, position: ChordId) -> Optional[Tuple[WebsiteId, LocalityId]]:
        """The (website, locality) petal a directory identifier serves.

        Used by the warm-failover protocol (section 5.3) so a content peer
        can tell whether an announced directory slot concerns *its* petal
        without repeating the full decode/validity dance at call sites.
        """
        decoded = self.decode(position)
        if decoded is None:
            return None
        return decoded[0], decoded[1]

    def all_positions(self, instance: int = 0):
        """Every (website, locality) position at a given instance index."""
        for website in range(self.num_websites):
            for locality in range(self.num_localities):
                yield website, locality, self.position_id(website, locality, instance)
