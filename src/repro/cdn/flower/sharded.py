"""Flower-CDN on a sharded world: per-shard D-ring slice, global warm start.

One :class:`ShardedFlowerSystem` lives in each shard's simulator.  The petal
layer needs nothing special -- petals are (website, locality) scoped, every
locality lives wholly inside one shard, so queries, gossip, keepalives and
server fetches never cross a shard boundary.  The D-ring is the part that
spans shards: every directory position (website, locality) is hosted in
``shard_of(locality)``, so ring maintenance, routing and directory-to-
directory traffic travel over the cross-shard bus as ordinary messages
(Chord state is exchanged as :class:`~repro.dht.node.NodeRef` values, which
are plain picklable tuples).

Warm start without shared state: the initial D-ring membership is fully
deterministic -- ``DRingKeyService.all_positions`` fixes the (website,
locality) -> identifier mapping, and the structured address layout fixes
each seed directory's address (:meth:`ShardMap.seed_peer_address`).  Every
shard therefore computes the *global* sorted membership table locally and
derives converged successor/predecessor/finger tables for its own nodes
(:meth:`ChordRing.warm_tables`); no cross-shard communication happens at
setup.

Deviations from the single-process build (documented in docs/PROTOCOLS.md
section 10): the bootstrap registry (``ring.random_bootstrap`` and join-race
settlement) is shard-local -- correct because a position's join candidates
are always petal members of its own locality, hence of its own shard -- and
seed placement is exact rather than landmark-probed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdn.base import ProtocolParams
from repro.cdn.flower.directory import DirectoryRole
from repro.cdn.flower.peer import FlowerPeer
from repro.cdn.flower.system import FlowerSystem
from repro.dht.node import ChordNode, NodeRef
from repro.errors import CDNError
from repro.metrics.collector import MetricsCollector
from repro.net.shardnet import ShardedBinner, ShardedNetwork, ShardMap
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog


class ShardedFlowerSystem(FlowerSystem):
    """Flower-CDN restricted to one shard of a partitioned world."""

    def __init__(
        self,
        sim: Simulator,
        network: ShardedNetwork,
        binner: ShardedBinner,
        catalog: Catalog,
        params: ProtocolParams,
        shard_map: ShardMap,
        shard_id: int,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        # Set before super().__init__: the base constructor calls
        # _make_servers(), which needs the shard context.
        self.shard_map = shard_map
        self.shard_id = shard_id
        super().__init__(sim, network, binner, catalog, params, metrics)

    def _make_servers(self):
        # Every shard hosts its own replica of the (stateless, always-up)
        # origin-server set in its infrastructure address block, so server
        # fetches stay shard-local.  ``requests_served`` merges by summing.
        with self.network.infra_registration():
            return super()._make_servers()

    # ------------------------------------------------------------- seeding
    @property
    def num_seed_identities(self) -> int:
        """One initial directory peer per (website, local locality)."""
        return self.catalog.num_websites * self.shard_map.localities_per_shard

    def setup_initial_population(self) -> None:
        """Create this shard's slice of the initial D-ring, globally warm.

        Iterates the deterministic global enumeration, creating peers only
        for local localities; identities are numbered 0..n_local-1 in
        enumeration order (each shard has its own identity space).  Warm
        tables are computed against the full global membership, so fingers
        and successor lists point across shards from the first event.
        """
        if self.seed_identities:
            raise CDNError("initial population already created")
        local = set(self.shard_map.localities_of(self.shard_id))
        # The full initial membership, computable in any shard.
        global_refs: List[NodeRef] = sorted(
            NodeRef(position, self.shard_map.seed_peer_address(website, locality))
            for website, locality, position in self.key_service.all_positions(0)
        )
        index_of = {ref.id: i for i, ref in enumerate(global_refs)}
        roles: List[DirectoryRole] = []
        peers: List[FlowerPeer] = []
        identity = 0
        for website, locality, position in self.key_service.all_positions(0):
            if locality not in local:
                continue
            self.assign_website(identity, website)
            peer = FlowerPeer(self, identity, website, cluster_hint=locality)
            expected = self.shard_map.seed_peer_address(website, locality)
            if peer.address != expected:  # pragma: no cover - layout invariant
                raise CDNError(
                    f"seed address drift: got {peer.address}, expected {expected}"
                )
            self.peers[identity] = peer
            self.seed_identities.append(identity)
            role = DirectoryRole(peer.address, website, locality, 0, position)
            role.chord = ChordNode(peer, self.ring, position)
            successors, predecessor, fingers = self.ring.warm_tables(
                global_refs, index_of[position]
            )
            role.chord.adopt_warm_state(
                successors=successors, predecessor=predecessor, fingers=fingers
            )
            self.ring.register(role.chord)
            roles.append(role)
            peers.append(peer)
            identity += 1
        for peer, role in zip(peers, roles):
            peer.begin_session()
            peer._directory_role_active(role)
